#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "core/check.h"
#include "core/logging.h"
#include "core/rng.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace vgod::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

struct ManifestResult {
  std::string dataset;
  std::string detector;
  std::string metric;
  double value = 0.0;
};

struct ManifestState {
  std::mutex mutex;
  std::string artifact;
  std::vector<ManifestResult> results;
};

ManifestState& Manifest() {
  static ManifestState* state = new ManifestState();
  return *state;
}

std::string& DefaultManifestPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

/// VGOD_BENCH_MANIFEST when set, else the binary's registered default
/// (SetDefaultManifestPath), else nullptr.
const char* ManifestPath() {
  const char* env = std::getenv("VGOD_BENCH_MANIFEST");
  if (env != nullptr && env[0] != '\0') return env;
  const std::string& fallback = DefaultManifestPathStorage();
  return fallback.empty() ? nullptr : fallback.c_str();
}

/// {"artifact":...,"scale":...,"seed":...,"epoch_scale":...,
///  "results":[{dataset,detector,metric,value}...],
///  "spans":[{name,count,total_us}...]} — spans only when tracing is on.
std::string ManifestToJson() {
  ManifestState& state = Manifest();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::string out = "{";
  out += "\"artifact\":";
  obs::AppendJsonString(&out, state.artifact);
  out += ",\"scale\":";
  obs::AppendJsonNumber(&out, EnvScale());
  out += ",\"seed\":";
  obs::AppendJsonNumber(&out, static_cast<double>(EnvSeed()));
  out += ",\"epoch_scale\":";
  obs::AppendJsonNumber(&out, EnvEpochScale());
  out += ",\"results\":[";
  bool first = true;
  for (const ManifestResult& r : state.results) {
    if (!first) out += ",";
    first = false;
    out += "{\"dataset\":";
    obs::AppendJsonString(&out, r.dataset);
    out += ",\"detector\":";
    obs::AppendJsonString(&out, r.detector);
    out += ",\"metric\":";
    obs::AppendJsonString(&out, r.metric);
    out += ",\"value\":";
    obs::AppendJsonNumber(&out, r.value);
    out += "}";
  }
  out += "],\"spans\":[";
  struct SpanTotals {
    int64_t count = 0;
    int64_t total_us = 0;
  };
  std::map<std::string, SpanTotals> totals;
  for (const obs::TraceEvent& event : obs::SnapshotTraceEvents()) {
    SpanTotals& t = totals[event.name];
    ++t.count;
    t.total_us += event.dur_us;
  }
  first = true;
  for (const auto& [name, t] : totals) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    obs::AppendJsonString(&out, name);
    out += ",\"count\":";
    obs::AppendJsonNumber(&out, static_cast<double>(t.count));
    out += ",\"total_us\":";
    obs::AppendJsonNumber(&out, static_cast<double>(t.total_us));
    out += "}";
  }
  out += "]}";
  return out;
}

/// Registered via atexit by PrintBanner: the manifest (and, when
/// VGOD_TRACE carried a path, the trace) land on disk even if a bench
/// binary returns from main without explicit teardown.
void WriteArtifactsAtExit() {
  WriteManifest();
  const std::string trace_path = obs::TraceEnvPath();
  if (obs::TraceEnabled() && !trace_path.empty()) {
    const Status status = obs::WriteTrace(trace_path);
    if (!status.ok()) {
      VGOD_LOG(Error) << "trace export failed: " << status.ToString();
    }
  }
}

}  // namespace

double EnvScale() { return EnvDouble("VGOD_BENCH_SCALE", 1.0); }

uint64_t EnvSeed() {
  const char* value = std::getenv("VGOD_BENCH_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 7;
}

double EnvEpochScale() { return EnvDouble("VGOD_BENCH_EPOCH_SCALE", 1.0); }

InjectionParams StandardParams(const std::string& dataset_name,
                               int num_nodes) {
  // Structural outlier fractions implied by paper Table I (half of the
  // total outlier fraction, the other half being contextual).
  double structural_fraction = 0.0275;
  if (dataset_name == "citeseer") structural_fraction = 0.0225;
  if (dataset_name == "pubmed") structural_fraction = 0.0152;
  if (dataset_name == "flickr") structural_fraction = 0.0297;
  InjectionParams params;
  params.num_cliques = std::max(
      1, static_cast<int>(num_nodes * structural_fraction /
                              params.clique_size +
                          0.5));
  return params;
}

UnodCase MakeUnodCase(const std::string& name, uint64_t seed) {
  Result<datasets::Dataset> dataset =
      datasets::MakeDataset(name, EnvScale(), seed);
  VGOD_CHECK(dataset.ok()) << dataset.status().ToString();

  UnodCase unod_case;
  unod_case.name = name;
  unod_case.self_loop = name != "flickr";  // Paper §VI-B2.
  unod_case.row_normalize = name == "weibo";

  if (dataset.value().has_labeled_outliers) {
    unod_case.graph = std::move(dataset.value().graph);
    unod_case.combined = unod_case.graph.outlier_labels();
    return unod_case;
  }

  const InjectionParams params =
      StandardParams(name, dataset.value().graph.num_nodes());
  Rng rng(seed ^ 0x1217);
  Result<injection::InjectionResult> injected = injection::InjectStandard(
      dataset.value().graph, params.num_cliques, params.clique_size,
      params.candidate_set, &rng);
  VGOD_CHECK(injected.ok()) << injected.status().ToString();
  unod_case.graph = std::move(injected.value().graph);
  unod_case.structural = std::move(injected.value().structural);
  unod_case.contextual = std::move(injected.value().contextual);
  unod_case.combined = std::move(injected.value().combined);
  return unod_case;
}

detectors::DetectorOptions OptionsFor(const UnodCase& unod_case,
                                      uint64_t seed) {
  detectors::DetectorOptions options;
  options.seed = seed;
  options.self_loop = unod_case.self_loop;
  options.row_normalize_attributes = unod_case.row_normalize;
  options.epoch_scale = EnvEpochScale();
  return options;
}

void PrintBanner(const std::string& artifact, const std::string& what) {
  SetLogLevelFromEnv(LogLevel::kWarning);
  obs::InitTraceFromEnv();
  {
    ManifestState& state = Manifest();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.artifact = artifact;
  }
  if (ManifestPath() != nullptr || obs::TraceEnabled()) {
    static const bool registered = []() {
      std::atexit(WriteArtifactsAtExit);
      return true;
    }();
    (void)registered;
  }
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("scale=%.2f seed=%llu epoch_scale=%.2f  (see DESIGN.md §4-5)\n",
              EnvScale(), static_cast<unsigned long long>(EnvSeed()),
              EnvEpochScale());
  std::printf("==============================================================\n");
}

void RecordManifestResult(const std::string& dataset,
                          const std::string& detector,
                          const std::string& metric, double value) {
  if (ManifestPath() == nullptr) return;
  ManifestState& state = Manifest();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.results.push_back(ManifestResult{dataset, detector, metric, value});
}

void SetDefaultManifestPath(const std::string& path) {
  DefaultManifestPathStorage() = path;
}

bool WriteManifest() {
  const char* path = ManifestPath();
  if (path == nullptr || path[0] == '\0') return false;
  std::ofstream out(path);
  if (!out) {
    VGOD_LOG(Error) << "cannot open manifest path " << path;
    return false;
  }
  out << ManifestToJson() << "\n";
  return out.good();
}

}  // namespace vgod::bench
