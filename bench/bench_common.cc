#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "core/check.h"
#include "core/logging.h"
#include "core/rng.h"

namespace vgod::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

}  // namespace

double EnvScale() { return EnvDouble("VGOD_BENCH_SCALE", 1.0); }

uint64_t EnvSeed() {
  const char* value = std::getenv("VGOD_BENCH_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 7;
}

double EnvEpochScale() { return EnvDouble("VGOD_BENCH_EPOCH_SCALE", 1.0); }

InjectionParams StandardParams(const std::string& dataset_name,
                               int num_nodes) {
  // Structural outlier fractions implied by paper Table I (half of the
  // total outlier fraction, the other half being contextual).
  double structural_fraction = 0.0275;
  if (dataset_name == "citeseer") structural_fraction = 0.0225;
  if (dataset_name == "pubmed") structural_fraction = 0.0152;
  if (dataset_name == "flickr") structural_fraction = 0.0297;
  InjectionParams params;
  params.num_cliques = std::max(
      1, static_cast<int>(num_nodes * structural_fraction /
                              params.clique_size +
                          0.5));
  return params;
}

UnodCase MakeUnodCase(const std::string& name, uint64_t seed) {
  Result<datasets::Dataset> dataset =
      datasets::MakeDataset(name, EnvScale(), seed);
  VGOD_CHECK(dataset.ok()) << dataset.status().ToString();

  UnodCase unod_case;
  unod_case.name = name;
  unod_case.self_loop = name != "flickr";  // Paper §VI-B2.
  unod_case.row_normalize = name == "weibo";

  if (dataset.value().has_labeled_outliers) {
    unod_case.graph = std::move(dataset.value().graph);
    unod_case.combined = unod_case.graph.outlier_labels();
    return unod_case;
  }

  const InjectionParams params =
      StandardParams(name, dataset.value().graph.num_nodes());
  Rng rng(seed ^ 0x1217);
  Result<injection::InjectionResult> injected = injection::InjectStandard(
      dataset.value().graph, params.num_cliques, params.clique_size,
      params.candidate_set, &rng);
  VGOD_CHECK(injected.ok()) << injected.status().ToString();
  unod_case.graph = std::move(injected.value().graph);
  unod_case.structural = std::move(injected.value().structural);
  unod_case.contextual = std::move(injected.value().contextual);
  unod_case.combined = std::move(injected.value().combined);
  return unod_case;
}

detectors::DetectorOptions OptionsFor(const UnodCase& unod_case,
                                      uint64_t seed) {
  detectors::DetectorOptions options;
  options.seed = seed;
  options.self_loop = unod_case.self_loop;
  options.row_normalize_attributes = unod_case.row_normalize;
  options.epoch_scale = EnvEpochScale();
  return options;
}

void PrintBanner(const std::string& artifact, const std::string& what) {
  SetLogLevel(LogLevel::kWarning);
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("scale=%.2f seed=%llu epoch_scale=%.2f  (see DESIGN.md §4-5)\n",
              EnvScale(), static_cast<unsigned long long>(EnvSeed()),
              EnvEpochScale());
  std::printf("==============================================================\n");
}

}  // namespace vgod::bench
