#ifndef VGOD_BENCH_BENCH_COMMON_H_
#define VGOD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/registry.h"
#include "detectors/registry.h"
#include "graph/graph.h"
#include "injection/injection.h"

namespace vgod::bench {

// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures. Environment knobs:
//   VGOD_BENCH_SCALE       node-count multiplier (default 1.0 = DESIGN.md §4)
//   VGOD_BENCH_SEED        base seed (default 7)
//   VGOD_BENCH_EPOCH_SCALE multiplier on every model's epoch budget
//                          (default 1.0; use ~0.2 for a quick smoke run)
//   VGOD_BENCH_MANIFEST    path for a per-run JSON manifest (artifact,
//                          scale/seed knobs, recorded results, and — when
//                          VGOD_TRACE is on — per-span timing totals).
//                          Written at process exit; unset = no manifest.
//   VGOD_LOG_LEVEL         log threshold override (core/logging.h); bench
//                          binaries default to "warning"
//   VGOD_TRACE             enable trace spans (obs/trace.h); a path-like
//                          value also sets the export destination

double EnvScale();
uint64_t EnvSeed();
double EnvEpochScale();

/// Standard injection parameters for a dataset (paper §VI-B1): q=15, k=50,
/// p sized so structural outliers are ~half the paper's Table I outlier
/// fraction of the *scaled* node count.
struct InjectionParams {
  int num_cliques = 5;      // p
  int clique_size = 15;     // q
  int candidate_set = 50;   // k
};
InjectionParams StandardParams(const std::string& dataset_name,
                               int num_nodes);

/// One fully prepared UNOD benchmark case: the (possibly injected) graph
/// plus per-type ground truth and the paper's per-dataset model settings.
struct UnodCase {
  std::string name;
  AttributedGraph graph;
  std::vector<uint8_t> structural;  // Empty for weibo (labels only).
  std::vector<uint8_t> contextual;  // Empty for weibo.
  std::vector<uint8_t> combined;
  bool self_loop = false;          // Paper: cora/citeseer/pubmed/weibo.
  bool row_normalize = false;      // Paper: weibo.

  bool has_type_labels() const { return !structural.empty(); }
};

/// Builds the named dataset at the global bench scale and applies the
/// standard injection (no injection for weibo — it carries real labels).
UnodCase MakeUnodCase(const std::string& name, uint64_t seed);

/// Detector options matching `unod_case` (self-loop / row-normalization /
/// epoch scale).
detectors::DetectorOptions OptionsFor(const UnodCase& unod_case,
                                      uint64_t seed);

/// Prints the standard bench banner: which paper artifact this regenerates
/// and the active scale/seed knobs. Also applies VGOD_LOG_LEVEL (fallback:
/// warning), arms tracing from VGOD_TRACE, and — when VGOD_BENCH_MANIFEST
/// is set — registers the manifest writer to run at process exit.
void PrintBanner(const std::string& artifact, const std::string& what);

/// Adds one named result (typically an AUC or a timing) to the run
/// manifest. Safe to call unconditionally: a no-op without
/// VGOD_BENCH_MANIFEST.
void RecordManifestResult(const std::string& dataset,
                          const std::string& detector,
                          const std::string& metric, double value);

/// Writes the manifest JSON now instead of at exit (mainly for tests).
/// Returns false when no manifest path is configured or the write fails.
bool WriteManifest();

/// Default manifest destination used when VGOD_BENCH_MANIFEST is unset,
/// so benches that promise an artifact (BENCH_kernels.json,
/// BENCH_efficiency.json) always emit one. Call before PrintBanner (which
/// registers the at-exit writer); the environment variable still wins.
void SetDefaultManifestPath(const std::string& path);

}  // namespace vgod::bench

#endif  // VGOD_BENCH_BENCH_COMMON_H_
