#ifndef VGOD_BENCH_BENCH_COMMON_H_
#define VGOD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/registry.h"
#include "detectors/registry.h"
#include "graph/graph.h"
#include "injection/injection.h"

namespace vgod::bench {

// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures. Environment knobs:
//   VGOD_BENCH_SCALE       node-count multiplier (default 1.0 = DESIGN.md §4)
//   VGOD_BENCH_SEED        base seed (default 7)
//   VGOD_BENCH_EPOCH_SCALE multiplier on every model's epoch budget
//                          (default 1.0; use ~0.2 for a quick smoke run)

double EnvScale();
uint64_t EnvSeed();
double EnvEpochScale();

/// Standard injection parameters for a dataset (paper §VI-B1): q=15, k=50,
/// p sized so structural outliers are ~half the paper's Table I outlier
/// fraction of the *scaled* node count.
struct InjectionParams {
  int num_cliques = 5;      // p
  int clique_size = 15;     // q
  int candidate_set = 50;   // k
};
InjectionParams StandardParams(const std::string& dataset_name,
                               int num_nodes);

/// One fully prepared UNOD benchmark case: the (possibly injected) graph
/// plus per-type ground truth and the paper's per-dataset model settings.
struct UnodCase {
  std::string name;
  AttributedGraph graph;
  std::vector<uint8_t> structural;  // Empty for weibo (labels only).
  std::vector<uint8_t> contextual;  // Empty for weibo.
  std::vector<uint8_t> combined;
  bool self_loop = false;          // Paper: cora/citeseer/pubmed/weibo.
  bool row_normalize = false;      // Paper: weibo.

  bool has_type_labels() const { return !structural.empty(); }
};

/// Builds the named dataset at the global bench scale and applies the
/// standard injection (no injection for weibo — it carries real labels).
UnodCase MakeUnodCase(const std::string& name, uint64_t seed);

/// Detector options matching `unod_case` (self-loop / row-normalization /
/// epoch scale).
detectors::DetectorOptions OptionsFor(const UnodCase& unod_case,
                                      uint64_t seed);

/// Prints the standard bench banner: which paper artifact this regenerates
/// and the active scale/seed knobs.
void PrintBanner(const std::string& artifact, const std::string& what);

}  // namespace vgod::bench

#endif  // VGOD_BENCH_BENCH_COMMON_H_
