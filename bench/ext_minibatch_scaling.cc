// Extension bench: the paper's §V-D scalability claim — VBM extends to
// larger networks via mini-batch training "without much effort". Measures
// full-batch vs mini-batch (with GraphSAGE-style neighbor sampling)
// training time per epoch and detection quality as the graph grows.
#include <cstdio>

#include "bench_common.h"
#include "datasets/synthetic.h"
#include "detectors/vbm.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

struct Variant {
  const char* label;
  int batch_size;
  int max_neighbors;
};

void Run() {
  bench::PrintBanner("Extension: mini-batch VBM",
                     "full-batch vs neighbor-sampled mini-batch training");

  const Variant variants[] = {
      {"full-batch", 0, 0},
      {"batch=256", 256, 0},
      {"batch=256,nbr<=10", 256, 10},
  };
  eval::Table table({"nodes", "variant", "s/epoch", "AUC(structural)"});

  for (int n : {2000, 8000, 32000}) {
    datasets::SyntheticGraphSpec spec;
    spec.num_nodes = n;
    spec.num_communities = 10;
    spec.avg_degree = 8.0;
    spec.attribute_dim = 64;
    Rng rng(bench::EnvSeed() ^ n);
    AttributedGraph graph = datasets::GeneratePlantedPartition(spec, &rng);
    Result<injection::InjectionResult> injected =
        injection::InjectStructuralOutliers(graph, std::max(2, n / 750), 15,
                                            &rng);
    VGOD_CHECK(injected.ok());

    for (const Variant& variant : variants) {
      detectors::VbmConfig config;
      config.seed = bench::EnvSeed();
      config.epochs = 3;
      config.batch_size = variant.batch_size;
      config.max_neighbors_per_node = variant.max_neighbors;
      detectors::Vbm vbm(config);
      VGOD_CHECK(vbm.Fit(injected.value().graph).ok());
      const double auc = eval::Auc(vbm.Score(injected.value().graph).score,
                                   injected.value().structural);
      table.AddRow()
          .AddCell(std::to_string(n))
          .AddCell(variant.label)
          .AddCell(vbm.train_stats().SecondsPerEpoch(), 4)
          .AddCell(auc, 4);
      std::fprintf(stderr, "  [done] n=%d %s\n", n, variant.label);
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: detection quality is preserved under mini-batch\n"
      "training while the per-step working set shrinks from O(|V|) to\n"
      "O(batch x neighborhood) — the property that lets VBM scale out.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
