// Extension bench (beyond the paper's tables): the shallow
// residual-analysis methods its related work discusses — Radar (IJCAI'17)
// and ANOMALOUS (IJCAI'18) — evaluated under the same UNOD protocol. The
// paper's narrative (§II-B, citing [9]) is that deep methods dominate the
// non-deep ones on injected benchmarks; this bench regenerates that
// comparison on the simulated datasets.
//
// Thin wrapper over the benchmark matrix (eval/matrix.h): it builds the
// equivalent one-regime MatrixSpec and prints the leaderboard, so the
// summary logic lives in exactly one place. For custom detector/dataset
// subsets use matrix_runner with a spec file.
#include <cstdio>

#include "bench_common.h"
#include "eval/matrix.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Extension: non-deep baselines",
                     "Radar / ANOMALOUS vs deep methods under UNOD");

  eval::MatrixSpec spec;
  spec.detectors = {"Radar", "ANOMALOUS", "DegNorm", "Dominant", "VGOD"};
  spec.datasets = datasets::InjectionDatasetNames();
  spec.regimes = {"standard"};
  spec.seeds = {bench::EnvSeed()};
  spec.scale = bench::EnvScale();
  spec.epoch_scale = bench::EnvEpochScale();

  eval::Leaderboard board = eval::RunMatrix(
      spec, [](const eval::CellResult& cell, int64_t, int64_t) {
        std::fprintf(stderr, "  [%s] %s on %s\n", cell.status.c_str(),
                     cell.detector.c_str(), cell.dataset.c_str());
      });
  std::fputs(board.ToMarkdown().c_str(), stdout);
  for (const eval::CellResult& cell : board.cells) {
    if (cell.status == "ok") {
      bench::RecordManifestResult(cell.dataset, cell.detector, "auc",
                                  cell.auc);
    }
  }
  std::printf(
      "\nExpected shape (paper §II-B / BOND benchmark): the shallow\n"
      "residual models detect the L2-norm-leaking contextual outliers but\n"
      "have no mechanism for structural cliques, so they trail the deep\n"
      "methods and VGOD on the combined task.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
