// Extension bench (beyond the paper's tables): the shallow
// residual-analysis methods its related work discusses — Radar (IJCAI'17)
// and ANOMALOUS (IJCAI'18) — evaluated under the same UNOD protocol. The
// paper's narrative (§II-B, citing [9]) is that deep methods dominate the
// non-deep ones on injected benchmarks; this bench regenerates that
// comparison on the simulated datasets.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

const std::vector<std::string> kModels = {"Radar", "ANOMALOUS", "DegNorm",
                                          "Dominant", "VGOD"};

void Run() {
  bench::PrintBanner("Extension: non-deep baselines",
                     "Radar / ANOMALOUS vs deep methods under UNOD");

  std::vector<bench::UnodCase> cases;
  std::vector<std::string> header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
    header.push_back(name);
  }
  eval::Table table(header);

  for (const std::string& model : kModels) {
    table.AddRow().AddCell(model);
    for (const bench::UnodCase& unod : cases) {
      Result<std::unique_ptr<detectors::OutlierDetector>> detector =
          detectors::MakeDetector(model,
                                  bench::OptionsFor(unod, bench::EnvSeed()));
      VGOD_CHECK(detector.ok());
      VGOD_CHECK(detector.value()->Fit(unod.graph).ok());
      table.AddCell(
          eval::Auc(detector.value()->Score(unod.graph).score, unod.combined),
          4);
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   unod.name.c_str());
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §II-B / BOND benchmark): the shallow\n"
      "residual models detect the L2-norm-leaking contextual outliers but\n"
      "have no mechanism for structural cliques, so they trail the deep\n"
      "methods and VGOD on the combined task.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
