// Extension bench: the paper's §VI-B2 protocol runs every algorithm 5
// times and reports the average. This bench quantifies the run-to-run
// variance of VGOD and DegNorm across 5 seeds (fresh dataset + injection +
// model initialization per seed) — evidence that the single-seed tables
// elsewhere in bench/ are stable.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

constexpr int kRuns = 5;

void Run() {
  bench::PrintBanner("Extension: seed variance",
                     "mean +/- std AUC over 5 seeded runs (paper §VI-B2)");

  eval::Table table({"Model", "dataset", "mean AUC", "std", "min", "max"});
  for (const std::string& model : {std::string("DegNorm"),
                                   std::string("VGOD")}) {
    for (const std::string& name : datasets::BenchmarkDatasetNames()) {
      std::vector<double> aucs;
      for (int run = 0; run < kRuns; ++run) {
        const uint64_t seed = bench::EnvSeed() + 1000 * (run + 1);
        bench::UnodCase unod = bench::MakeUnodCase(name, seed);
        Result<std::unique_ptr<detectors::OutlierDetector>> detector =
            detectors::MakeDetector(model, bench::OptionsFor(unod, seed));
        VGOD_CHECK(detector.ok());
        VGOD_CHECK(detector.value()->Fit(unod.graph).ok());
        aucs.push_back(eval::Auc(detector.value()->Score(unod.graph).score,
                                 unod.combined));
      }
      double mean = 0.0;
      for (double a : aucs) mean += a / kRuns;
      double variance = 0.0;
      for (double a : aucs) variance += (a - mean) * (a - mean) / kRuns;
      table.AddRow()
          .AddCell(model)
          .AddCell(name)
          .AddCell(mean, 4)
          .AddCell(std::sqrt(variance), 4)
          .AddCell(*std::min_element(aucs.begin(), aucs.end()), 4)
          .AddCell(*std::max_element(aucs.begin(), aucs.end()), 4);
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   name.c_str());
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: VGOD's mean exceeds DegNorm's on every dataset\n"
      "and both are stable (std well under 0.05) — single-seed tables are\n"
      "representative.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
