// Regenerates paper Fig 2: after the standard outlier injection, node
// degree detects structural outliers and attribute L2-norm detects
// contextual outliers far above the random baseline — the data leakage the
// paper identifies.
#include <cstdio>

#include "bench_common.h"
#include "detectors/simple.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Fig 2",
                     "degree / L2-norm leakage probes vs random detector");
  eval::Table table({"dataset", "Deg->structural", "L2Norm->contextual",
                     "Random->structural", "Random->contextual"});
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    bench::UnodCase unod = bench::MakeUnodCase(name, bench::EnvSeed());
    detectors::Deg deg;
    detectors::L2Norm l2;
    detectors::RandomDetector random(bench::EnvSeed());
    VGOD_CHECK(deg.Fit(unod.graph).ok());
    VGOD_CHECK(l2.Fit(unod.graph).ok());
    VGOD_CHECK(random.Fit(unod.graph).ok());
    const std::vector<double> deg_scores = deg.Score(unod.graph).score;
    const std::vector<double> l2_scores = l2.Score(unod.graph).score;
    const std::vector<double> random_scores = random.Score(unod.graph).score;
    table.AddRow()
        .AddCell(name)
        .AddCell(eval::AucSubset(deg_scores, unod.combined, unod.structural))
        .AddCell(eval::AucSubset(l2_scores, unod.combined, unod.contextual))
        .AddCell(
            eval::AucSubset(random_scores, unod.combined, unod.structural))
        .AddCell(
            eval::AucSubset(random_scores, unod.combined, unod.contextual));
  }
  table.Print();
  std::printf(
      "\nPaper reference: both probes reach ~0.95-0.99 AUC on all four\n"
      "datasets (L2-norm ~0.98 at k=50); random sits at ~0.5.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
