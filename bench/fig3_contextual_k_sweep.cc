// Regenerates paper Fig 3: AUC of the L2-norm probe on contextual outliers
// as the candidate-set size k varies, under Euclidean vs cosine distance.
// Large k + Euclidean is the leakage driver (Theorem 1); cosine mitigates.
#include <cstdio>

#include "bench_common.h"
#include "detectors/simple.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

double ProbeAuc(const AttributedGraph& graph, int count, int k,
                injection::DistanceKind distance, uint64_t seed) {
  Rng rng(seed);
  Result<injection::InjectionResult> injected =
      injection::InjectContextualOutliers(graph, count, k, distance, &rng);
  VGOD_CHECK(injected.ok()) << injected.status().ToString();
  detectors::L2Norm probe;
  VGOD_CHECK(probe.Fit(injected.value().graph).ok());
  return eval::Auc(probe.Score(injected.value().graph).score,
                   injected.value().contextual);
}

void Run() {
  bench::PrintBanner("Fig 3",
                     "L2-norm AUC vs candidate-set size k, by distance");
  const std::vector<int> ks = {1, 2, 5, 10, 20, 50};
  for (auto [distance, label] :
       {std::pair{injection::DistanceKind::kEuclidean, "Euclidean"},
        std::pair{injection::DistanceKind::kCosine, "cosine"}}) {
    std::printf("\ndistance = %s\n", label);
    std::vector<std::string> header = {"dataset"};
    for (int k : ks) header.push_back("k=" + std::to_string(k));
    eval::Table table(header);
    for (const std::string& name : datasets::InjectionDatasetNames()) {
      Result<datasets::Dataset> dataset =
          datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
      VGOD_CHECK(dataset.ok());
      const AttributedGraph& graph = dataset.value().graph;
      const int count = std::max(10, graph.num_nodes() / 20);
      table.AddRow().AddCell(name);
      for (size_t i = 0; i < ks.size(); ++i) {
        // Average over 3 seeds; single draws are noisy at small k.
        double auc = 0.0;
        for (uint64_t s = 0; s < 3; ++s) {
          auc += ProbeAuc(graph, count, ks[i], distance,
                          bench::EnvSeed() + 31 * i + s) /
                 3.0;
        }
        table.AddCell(auc, 3);
      }
    }
    table.Print();
  }
  std::printf(
      "\nPaper reference: Euclidean AUC climbs toward ~0.98 as k grows on\n"
      "all datasets; under cosine distance the curve stays flat/low for at\n"
      "least some datasets — both the k and the distance matter.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
