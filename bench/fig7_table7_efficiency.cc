// Regenerates paper Fig 7 (training seconds per epoch) and Table VII
// (inference seconds) for every model on every injection dataset.
// Absolute numbers differ from the paper's CPU (see DESIGN.md §1); the
// claims under test are the *ratios*: VGOD's O(|E|+|V|) inference scales
// best on the largest graph, and CoLA's multi-round sampling makes it
// slower at inference by orders of magnitude.
#include <cstdio>

#include "bench_common.h"
#include "core/stopwatch.h"
#include "eval/table.h"

namespace vgod {
namespace {

void Run() {
  bench::SetDefaultManifestPath("BENCH_efficiency.json");
  bench::PrintBanner("Fig 7 + Table VII",
                     "training time per epoch and inference time (seconds)");

  std::vector<bench::UnodCase> cases;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
  }

  std::vector<std::string> header = {"Model"};
  for (const auto& unod : cases) header.push_back(unod.name);
  eval::Table train_table(header);
  eval::Table infer_table(header);

  const std::vector<std::string> models = {"Dominant", "AnomalyDAE", "DONE",
                                           "CoLA", "CONAD", "VGOD"};
  // One stopwatch per model row: Lap() yields each phase's duration
  // without juggling per-phase watches or elapsed-seconds deltas.
  for (const std::string& model : models) {
    train_table.AddRow().AddCell(model);
    infer_table.AddRow().AddCell(model);
    Stopwatch watch;
    for (const bench::UnodCase& unod : cases) {
      Result<std::unique_ptr<detectors::OutlierDetector>> detector =
          detectors::MakeDetector(model,
                                  bench::OptionsFor(unod, bench::EnvSeed()));
      VGOD_CHECK(detector.ok());
      VGOD_CHECK(detector.value()->Fit(unod.graph).ok());
      const double train_per_epoch =
          detector.value()->train_stats().SecondsPerEpoch();
      train_table.AddCell(train_per_epoch, 4);
      watch.Lap();
      detector.value()->Score(unod.graph);
      const double infer_seconds = watch.Lap();
      infer_table.AddCell(infer_seconds, 4);
      bench::RecordManifestResult(unod.name, model, "train_seconds_per_epoch",
                                  train_per_epoch);
      bench::RecordManifestResult(unod.name, model, "inference_seconds",
                                  infer_seconds);
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   unod.name.c_str());
    }
  }

  std::printf("\nFig 7 — training seconds per epoch\n");
  train_table.Print();
  std::printf("\nTable VII — inference seconds\n");
  infer_table.Print();
  std::printf(
      "\nPaper reference (shape): VGOD completes inference fastest on the\n"
      "node-heavy dataset (pubmed) thanks to O(|E|+|V|) scoring; CoLA's\n"
      "multi-round sampled inference is orders of magnitude slower than\n"
      "everything else; the sigma(ZZ^T) models pay O(|V|^2).\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
