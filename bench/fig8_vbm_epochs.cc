// Regenerates paper Fig 8: the AUC trajectory of VBM over training epochs,
// one series per injected clique-size group. The paper's observations: AUC
// is high from the very first epochs, peaks quickly, then slowly decays
// (overfitting); smaller clique sizes overfit later.
#include <cstdio>

#include "bench_common.h"
#include "detectors/vbm.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "obs/monitor.h"

namespace vgod {
namespace {

const std::vector<int> kCliqueSizes = {3, 5, 10, 15};

void Run() {
  bench::PrintBanner("Fig 8", "VBM AUC per training epoch, per clique size");
  const int epochs = 30;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    Result<datasets::Dataset> dataset =
        datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
    VGOD_CHECK(dataset.ok());
    const int group_size =
        std::max(4, dataset.value().graph.num_nodes() / 50);
    Rng rng(bench::EnvSeed() ^ 0x88);
    Result<injection::GroupedInjectionResult> injected =
        injection::InjectCliqueSizeGroups(dataset.value().graph, kCliqueSizes,
                                          group_size, &rng);
    VGOD_CHECK(injected.ok());
    const injection::GroupedInjectionResult& sweep = injected.value();

    std::vector<std::vector<uint8_t>> masks;
    for (const auto& group : sweep.groups) {
      std::vector<uint8_t> mask(sweep.graph.num_nodes(), 0);
      for (int node : group) mask[node] = 1;
      masks.push_back(std::move(mask));
    }

    std::vector<std::string> header = {"epoch"};
    for (int q : kCliqueSizes) header.push_back("q=" + std::to_string(q));
    eval::Table table(header);

    // The monitor's score probe replaces the old VbmConfig callback:
    // VBM computes CurrentScores after an epoch only when a probe asks.
    obs::TrainingMonitor monitor;
    monitor.SetScoreProbe([&](const std::string& /*detector*/, int epoch,
                              const std::vector<double>& scores) {
      if (epoch % 2 != 1 && epoch != epochs) return;  // Print every other.
      table.AddRow().AddCell(std::to_string(epoch));
      for (size_t g = 0; g < masks.size(); ++g) {
        table.AddCell(eval::AucSubset(scores, sweep.combined, masks[g]), 3);
        bench::RecordManifestResult(
            name, "VBM",
            "auc_epoch" + std::to_string(epoch) + "_q" +
                std::to_string(kCliqueSizes[g]),
            eval::AucSubset(scores, sweep.combined, masks[g]));
      }
    });

    detectors::VbmConfig config;
    config.seed = bench::EnvSeed();
    config.self_loop = name != "flickr";
    config.epochs = epochs;
    config.monitor = &monitor;
    detectors::Vbm vbm(config);
    VGOD_CHECK(vbm.Fit(sweep.graph).ok());

    std::printf("\ndataset = %s\n", name.c_str());
    table.Print();
  }
  std::printf(
      "\nPaper reference (shape): high AUC from epoch 1, a peak within a\n"
      "few epochs, then slow decay; the smaller-q series peaks/decays\n"
      "later than the larger-q series.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
