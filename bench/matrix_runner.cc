// BOND-style benchmark matrix runner (docs/BENCHMARKS.md): loads a
// MatrixSpec JSON, executes every (detector x dataset x regime x seed)
// cell with per-cell failure isolation, and writes one deterministic
// leaderboard artifact (JSON) plus an optional Markdown rendering.
//
//   matrix_runner --spec=bench/matrix_specs/ci.json --out=leaderboard.json
//       [--markdown=leaderboard.md] [--threads=N] [--no-timing] [--quiet]
//
// Exit code 0 means the matrix ran to completion — individual cell
// failures are data, recorded in the artifact, not process failures
// (that is the point of the isolation contract). Spec/IO problems
// exit 1.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "core/args.h"
#include "core/parallel.h"
#include "eval/matrix.h"

namespace vgod {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "matrix_runner: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: matrix_runner --spec=<spec.json> [--out=<path>] "
               "[--markdown=<path>] [--threads=N] [--no-timing] [--quiet]\n");
  return 1;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << content;
  file.flush();
  if (!file) return Status::IoError("short write to " + path);
  return Status::Ok();
}

int Run(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) return Fail(args.status());
  Status valid = args.value().Validate(
      {"spec", "out", "markdown", "threads", "no-timing", "quiet"});
  if (!valid.ok()) return Fail(valid);

  const std::string spec_path = args.value().GetString("spec", "");
  if (spec_path.empty()) return Usage();
  std::ifstream spec_file(spec_path);
  if (!spec_file) return Fail(Status::IoError("cannot read " + spec_path));
  std::stringstream buffer;
  buffer << spec_file.rdbuf();

  Result<eval::MatrixSpec> spec = eval::MatrixSpec::FromJson(buffer.str());
  if (!spec.ok()) return Fail(spec.status());

  const int64_t threads = args.value().GetInt("threads", 0);
  if (threads > 0) par::SetNumThreads(static_cast<int>(threads));

  bench::PrintBanner("Benchmark matrix",
                     "BOND-style leaderboard over " +
                         std::to_string(spec.value().NumCells()) + " cells (" +
                         spec_path + ")");

  const bool quiet = args.value().GetBool("quiet");
  eval::Leaderboard board = eval::RunMatrix(
      spec.value(),
      [&](const eval::CellResult& cell, int64_t done, int64_t total) {
        if (quiet) return;
        std::fprintf(stderr, "  [%3lld/%3lld] %-10s %-9s %-16s seed=%llu %s\n",
                     static_cast<long long>(done),
                     static_cast<long long>(total), cell.detector.c_str(),
                     cell.dataset.c_str(), cell.regime.c_str(),
                     static_cast<unsigned long long>(cell.seed),
                     cell.status.c_str());
        if (cell.status != "ok") {
          std::fprintf(stderr, "          %s\n", cell.error.c_str());
        }
      });

  // The manifest carries per-cell AUCs so check_bench.py band-checks the
  // matrix run like any other bench artifact.
  for (const eval::CellResult& cell : board.cells) {
    if (cell.status == "ok") {
      bench::RecordManifestResult(cell.dataset + "." + cell.regime,
                                  cell.detector, "auc", cell.auc);
    }
  }

  const bool include_timing = !args.value().GetBool("no-timing");
  const std::string out_path = args.value().GetString("out", "");
  if (!out_path.empty()) {
    Status wrote = WriteFile(out_path, board.ToJson(include_timing) + "\n");
    if (!wrote.ok()) return Fail(wrote);
    std::fprintf(stderr, "matrix_runner: leaderboard -> %s\n",
                 out_path.c_str());
  }
  const std::string markdown_path = args.value().GetString("markdown", "");
  if (!markdown_path.empty()) {
    Status wrote = WriteFile(markdown_path, board.ToMarkdown());
    if (!wrote.ok()) return Fail(wrote);
    std::fprintf(stderr, "matrix_runner: markdown -> %s\n",
                 markdown_path.c_str());
  }
  if (out_path.empty() && markdown_path.empty()) {
    std::fputs(board.ToMarkdown().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace vgod

int main(int argc, char** argv) { return vgod::Run(argc, argv); }
