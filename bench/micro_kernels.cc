// google-benchmark microbenchmarks for the kernels every experiment sits
// on: dense matmul, SpMM, the neighbor-variance fused op, GAT aggregation,
// negative-edge sampling, and AUC computation. These track the raw
// performance behind Fig 7 / Table VII.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"
#include "gnn/graph_autograd.h"
#include "graph/graph_ops.h"
#include "graph/sampling.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

AttributedGraph BenchGraph(int n) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 8;
  spec.avg_degree = 8.0;
  spec.attribute_dim = 64;
  Rng rng(1);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(n, 128, 0, 1, &rng);
  Tensor b = Tensor::RandomNormal(128, 64, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 128 * 64);
}
BENCHMARK(BM_MatMul)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatMulNT_ZZt(benchmark::State& state) {
  // The sigma(Z Z^T) structure-decoder hot spot.
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Tensor z = Tensor::RandomNormal(n, 64, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMulNT(z, z));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * 64);
}
BENCHMARK(BM_MatMulNT_ZZt)->Arg(512)->Arg(1024)->Arg(2048);

void BM_Spmm(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(4);
  Tensor h = Tensor::RandomNormal(g.num_nodes(), 64, 0, 1, &rng);
  const std::vector<float> weights = graph_ops::GcnNormWeights(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_ops::Spmm(g, weights, h));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_NeighborVarianceScore(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(5);
  Tensor h = Tensor::RandomNormal(g.num_nodes(), 128, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_ops::NeighborVarianceScore(g, h));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges() * 128);
}
BENCHMARK(BM_NeighborVarianceScore)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GatAggregate(benchmark::State& state) {
  auto g = std::make_shared<const AttributedGraph>(
      BenchGraph(static_cast<int>(state.range(0))).WithSelfLoops());
  Rng rng(6);
  Variable s =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 64, 0, 1, &rng));
  Variable p =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng));
  Variable q =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::GatAggregate(g, s, p, q));
  }
  state.SetItemsProcessed(state.iterations() * g->num_directed_edges() * 64);
}
BENCHMARK(BM_GatAggregate)->Arg(1000)->Arg(4000);

void BM_NegativeEdgeSampling(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildNegativeGraph(g, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges());
}
BENCHMARK(BM_NegativeEdgeSampling)->Arg(1000)->Arg(4000);

void BM_Auc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<double> scores(n);
  std::vector<uint8_t> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.05);
  }
  labels[0] = 1;
  labels[1] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Auc(scores, labels));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace vgod

BENCHMARK_MAIN();
