// google-benchmark microbenchmarks for the kernels every experiment sits
// on: dense matmul, SpMM, the neighbor-variance fused op, GAT aggregation,
// negative-edge sampling, and AUC computation. These track the raw
// performance behind Fig 7 / Table VII.
//
// `micro_kernels --sweep` instead runs the vgod::par thread-count sweep:
// each hot kernel timed at 1/2/4/8 pool threads, reporting GFLOP/s and
// speedup vs 1 thread, recorded into a JSON manifest — BENCH_kernels.json
// in the working directory unless VGOD_BENCH_MANIFEST overrides it
// (docs/PARALLELISM.md). All other arguments go to google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <limits>

#include "bench_common.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"
#include "gnn/graph_autograd.h"
#include "graph/graph_ops.h"
#include "graph/sampling.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

AttributedGraph BenchGraph(int n) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = n;
  spec.num_communities = 8;
  spec.avg_degree = 8.0;
  spec.attribute_dim = 64;
  Rng rng(1);
  return datasets::GeneratePlantedPartition(spec, &rng);
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(n, 128, 0, 1, &rng);
  Tensor b = Tensor::RandomNormal(128, 64, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 128 * 64);
}
BENCHMARK(BM_MatMul)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatMulNT_ZZt(benchmark::State& state) {
  // The sigma(Z Z^T) structure-decoder hot spot.
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Tensor z = Tensor::RandomNormal(n, 64, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::MatMulNT(z, z));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * 64);
}
BENCHMARK(BM_MatMulNT_ZZt)->Arg(512)->Arg(1024)->Arg(2048);

void BM_Spmm(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(4);
  Tensor h = Tensor::RandomNormal(g.num_nodes(), 64, 0, 1, &rng);
  const std::vector<float> weights = graph_ops::GcnNormWeights(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_ops::Spmm(g, weights, h));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_NeighborVarianceScore(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(5);
  Tensor h = Tensor::RandomNormal(g.num_nodes(), 128, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_ops::NeighborVarianceScore(g, h));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges() * 128);
}
BENCHMARK(BM_NeighborVarianceScore)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GatAggregate(benchmark::State& state) {
  auto g = std::make_shared<const AttributedGraph>(
      BenchGraph(static_cast<int>(state.range(0))).WithSelfLoops());
  Rng rng(6);
  Variable s =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 64, 0, 1, &rng));
  Variable p =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng));
  Variable q =
      Variable::Constant(Tensor::RandomNormal(g->num_nodes(), 1, 0, 1, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::GatAggregate(g, s, p, q));
  }
  state.SetItemsProcessed(state.iterations() * g->num_directed_edges() * 64);
}
BENCHMARK(BM_GatAggregate)->Arg(1000)->Arg(4000);

void BM_NegativeEdgeSampling(benchmark::State& state) {
  AttributedGraph g = BenchGraph(static_cast<int>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildNegativeGraph(g, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_directed_edges());
}
BENCHMARK(BM_NegativeEdgeSampling)->Arg(1000)->Arg(4000);

void BM_Auc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<double> scores(n);
  std::vector<uint8_t> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.05);
  }
  labels[0] = 1;
  labels[1] = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Auc(scores, labels));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// --sweep mode: op x threads grid for the vgod::par pool.

struct SweepOp {
  std::string name;
  double flops;  // Scalar FLOPs of one fn() call (for GFLOP/s).
  std::function<void()> fn;
};

// Best-of-`reps` wall time of fn(), after one warm-up call. Best-of (not
// mean) because on a shared box the minimum is the least noisy estimate of
// the kernel's actual cost.
double BestSeconds(const std::function<void()>& fn, int reps) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int RunThreadSweep() {
  bench::SetDefaultManifestPath("BENCH_kernels.json");
  bench::PrintBanner("BENCH_kernels",
                     "kernel GFLOP/s vs vgod::par thread count "
                     "(docs/PARALLELISM.md)");
  Rng rng(11);
  const Tensor a = Tensor::RandomNormal(512, 512, 0, 1, &rng);
  const Tensor b = Tensor::RandomNormal(512, 512, 0, 1, &rng);
  const Tensor z = Tensor::RandomNormal(2048, 64, 0, 1, &rng);
  const Tensor x = Tensor::RandomNormal(4096, 256, 0, 1, &rng);
  const Tensor y = Tensor::RandomNormal(4096, 256, 0, 1, &rng);
  // ~50k directed edges at avg_degree 8: the SpMM regime of the paper's
  // mid-size datasets.
  const AttributedGraph g = BenchGraph(6250);
  const Tensor h =
      Tensor::RandomNormal(g.num_nodes(), 64, 0, 1, &rng);
  const std::vector<float> w = graph_ops::GcnNormWeights(g);
  const double edge_flops =
      static_cast<double>(g.num_directed_edges()) * 64;

  const std::vector<SweepOp> ops = {
      {"matmul_512", 2.0 * 512 * 512 * 512,
       [&] { benchmark::DoNotOptimize(kernels::MatMul(a, b)); }},
      {"matmul_nt_zzt_2048x64", 2.0 * 2048 * 2048 * 64,
       [&] { benchmark::DoNotOptimize(kernels::MatMulNT(z, z)); }},
      {"matmul_tn_2048x64", 2.0 * 64 * 64 * 2048,
       [&] { benchmark::DoNotOptimize(kernels::MatMulTN(z, z)); }},
      {"relu_4096x256", 4096.0 * 256,
       [&] { benchmark::DoNotOptimize(kernels::Relu(x)); }},
      {"row_norms_4096x256", 2.0 * 4096 * 256,
       [&] { benchmark::DoNotOptimize(kernels::RowNorms(x)); }},
      {"row_sq_dist_4096x256", 3.0 * 4096 * 256,
       [&] { benchmark::DoNotOptimize(kernels::RowSquaredDistance(x, y)); }},
      {"spmm_50k_edges_d64", 2.0 * edge_flops,
       [&] { benchmark::DoNotOptimize(graph_ops::Spmm(g, w, h)); }},
      {"neighbor_variance_50k_edges_d64", 3.0 * edge_flops,
       [&] {
         benchmark::DoNotOptimize(graph_ops::NeighborVarianceScore(g, h));
       }},
  };

  const int kThreads[] = {1, 2, 4, 8};
  std::printf("%-34s %8s %12s %12s\n", "op", "threads", "GFLOP/s",
              "speedup");
  for (const SweepOp& op : ops) {
    double base_seconds = 0.0;
    for (int threads : kThreads) {
      par::SetNumThreads(threads);
      const double seconds = BestSeconds(op.fn, 3);
      if (threads == 1) base_seconds = seconds;
      const double gflops = op.flops / seconds * 1e-9;
      const double speedup = base_seconds / seconds;
      std::printf("%-34s %8d %12.3f %12.2fx\n", op.name.c_str(), threads,
                  gflops, speedup);
      const std::string tag = "t" + std::to_string(threads);
      bench::RecordManifestResult(op.name, tag, "gflops", gflops);
      bench::RecordManifestResult(op.name, tag, "speedup_vs_1", speedup);
    }
  }
  // Back to the VGOD_NUM_THREADS / hardware default.
  par::SetNumThreads(par::DefaultNumThreads());
  bench::WriteManifest();
  return 0;
}

}  // namespace vgod

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0) {
      return vgod::RunThreadSweep();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
