// serve_loadgen — closed-loop load benchmark for the serving path.
//
// Trains a VBM detector on the standard cora UNOD case, exports it as a
// model bundle, then for each (threads × max_batch) engine configuration
// restores the bundle into a fresh ScoringEngine and drives it with
// concurrent closed-loop clients. Reports client-observed p50/p99/mean
// latency, throughput, and the batch amortization factor (requests per
// detector Score() call), alongside the engine-side latency histogram
// quantiles from vgod::obs.
//
//   serve_loadgen [--clients=8] [--requests=40] [--json=PATH]
//                 [--http] [--keep-alive]
//
// --http adds a phase that stands up a real ScoringServer on an ephemeral
// loopback port and drives it over TCP in both connection modes — a fresh
// connection per request and persistent HTTP/1.1 keep-alive — so the
// manifest reports connect-bound and steady-state serving side by side.
// --keep-alive is shorthand that also enables the HTTP phase. The default
// in-process phase is unchanged (check_bench bands key off it).
//
// Honors the usual bench env knobs (VGOD_BENCH_SCALE / _SEED /
// _EPOCH_SCALE); tools/check_serve.py runs this at a reduced scale and
// validates the --json output.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/args.h"
#include "core/logging.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/http_client.h"
#include "serve/server.h"

namespace vgod::bench {
namespace {

struct StageQuantiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct ConfigResult {
  int threads = 0;
  int max_batch = 0;
  int64_t requests = 0;
  int64_t score_calls = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double throughput_rps = 0.0;
  double engine_p50_ms = 0.0;
  double engine_p99_ms = 0.0;
  // Per-stage quantiles from the serve.stage.* histograms — where the
  // engine-side latency actually went for this configuration.
  StageQuantiles queue_wait;
  StageQuantiles batch_assembly;
  StageQuantiles score;
};

StageQuantiles StageFromRegistry(const char* name) {
  obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      name, obs::DefaultLatencyBounds());
  StageQuantiles out;
  out.p50_ms = obs::HistogramQuantile(*histogram, 0.5) * 1e3;
  out.p99_ms = obs::HistogramQuantile(*histogram, 0.99) * 1e3;
  return out;
}

double PercentileMs(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t n = sorted_ms->size();
  size_t index = static_cast<size_t>(q * static_cast<double>(n));
  if (index >= n) index = n - 1;
  return (*sorted_ms)[index];
}

ConfigResult RunConfig(const detectors::ModelBundle& bundle,
                       const UnodCase& unod_case, int threads, int max_batch,
                       int clients, int requests_per_client) {
  ConfigResult out;
  out.threads = threads;
  out.max_batch = max_batch;

  detectors::DetectorOptions options;
  options.seed = EnvSeed();
  Result<std::unique_ptr<detectors::OutlierDetector>> restored =
      detectors::MakeDetectorFromBundle(bundle, options);
  VGOD_CHECK(restored.ok()) << restored.status().ToString();

  serve::EngineConfig config;
  config.num_threads = threads;
  config.max_batch = max_batch;
  config.max_delay_us = 500;
  serve::ScoringEngine engine(std::move(restored.value()), unod_case.graph,
                              config);
  VGOD_CHECK(engine.Start().ok());

  obs::MetricsRegistry::Global().ResetAll();

  const int num_nodes = unod_case.graph.num_nodes();
  std::vector<std::vector<double>> latencies_ms(clients);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c]() {
      std::vector<double>& mine = latencies_ms[c];
      mine.reserve(requests_per_client);
      for (int r = 0; r < requests_per_client; ++r) {
        std::vector<int> nodes = {(c * 131 + r * 17) % num_nodes,
                                  (c * 131 + r * 17 + 1) % num_nodes,
                                  (c * 131 + r * 17 + 2) % num_nodes,
                                  (c * 131 + r * 17 + 3) % num_nodes};
        const auto t0 = std::chrono::steady_clock::now();
        Result<serve::ScoreResult> result = engine.ScoreNodes(std::move(nodes));
        const auto t1 = std::chrono::steady_clock::now();
        VGOD_CHECK(result.ok()) << result.status().ToString();
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.request.latency.seconds", obs::DefaultLatencyBounds());
  out.engine_p50_ms = obs::HistogramQuantile(*latency, 0.5) * 1e3;
  out.engine_p99_ms = obs::HistogramQuantile(*latency, 0.99) * 1e3;
  out.queue_wait = StageFromRegistry("serve.stage.queue_wait.seconds");
  out.batch_assembly = StageFromRegistry("serve.stage.batch_assembly.seconds");
  out.score = StageFromRegistry("serve.stage.score.seconds");

  engine.Shutdown();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  out.requests = static_cast<int64_t>(merged.size());
  out.score_calls = engine.score_calls();
  double sum = 0.0;
  for (double v : merged) sum += v;
  out.mean_ms = merged.empty() ? 0.0 : sum / static_cast<double>(merged.size());
  out.p99_ms = PercentileMs(&merged, 0.99);
  out.p50_ms = PercentileMs(&merged, 0.50);
  out.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  return out;
}

struct HttpModeResult {
  std::string mode;  // "fresh" (connection per request) or "keepalive".
  int64_t requests = 0;
  int64_t errors = 0;
  int64_t connections = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double throughput_rps = 0.0;
};

HttpModeResult RunHttpMode(int port, int num_nodes, bool keep_alive,
                           int clients, int requests_per_client) {
  HttpModeResult out;
  out.mode = keep_alive ? "keepalive" : "fresh";

  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<int64_t> errors(clients, 0);
  std::vector<int64_t> connections(clients, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c]() {
      serve::HttpClient client(port, keep_alive);
      std::vector<double>& mine = latencies_ms[c];
      mine.reserve(requests_per_client);
      for (int r = 0; r < requests_per_client; ++r) {
        std::string body = "{\"nodes\":[";
        const int base = (c * 131 + r * 17) % num_nodes;
        for (int k = 0; k < 4; ++k) {
          if (k > 0) body.push_back(',');
          body.append(std::to_string((base + k) % num_nodes));
        }
        body.append("]}");
        const auto t0 = std::chrono::steady_clock::now();
        Result<serve::HttpResponse> response = client.Post("/score", body);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.ok() || response.value().status != 200) {
          ++errors[c];
          continue;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      connections[c] = client.connections_opened();
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  for (int64_t e : errors) out.errors += e;
  for (int64_t n : connections) out.connections += n;
  out.requests = static_cast<int64_t>(merged.size());
  double sum = 0.0;
  for (double v : merged) sum += v;
  out.mean_ms = merged.empty() ? 0.0 : sum / static_cast<double>(merged.size());
  out.p99_ms = PercentileMs(&merged, 0.99);
  out.p50_ms = PercentileMs(&merged, 0.50);
  out.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  return out;
}

/// This process's live thread count ("Threads:" in /proc/self/status) —
/// how the fanout phase proves the transport is not thread-per-connection.
int CurrentThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

double OpenConnectionsGauge() {
  return obs::MetricsRegistry::Global()
      .GetGauge("serve.transport.open_connections")
      ->Value();
}

/// Waits for the server's open-connection gauge to drain to `target`
/// (closed keep-alive connections are reaped by the event thread, not
/// synchronously with the client's close). Returns the final reading.
double DrainOpenConnections(double target, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  double open = OpenConnectionsGauge();
  while (open > target && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    open = OpenConnectionsGauge();
  }
  return open;
}

struct FanoutResult {
  int connections = 0;
  /// Threads the *server* added while holding all connections open
  /// (measured thread delta minus the client threads themselves).
  /// Thread-per-connection would put this near `connections`; the
  /// reactor keeps it at ~0.
  int server_threads_delta = 0;
  double open_connections = 0.0;  // Gauge while all clients were parked.
  int64_t requests = 0;
  int64_t errors = 0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
};

/// High-fanout phase: `connections` keep-alive clients connect, all park
/// holding their connections open (where thread-per-connection transports
/// bleed), then issue a short request burst each.
FanoutResult RunFanoutPhase(int port, int num_nodes, int connections,
                            int requests_per_client) {
  FanoutResult out;
  out.connections = connections;

  const int threads_before = CurrentThreadCount();
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  std::atomic<int64_t> errors{0};
  std::vector<std::vector<double>> latencies_ms(connections);

  std::vector<std::thread> pool;
  pool.reserve(connections);
  const auto wall_start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    pool.emplace_back([&, c]() {
      serve::HttpClient client(port, /*keep_alive=*/true);
      // Establish the persistent connection with one real request.
      Result<serve::HttpResponse> first = client.Get("/healthz/live");
      if (!first.ok() || first.value().status != 200) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      parked.fetch_add(1, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::vector<double>& mine = latencies_ms[c];
      mine.reserve(requests_per_client);
      for (int r = 0; r < requests_per_client; ++r) {
        std::string body = "{\"nodes\":[" +
                           std::to_string((c * 131 + r * 17) % num_nodes) +
                           "]}";
        const auto t0 = std::chrono::steady_clock::now();
        Result<serve::HttpResponse> response = client.Post("/score", body);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.ok() || response.value().status != 200) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  while (parked.load(std::memory_order_acquire) < connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every connection is established and idle: this is the steady-state
  // cost snapshot. The client threads themselves are part of the delta,
  // so subtract them; what's left is what the server added.
  out.server_threads_delta =
      CurrentThreadCount() - threads_before - connections;
  out.open_connections = OpenConnectionsGauge();
  release.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  out.requests = static_cast<int64_t>(merged.size());
  out.errors = errors.load(std::memory_order_relaxed);
  out.p99_ms = PercentileMs(&merged, 0.99);
  out.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  return out;
}

struct ChurnResult {
  int connections = 0;
  int64_t errors = 0;
  double open_connections_final = 0.0;  // Gauge after the drain.
  int threads_delta = 0;  // Process thread delta across the whole phase.
};

/// Connection-churn phase: many short-lived connections in sequence. The
/// old transport leaked one joinable std::thread per connection here;
/// the reactor must return both the thread count and the open-connection
/// gauge to baseline.
ChurnResult RunChurnPhase(int port, int connections) {
  ChurnResult out;
  out.connections = connections;
  const int threads_before = CurrentThreadCount();
  for (int i = 0; i < connections; ++i) {
    serve::HttpClient client(port, /*keep_alive=*/false);
    Result<serve::HttpResponse> response = client.Get("/healthz/live");
    if (!response.ok() || response.value().status != 200) ++out.errors;
  }
  out.open_connections_final = DrainOpenConnections(0.0, /*deadline_ms=*/5000);
  out.threads_delta = CurrentThreadCount() - threads_before;
  return out;
}

std::string ResultsJson(const UnodCase& unod_case, int clients,
                        int requests_per_client,
                        const std::vector<ConfigResult>& results,
                        const std::vector<HttpModeResult>& http_results,
                        const FanoutResult* fanout, const ChurnResult* churn) {
  std::string out = "{\"benchmark\":\"serve_loadgen\",\"dataset\":";
  obs::AppendJsonString(&out, unod_case.name);
  out.append(",\"detector\":\"VBM\",\"nodes\":");
  obs::AppendJsonNumber(&out, unod_case.graph.num_nodes());
  out.append(",\"clients\":");
  obs::AppendJsonNumber(&out, clients);
  out.append(",\"requests_per_client\":");
  obs::AppendJsonNumber(&out, requests_per_client);
  out.append(",\"configs\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    if (i > 0) out.push_back(',');
    out.append("{\"threads\":");
    obs::AppendJsonNumber(&out, r.threads);
    out.append(",\"max_batch\":");
    obs::AppendJsonNumber(&out, r.max_batch);
    out.append(",\"requests\":");
    obs::AppendJsonNumber(&out, static_cast<double>(r.requests));
    out.append(",\"score_calls\":");
    obs::AppendJsonNumber(&out, static_cast<double>(r.score_calls));
    out.append(",\"p50_ms\":");
    obs::AppendJsonNumber(&out, r.p50_ms);
    out.append(",\"p99_ms\":");
    obs::AppendJsonNumber(&out, r.p99_ms);
    out.append(",\"mean_ms\":");
    obs::AppendJsonNumber(&out, r.mean_ms);
    out.append(",\"throughput_rps\":");
    obs::AppendJsonNumber(&out, r.throughput_rps);
    out.append(",\"engine_p50_ms\":");
    obs::AppendJsonNumber(&out, r.engine_p50_ms);
    out.append(",\"engine_p99_ms\":");
    obs::AppendJsonNumber(&out, r.engine_p99_ms);
    out.append(",\"stages\":{");
    const std::pair<const char*, const StageQuantiles*> stages[] = {
        {"queue_wait", &r.queue_wait},
        {"batch_assembly", &r.batch_assembly},
        {"score", &r.score}};
    for (size_t s = 0; s < 3; ++s) {
      if (s > 0) out.push_back(',');
      out.push_back('"');
      out.append(stages[s].first);
      out.append("\":{\"p50_ms\":");
      obs::AppendJsonNumber(&out, stages[s].second->p50_ms);
      out.append(",\"p99_ms\":");
      obs::AppendJsonNumber(&out, stages[s].second->p99_ms);
      out.append("}");
    }
    out.append("}}");
  }
  out.append("]");
  if (!http_results.empty()) {
    out.append(",\"http\":[");
    for (size_t i = 0; i < http_results.size(); ++i) {
      const HttpModeResult& h = http_results[i];
      if (i > 0) out.push_back(',');
      out.append("{\"mode\":");
      obs::AppendJsonString(&out, h.mode);
      out.append(",\"requests\":");
      obs::AppendJsonNumber(&out, static_cast<double>(h.requests));
      out.append(",\"errors\":");
      obs::AppendJsonNumber(&out, static_cast<double>(h.errors));
      out.append(",\"connections\":");
      obs::AppendJsonNumber(&out, static_cast<double>(h.connections));
      out.append(",\"p50_ms\":");
      obs::AppendJsonNumber(&out, h.p50_ms);
      out.append(",\"p99_ms\":");
      obs::AppendJsonNumber(&out, h.p99_ms);
      out.append(",\"mean_ms\":");
      obs::AppendJsonNumber(&out, h.mean_ms);
      out.append(",\"throughput_rps\":");
      obs::AppendJsonNumber(&out, h.throughput_rps);
      out.append("}");
    }
    out.append("]");
  }
  if (fanout != nullptr) {
    out.append(",\"fanout\":{\"connections\":");
    obs::AppendJsonNumber(&out, fanout->connections);
    out.append(",\"server_threads_delta\":");
    obs::AppendJsonNumber(&out, fanout->server_threads_delta);
    out.append(",\"open_connections\":");
    obs::AppendJsonNumber(&out, fanout->open_connections);
    out.append(",\"requests\":");
    obs::AppendJsonNumber(&out, static_cast<double>(fanout->requests));
    out.append(",\"errors\":");
    obs::AppendJsonNumber(&out, static_cast<double>(fanout->errors));
    out.append(",\"p99_ms\":");
    obs::AppendJsonNumber(&out, fanout->p99_ms);
    out.append(",\"throughput_rps\":");
    obs::AppendJsonNumber(&out, fanout->throughput_rps);
    out.append("}");
  }
  if (churn != nullptr) {
    out.append(",\"churn\":{\"connections\":");
    obs::AppendJsonNumber(&out, churn->connections);
    out.append(",\"errors\":");
    obs::AppendJsonNumber(&out, static_cast<double>(churn->errors));
    out.append(",\"open_connections_final\":");
    obs::AppendJsonNumber(&out, churn->open_connections_final);
    out.append(",\"threads_delta\":");
    obs::AppendJsonNumber(&out, churn->threads_delta);
    out.append("}");
  }
  out.append("}");
  return out;
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status valid = args.value().Validate(
      {"clients", "requests", "json", "http", "keep-alive"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }
  const int clients =
      std::max<int>(1, static_cast<int>(args.value().GetInt("clients", 8)));
  const int requests_per_client =
      std::max<int>(1, static_cast<int>(args.value().GetInt("requests", 40)));
  const std::string json_path = args.value().GetString("json", "");
  const bool http_phase =
      args.value().GetBool("http") || args.value().GetBool("keep-alive");

  PrintBanner("serve_loadgen",
              "serving-path load benchmark: p50/p99 latency + throughput "
              "across thread x batch configurations");

  UnodCase unod_case = MakeUnodCase("cora", EnvSeed());
  detectors::DetectorOptions options = OptionsFor(unod_case, EnvSeed());
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector("VBM", options);
  VGOD_CHECK(detector.ok()) << detector.status().ToString();
  std::printf("training VBM on %s (%d nodes)...\n", unod_case.name.c_str(),
              unod_case.graph.num_nodes());
  Status fitted = detector.value()->Fit(unod_case.graph);
  VGOD_CHECK(fitted.ok()) << fitted.ToString();
  Result<detectors::ModelBundle> bundle = detector.value()->ExportBundle();
  VGOD_CHECK(bundle.ok()) << bundle.status().ToString();

  const int kConfigs[][2] = {{1, 1}, {1, 8}, {4, 1}, {4, 8}};
  std::vector<ConfigResult> results;
  std::printf("%8s %10s %10s %10s %10s %12s %12s\n", "threads", "max_batch",
              "p50_ms", "p99_ms", "mean_ms", "rps", "batch_amort");
  for (const auto& [threads, max_batch] : kConfigs) {
    ConfigResult r = RunConfig(bundle.value(), unod_case, threads, max_batch,
                               clients, requests_per_client);
    const double amortization =
        r.score_calls > 0
            ? static_cast<double>(r.requests) /
                  static_cast<double>(r.score_calls)
            : 0.0;
    std::printf("%8d %10d %10.3f %10.3f %10.3f %12.1f %12.2f\n", r.threads,
                r.max_batch, r.p50_ms, r.p99_ms, r.mean_ms, r.throughput_rps,
                amortization);
    std::string tag = "t";
    tag.append(std::to_string(threads));
    tag.push_back('b');
    tag.append(std::to_string(max_batch));
    RecordManifestResult(unod_case.name, "VBM", tag + ".p50_ms", r.p50_ms);
    RecordManifestResult(unod_case.name, "VBM", tag + ".p99_ms", r.p99_ms);
    RecordManifestResult(unod_case.name, "VBM", tag + ".throughput_rps",
                         r.throughput_rps);
    RecordManifestResult(unod_case.name, "VBM", tag + ".queue_wait_p99_ms",
                         r.queue_wait.p99_ms);
    RecordManifestResult(unod_case.name, "VBM", tag + ".score_p99_ms",
                         r.score.p99_ms);
    results.push_back(r);
  }

  std::vector<HttpModeResult> http_results;
  if (http_phase) {
    // Stand up the real server (TCP + HTTP parse + dispatch) on the
    // strongest in-process configuration and measure the transport tax in
    // both connection modes.
    detectors::DetectorOptions restore_options;
    restore_options.seed = EnvSeed();
    Result<std::unique_ptr<detectors::OutlierDetector>> restored =
        detectors::MakeDetectorFromBundle(bundle.value(), restore_options);
    VGOD_CHECK(restored.ok()) << restored.status().ToString();
    serve::EngineConfig config;
    config.num_threads = 4;
    config.max_batch = 8;
    config.max_delay_us = 500;
    auto engine = std::make_unique<serve::ScoringEngine>(
        std::move(restored.value()), unod_case.graph, config);
    serve::ScoringServer server(std::move(engine), /*port=*/0);
    VGOD_CHECK(server.Start().ok());
    const int port = server.port();
    std::printf("\nhttp phase on 127.0.0.1:%d (threads=4 max_batch=8)\n",
                port);
    std::printf("%10s %10s %10s %10s %12s %12s\n", "mode", "p50_ms",
                "p99_ms", "mean_ms", "rps", "connections");
    const int num_nodes = unod_case.graph.num_nodes();
    for (const bool keep_alive : {false, true}) {
      HttpModeResult h = RunHttpMode(port, num_nodes, keep_alive, clients,
                                     requests_per_client);
      std::printf("%10s %10.3f %10.3f %10.3f %12.1f %12lld\n",
                  h.mode.c_str(), h.p50_ms, h.p99_ms, h.mean_ms,
                  h.throughput_rps, static_cast<long long>(h.connections));
      VGOD_CHECK(h.errors == 0)
          << h.mode << " mode saw " << h.errors << " failed requests";
      const std::string tag = "http." + h.mode;
      RecordManifestResult(unod_case.name, "VBM", tag + ".p50_ms", h.p50_ms);
      RecordManifestResult(unod_case.name, "VBM", tag + ".p99_ms", h.p99_ms);
      RecordManifestResult(unod_case.name, "VBM", tag + ".throughput_rps",
                           h.throughput_rps);
      RecordManifestResult(unod_case.name, "VBM", tag + ".connections",
                           static_cast<double>(h.connections));
      http_results.push_back(h);
    }

    // High-fanout phase: the acceptance bar for the reactor transport.
    // 256 persistent connections parked simultaneously must cost epoll
    // registrations, not server threads.
    constexpr int kFanoutConnections = 256;
    constexpr int kFanoutRequests = 4;
    DrainOpenConnections(0.0, /*deadline_ms=*/5000);  // Clean baseline.
    FanoutResult fanout = RunFanoutPhase(port, num_nodes, kFanoutConnections,
                                         kFanoutRequests);
    std::printf("\nfanout: %d keep-alive connections parked, "
                "server_threads_delta=%d open_connections=%.0f "
                "p99=%.3fms rps=%.1f\n",
                fanout.connections, fanout.server_threads_delta,
                fanout.open_connections, fanout.p99_ms,
                fanout.throughput_rps);
    VGOD_CHECK(fanout.errors == 0)
        << "fanout phase saw " << fanout.errors << " failed requests";
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.fanout.connections",
                         static_cast<double>(fanout.connections));
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.fanout.server_threads_delta",
                         static_cast<double>(fanout.server_threads_delta));
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.fanout.open_connections",
                         fanout.open_connections);
    RecordManifestResult(unod_case.name, "VBM", "transport.fanout.p99_ms",
                         fanout.p99_ms);
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.fanout.throughput_rps",
                         fanout.throughput_rps);

    // Connection-churn phase: the old transport leaked one joinable
    // thread per connection here; both gauges must return to baseline.
    constexpr int kChurnConnections = 300;
    DrainOpenConnections(0.0, /*deadline_ms=*/5000);
    ChurnResult churn = RunChurnPhase(port, kChurnConnections);
    std::printf("churn: %d short-lived connections, "
                "open_connections_final=%.0f threads_delta=%d\n",
                churn.connections, churn.open_connections_final,
                churn.threads_delta);
    VGOD_CHECK(churn.errors == 0)
        << "churn phase saw " << churn.errors << " failed requests";
    RecordManifestResult(unod_case.name, "VBM", "transport.churn.connections",
                         static_cast<double>(churn.connections));
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.churn.open_connections_final",
                         churn.open_connections_final);
    RecordManifestResult(unod_case.name, "VBM",
                         "transport.churn.threads_delta",
                         static_cast<double>(churn.threads_delta));

    server.Stop();

    if (!json_path.empty()) {
      std::ofstream file(json_path);
      if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 1;
      }
      file << ResultsJson(unod_case, clients, requests_per_client, results,
                          http_results, &fanout, &churn)
           << "\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    file << ResultsJson(unod_case, clients, requests_per_client, results,
                        http_results, nullptr, nullptr)
         << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vgod::bench

int main(int argc, char** argv) { return vgod::bench::Main(argc, argv); }
