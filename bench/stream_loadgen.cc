// stream_loadgen — load benchmark for the streaming graph subsystem.
//
// Phases:
//
//  1. Mixed traffic: trains a VBM on the standard cora UNOD case, enables
//     streaming on a ScoringEngine, then runs concurrent ingest clients
//     (edge toggles + attribute updates + occasional node appends, each
//     client mutating a disjoint node range so batches never conflict)
//     against concurrent /score-path clients. Reports ingest throughput,
//     the observed touched-nodes-per-event mean (the O(deg) cost
//     certificate), compactions absorbed, and score latency under
//     mutation pressure.
//
//  2. O(deg) scaling probe: drives DeltaGraphStore + OnlineScorer
//     directly (identity embedding) on synthetic planted-partition graphs
//     of n and 4n nodes at EQUAL average degree and times the pure
//     per-event incremental update. If updates cost O(deg) — not O(n) —
//     the per-event microseconds stay flat as the graph quadruples;
//     the reported ratio is the acceptance signal.
//
//  3. (--drift) Model-drift probe (docs/OBSERVABILITY.md): fingerprints
//     the trained model, fills a DriftMonitor window from served scores
//     (stable PSI must stay ~0), then replays an attribute-shifted event
//     mix through /ingest and rescoring (shifted PSI must cross the
//     0.25 alert threshold). Reports the per-score sketch-record cost
//     and the per-evaluation PSI/KS cost — the monitoring overhead the
//     serving path pays.
//
//   stream_loadgen [--ingest-threads=2] [--score-threads=4]
//                  [--batches=30] [--batch-size=32] [--requests=200]
//                  [--scale-nodes=2000] [--scale-events=4000]
//                  [--drift] [--drift-batches=8]
//                  [--json=PATH]
//
// Honors the usual bench env knobs (VGOD_BENCH_SCALE / _SEED /
// _EPOCH_SCALE); tools/check_ingest.py and check_bench.py consume the
// manifest written under VGOD_BENCH_MANIFEST.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/args.h"
#include "core/rng.h"
#include "datasets/synthetic.h"
#include "obs/drift.h"
#include "obs/fingerprint.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "stream/delta_graph.h"
#include "stream/events.h"
#include "stream/online_scorer.h"

namespace vgod::bench {
namespace {

double PercentileMs(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t n = sorted_ms->size();
  size_t index = static_cast<size_t>(q * static_cast<double>(n));
  if (index >= n) index = n - 1;
  return (*sorted_ms)[index];
}

struct MixedResult {
  int64_t events = 0;
  int64_t batches = 0;
  double ingest_wall_s = 0.0;
  double events_per_sec = 0.0;
  double touched_per_event = 0.0;
  int64_t compactions = 0;
  int64_t final_nodes = 0;
  int64_t score_requests = 0;
  double score_p50_ms = 0.0;
  double score_p99_ms = 0.0;
};

/// One ingest client: owns nodes [lo, hi) of the boot graph and toggles
/// edges only inside that range (plus range-local attribute updates and
/// the occasional node append), so concurrent clients can never race a
/// batch into invalidity — each sees its own edges' true state.
void IngestClient(serve::ScoringEngine* engine, const AttributedGraph& boot,
                  int lo, int hi, int batches, int batch_size, uint64_t seed,
                  int64_t* events_out, int64_t* touched_out) {
  Rng rng(seed);
  std::map<std::pair<int, int>, bool> edge_state;
  const int dim = boot.attribute_dim();
  const int span = hi - lo;
  for (int b = 0; b < batches; ++b) {
    stream::EventBatch batch;
    batch.events.reserve(batch_size);
    for (int e = 0; e < batch_size; ++e) {
      const double kind = rng.Uniform();
      if (kind < 0.65 && span >= 2) {
        int u = lo + static_cast<int>(rng.Next() % span);
        int v = lo + static_cast<int>(rng.Next() % span);
        if (u == v) v = lo + (v - lo + 1) % span;
        const std::pair<int, int> key = {std::min(u, v), std::max(u, v)};
        auto it = edge_state.find(key);
        const bool present =
            it != edge_state.end() ? it->second : boot.HasEdge(u, v);
        batch.events.push_back(present ? stream::GraphEvent::RemoveEdge(u, v)
                                       : stream::GraphEvent::AddEdge(u, v));
        edge_state[key] = !present;
      } else if (kind < 0.95) {
        const int node = lo + static_cast<int>(rng.Next() % span);
        std::vector<float> row(dim);
        for (float& x : row) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
        batch.events.push_back(
            stream::GraphEvent::UpdateAttributes(node, row));
      } else {
        std::vector<float> row(dim);
        for (float& x : row) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
        batch.events.push_back(stream::GraphEvent::AddNode(row));
      }
    }
    Result<serve::IngestResult> applied = engine->Ingest(batch);
    VGOD_CHECK(applied.ok()) << applied.status().ToString();
    *events_out += applied.value().events_applied;
    *touched_out += applied.value().touched_nodes;
  }
}

MixedResult RunMixedPhase(const UnodCase& unod_case, int ingest_threads,
                          int score_threads, int batches, int batch_size,
                          int score_requests_per_client) {
  MixedResult out;

  detectors::DetectorOptions options = OptionsFor(unod_case, EnvSeed());
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector("VBM", options);
  VGOD_CHECK(detector.ok()) << detector.status().ToString();
  std::printf("training VBM on %s (%d nodes)...\n", unod_case.name.c_str(),
              unod_case.graph.num_nodes());
  Status fitted = detector.value()->Fit(unod_case.graph);
  VGOD_CHECK(fitted.ok()) << fitted.ToString();

  serve::EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 8;
  config.max_delay_us = 500;
  serve::ScoringEngine engine(std::move(detector.value()), unod_case.graph,
                              config);
  serve::StreamingOptions stream_options;
  stream_options.compact_every = std::max(64, batch_size * batches / 4);
  VGOD_CHECK(engine.EnableStreaming(stream_options).ok());
  VGOD_CHECK(engine.Start().ok());
  obs::MetricsRegistry::Global().ResetAll();

  const int num_nodes = unod_case.graph.num_nodes();
  const int chunk = num_nodes / ingest_threads;
  std::vector<int64_t> events(ingest_threads, 0);
  std::vector<int64_t> touched(ingest_threads, 0);
  std::vector<std::vector<double>> score_ms(score_threads);
  std::atomic<bool> ingest_done{false};
  std::atomic<int> ingest_remaining{ingest_threads};
  std::atomic<double> ingest_wall_s{0.0};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(ingest_threads + score_threads);
  for (int t = 0; t < ingest_threads; ++t) {
    pool.emplace_back([&, t]() {
      const int lo = t * chunk;
      const int hi = t == ingest_threads - 1 ? num_nodes : lo + chunk;
      IngestClient(&engine, engine.graph(), lo, hi, batches, batch_size,
                   EnvSeed() * 977 + t, &events[t], &touched[t]);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      double prior = ingest_wall_s.load();
      while (prior < elapsed &&
             !ingest_wall_s.compare_exchange_weak(prior, elapsed)) {
      }
      if (ingest_remaining.fetch_sub(1) == 1) ingest_done.store(true);
    });
  }
  for (int c = 0; c < score_threads; ++c) {
    pool.emplace_back([&, c]() {
      std::vector<double>& mine = score_ms[c];
      int r = 0;
      // Closed loop until both the per-client budget is spent and the
      // ingest side has finished — score traffic covers the whole
      // mutation window.
      while (r < score_requests_per_client || !ingest_done.load()) {
        std::vector<int> nodes = {(c * 131 + r * 17) % num_nodes,
                                  (c * 131 + r * 17 + 7) % num_nodes};
        const auto t0 = std::chrono::steady_clock::now();
        Result<serve::ScoreResult> result = engine.ScoreNodes(std::move(nodes));
        const auto t1 = std::chrono::steady_clock::now();
        VGOD_CHECK(result.ok()) << result.status().ToString();
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        ++r;
      }
    });
  }
  for (std::thread& t : pool) t.join();

  for (int64_t e : events) out.events += e;
  int64_t touched_total = 0;
  for (int64_t t : touched) touched_total += t;
  out.batches = static_cast<int64_t>(ingest_threads) * batches;
  out.ingest_wall_s = ingest_wall_s.load();
  out.events_per_sec = out.ingest_wall_s > 0.0
                           ? static_cast<double>(out.events) / out.ingest_wall_s
                           : 0.0;
  out.touched_per_event =
      out.events > 0
          ? static_cast<double>(touched_total) / static_cast<double>(out.events)
          : 0.0;

  std::vector<double> merged;
  for (const std::vector<double>& per_client : score_ms) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  out.score_requests = static_cast<int64_t>(merged.size());
  out.score_p50_ms = PercentileMs(&merged, 0.50);
  out.score_p99_ms = PercentileMs(&merged, 0.99);
  out.final_nodes = engine.CurrentGraph()->num_nodes();

  Result<std::vector<serve::WatchlistEntry>> watchlist = engine.Watchlist(5);
  VGOD_CHECK(watchlist.ok()) << watchlist.status().ToString();
  out.compactions = static_cast<int64_t>(
      obs::MetricsRegistry::Global().GetGauge("stream.compactions")->Value());

  engine.Shutdown();
  return out;
}

struct ScalePoint {
  int num_nodes = 0;
  int64_t events = 0;
  double per_event_us = 0.0;
  double touched_per_event = 0.0;
};

/// Applies `num_events` edge toggles to a fresh store+scorer over
/// `graph`, timing only the incremental update (validate excluded).
ScalePoint RunScalePoint(const AttributedGraph& graph, int num_events,
                         uint64_t seed) {
  ScalePoint out;
  out.num_nodes = graph.num_nodes();

  stream::DeltaGraphStore store(graph);
  stream::OnlineScorerConfig config;  // Identity embedding, no self term.
  Result<stream::OnlineScorer> scorer = stream::OnlineScorer::Create(
      &store, config);
  VGOD_CHECK(scorer.ok()) << scorer.status().ToString();

  Rng rng(seed);
  const int n = graph.num_nodes();
  int64_t touched_total = 0;
  std::chrono::nanoseconds spent{0};
  for (int e = 0; e < num_events; ++e) {
    int u = static_cast<int>(rng.Next() % n);
    int v = static_cast<int>(rng.Next() % n);
    if (u == v) v = (v + 1) % n;
    const stream::GraphEvent event =
        store.HasEdge(u, v) ? stream::GraphEvent::RemoveEdge(u, v)
                            : stream::GraphEvent::AddEdge(u, v);
    VGOD_CHECK(store.ValidateBatch({event}).ok());
    const auto t0 = std::chrono::steady_clock::now();
    store.ApplyOne(event);
    Result<int> touched = scorer.value().ApplyOne(event);
    spent += std::chrono::steady_clock::now() - t0;
    VGOD_CHECK(touched.ok()) << touched.status().ToString();
    touched_total += touched.value();
  }
  out.events = num_events;
  out.per_event_us = num_events > 0
                         ? std::chrono::duration<double, std::micro>(spent)
                                   .count() /
                               static_cast<double>(num_events)
                         : 0.0;
  out.touched_per_event =
      num_events > 0
          ? static_cast<double>(touched_total) / static_cast<double>(num_events)
          : 0.0;
  return out;
}

struct DriftResult {
  int64_t scores_recorded = 0;
  double record_ns_per_score = 0.0;
  int64_t evaluations = 0;
  double evaluate_ms = 0.0;
  double stable_psi = 0.0;
  double shifted_psi = 0.0;
  double shifted_ks = 0.0;
};

/// The model-drift probe: fingerprint the trained model, fill the
/// monitor window with served scores (baseline agreement), replay an
/// attribute-shifted event mix through the streaming engine, rescore,
/// and measure both the detection signal (PSI before/after) and the
/// monitoring overhead (sketch-record ns, evaluation ms).
DriftResult RunDriftPhase(const UnodCase& unod_case, int batches) {
  DriftResult out;

  detectors::DetectorOptions options = OptionsFor(unod_case, EnvSeed());
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector("VBM", options);
  VGOD_CHECK(detector.ok()) << detector.status().ToString();
  Status fitted = detector.value()->Fit(unod_case.graph);
  VGOD_CHECK(fitted.ok()) << fitted.ToString();

  // The bundle-export fingerprint, built the same way vgod_cli does it.
  const detectors::DetectorOutput trained =
      detector.value()->Score(unod_case.graph);
  std::vector<float> training_scores(trained.score.begin(),
                                     trained.score.end());
  std::vector<int64_t> degrees;
  degrees.reserve(static_cast<size_t>(unod_case.graph.num_nodes()));
  for (int node = 0; node < unod_case.graph.num_nodes(); ++node) {
    degrees.push_back(unod_case.graph.Degree(node));
  }
  obs::ModelFingerprint fingerprint = obs::BuildFingerprint(
      training_scores,
      unod_case.graph.has_attributes() ? unod_case.graph.attributes().data()
                                       : nullptr,
      unod_case.graph.num_nodes(),
      unod_case.graph.has_attributes() ? unod_case.graph.attribute_dim() : 0,
      degrees);

  serve::EngineConfig config;
  config.num_threads = 2;
  config.max_batch = 8;
  config.max_delay_us = 500;
  serve::ScoringEngine engine(std::move(detector.value()), unod_case.graph,
                              config);
  VGOD_CHECK(engine.EnableStreaming(serve::StreamingOptions()).ok());
  VGOD_CHECK(engine.Start().ok());

  obs::DriftConfig drift_config;
  drift_config.window_buckets = 2;
  drift_config.min_window_count = 16;
  obs::DriftMonitor monitor(drift_config);
  monitor.SetBaseline(std::move(fingerprint));

  const int num_nodes = unod_case.graph.num_nodes();
  const int dim = unod_case.graph.attribute_dim();
  std::chrono::nanoseconds record_spent{0};

  const auto score_and_record = [&]() {
    for (int start = 0; start < num_nodes; start += 64) {
      std::vector<int> nodes;
      nodes.reserve(64);
      for (int i = start; i < std::min(start + 64, num_nodes); ++i) {
        nodes.push_back(i);
      }
      Result<serve::ScoreResult> result = engine.ScoreNodes(std::move(nodes));
      VGOD_CHECK(result.ok()) << result.status().ToString();
      const auto t0 = std::chrono::steady_clock::now();
      for (double s : result.value().score) monitor.RecordScore(s);
      record_spent += std::chrono::steady_clock::now() - t0;
      out.scores_recorded +=
          static_cast<int64_t>(result.value().score.size());
    }
  };

  // Stable window: served scores reproduce the training fingerprint.
  score_and_record();
  out.stable_psi = monitor.Evaluate().score_psi;

  // Attribute-shifted event mix: every event rewrites a node's row with
  // an extreme random sign pattern. Per-node random directions scatter
  // the learned embeddings, inflating neighbor variance everywhere
  // (identical constant rows would collapse it instead).
  Rng rng(EnvSeed() + 41);
  const int batch_size = std::max(1, num_nodes / std::max(1, batches));
  for (int b = 0; b < batches; ++b) {
    stream::EventBatch batch;
    batch.events.reserve(static_cast<size_t>(batch_size));
    for (int e = 0; e < batch_size; ++e) {
      const int node = static_cast<int>(rng.Next() % num_nodes);
      std::vector<float> row(dim);
      for (float& x : row) x = rng.Uniform() < 0.5 ? -20.0f : 20.0f;
      batch.events.push_back(stream::GraphEvent::UpdateAttributes(node, row));
    }
    Result<serve::IngestResult> applied = engine.Ingest(batch);
    VGOD_CHECK(applied.ok()) << applied.status().ToString();
  }

  // Retire the stable window (2 buckets), then refill from the shifted
  // graph and time the evaluation path.
  monitor.Rotate();
  monitor.Rotate();
  score_and_record();
  out.record_ns_per_score =
      out.scores_recorded > 0
          ? std::chrono::duration<double, std::nano>(record_spent).count() /
                static_cast<double>(out.scores_recorded)
          : 0.0;

  constexpr int kEvaluations = 20;
  std::chrono::nanoseconds evaluate_spent{0};
  obs::DriftReport report;
  for (int i = 0; i < kEvaluations; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    report = monitor.Evaluate();
    evaluate_spent += std::chrono::steady_clock::now() - t0;
  }
  out.evaluations = kEvaluations;
  out.evaluate_ms =
      std::chrono::duration<double, std::milli>(evaluate_spent).count() /
      kEvaluations;
  out.shifted_psi = report.score_psi;
  out.shifted_ks = report.score_ks;

  engine.Shutdown();
  return out;
}

std::string ResultsJson(const UnodCase& unod_case, const MixedResult& mixed,
                        const ScalePoint& small, const ScalePoint& large,
                        double ratio, const DriftResult* drift) {
  std::string out = "{\"benchmark\":\"stream_loadgen\",\"dataset\":";
  obs::AppendJsonString(&out, unod_case.name);
  out.append(",\"mixed\":{\"events\":");
  obs::AppendJsonNumber(&out, static_cast<double>(mixed.events));
  out.append(",\"batches\":");
  obs::AppendJsonNumber(&out, static_cast<double>(mixed.batches));
  out.append(",\"events_per_sec\":");
  obs::AppendJsonNumber(&out, mixed.events_per_sec);
  out.append(",\"touched_per_event\":");
  obs::AppendJsonNumber(&out, mixed.touched_per_event);
  out.append(",\"compactions\":");
  obs::AppendJsonNumber(&out, static_cast<double>(mixed.compactions));
  out.append(",\"final_nodes\":");
  obs::AppendJsonNumber(&out, static_cast<double>(mixed.final_nodes));
  out.append(",\"score_requests\":");
  obs::AppendJsonNumber(&out, static_cast<double>(mixed.score_requests));
  out.append(",\"score_p50_ms\":");
  obs::AppendJsonNumber(&out, mixed.score_p50_ms);
  out.append(",\"score_p99_ms\":");
  obs::AppendJsonNumber(&out, mixed.score_p99_ms);
  out.append("},\"scaling\":{\"points\":[");
  for (const ScalePoint* p : {&small, &large}) {
    if (p == &large) out.push_back(',');
    out.append("{\"nodes\":");
    obs::AppendJsonNumber(&out, p->num_nodes);
    out.append(",\"events\":");
    obs::AppendJsonNumber(&out, static_cast<double>(p->events));
    out.append(",\"per_event_us\":");
    obs::AppendJsonNumber(&out, p->per_event_us);
    out.append(",\"touched_per_event\":");
    obs::AppendJsonNumber(&out, p->touched_per_event);
    out.append("}");
  }
  out.append("],\"per_event_us_ratio\":");
  obs::AppendJsonNumber(&out, ratio);
  out.append("}");
  if (drift != nullptr) {
    out.append(",\"drift\":{\"scores_recorded\":");
    obs::AppendJsonNumber(&out, static_cast<double>(drift->scores_recorded));
    out.append(",\"record_ns_per_score\":");
    obs::AppendJsonNumber(&out, drift->record_ns_per_score);
    out.append(",\"evaluate_ms\":");
    obs::AppendJsonNumber(&out, drift->evaluate_ms);
    out.append(",\"stable_psi\":");
    obs::AppendJsonNumber(&out, drift->stable_psi);
    out.append(",\"shifted_psi\":");
    obs::AppendJsonNumber(&out, drift->shifted_psi);
    out.append(",\"shifted_ks\":");
    obs::AppendJsonNumber(&out, drift->shifted_ks);
    out.append("}");
  }
  out.append("}");
  return out;
}

int Main(int argc, char** argv) {
  Result<ArgParser> args = ArgParser::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status valid = args.value().Validate({"ingest-threads", "score-threads",
                                        "batches", "batch-size", "requests",
                                        "scale-nodes", "scale-events",
                                        "drift", "drift-batches", "json"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }
  const int ingest_threads = std::max<int>(
      1, static_cast<int>(args.value().GetInt("ingest-threads", 2)));
  const int score_threads = std::max<int>(
      1, static_cast<int>(args.value().GetInt("score-threads", 4)));
  const int batches =
      std::max<int>(1, static_cast<int>(args.value().GetInt("batches", 30)));
  const int batch_size = std::max<int>(
      1, static_cast<int>(args.value().GetInt("batch-size", 32)));
  const int score_requests = std::max<int>(
      1, static_cast<int>(args.value().GetInt("requests", 200)));
  const int scale_nodes = std::max<int>(
      200, static_cast<int>(args.value().GetInt("scale-nodes", 2000)));
  const int scale_events = std::max<int>(
      100, static_cast<int>(args.value().GetInt("scale-events", 4000)));
  const bool drift_phase = args.value().GetBool("drift");
  const int drift_batches = std::max<int>(
      1, static_cast<int>(args.value().GetInt("drift-batches", 8)));
  const std::string json_path = args.value().GetString("json", "");

  PrintBanner("stream_loadgen",
              "streaming subsystem load benchmark: ingest throughput under "
              "concurrent scoring + O(deg) per-event scaling probe");

  UnodCase unod_case = MakeUnodCase("cora", EnvSeed());
  MixedResult mixed =
      RunMixedPhase(unod_case, ingest_threads, score_threads, batches,
                    batch_size, score_requests);
  std::printf(
      "\nmixed phase: %lld events in %lld batches (%d ingest x %d score "
      "clients)\n",
      static_cast<long long>(mixed.events),
      static_cast<long long>(mixed.batches), ingest_threads, score_threads);
  std::printf("  ingest            %12.1f events/s\n", mixed.events_per_sec);
  std::printf("  touched/event     %12.2f nodes\n", mixed.touched_per_event);
  std::printf("  compactions       %12lld\n",
              static_cast<long long>(mixed.compactions));
  std::printf("  resident nodes    %12lld\n",
              static_cast<long long>(mixed.final_nodes));
  std::printf("  score p50 / p99   %9.3f / %.3f ms over %lld requests\n",
              mixed.score_p50_ms, mixed.score_p99_ms,
              static_cast<long long>(mixed.score_requests));
  RecordManifestResult(unod_case.name, "VBM", "mixed.ingest_events_per_sec",
                       mixed.events_per_sec);
  RecordManifestResult(unod_case.name, "VBM", "mixed.touched_per_event",
                       mixed.touched_per_event);
  RecordManifestResult(unod_case.name, "VBM", "mixed.score_p99_ms",
                       mixed.score_p99_ms);
  RecordManifestResult(unod_case.name, "VBM", "mixed.compactions",
                       static_cast<double>(mixed.compactions));

  // Scaling probe: same expected degree, 4x the nodes. O(deg) updates
  // keep per-event cost flat; an O(n) dependence would show ~4x.
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = scale_nodes;
  spec.avg_degree = 8.0;
  spec.attribute_dim = 16;
  Rng small_rng(EnvSeed() + 1);
  const AttributedGraph small_graph =
      datasets::GeneratePlantedPartition(spec, &small_rng);
  spec.num_nodes = scale_nodes * 4;
  Rng large_rng(EnvSeed() + 2);
  const AttributedGraph large_graph =
      datasets::GeneratePlantedPartition(spec, &large_rng);

  const ScalePoint small =
      RunScalePoint(small_graph, scale_events, EnvSeed() + 3);
  const ScalePoint large =
      RunScalePoint(large_graph, scale_events, EnvSeed() + 4);
  const double ratio =
      small.per_event_us > 0.0 ? large.per_event_us / small.per_event_us : 0.0;
  std::printf("\nscaling probe (%d edge toggles, avg degree %.0f):\n",
              scale_events, spec.avg_degree);
  std::printf("  %8d nodes  %8.2f us/event  %6.2f touched/event\n",
              small.num_nodes, small.per_event_us, small.touched_per_event);
  std::printf("  %8d nodes  %8.2f us/event  %6.2f touched/event\n",
              large.num_nodes, large.per_event_us, large.touched_per_event);
  std::printf("  per-event cost ratio (4x nodes): %.2fx  (O(deg) => ~1, "
              "O(n) => ~4)\n",
              ratio);
  RecordManifestResult("synthetic", "stream", "scale.per_event_us_small",
                       small.per_event_us);
  RecordManifestResult("synthetic", "stream", "scale.per_event_us_large",
                       large.per_event_us);
  RecordManifestResult("synthetic", "stream", "scale.per_event_us_ratio",
                       ratio);
  RecordManifestResult("synthetic", "stream", "scale.touched_per_event",
                       large.touched_per_event);

  DriftResult drift;
  if (drift_phase) {
    drift = RunDriftPhase(unod_case, drift_batches);
    std::printf("\ndrift probe (%d shift batches over %lld served "
                "scores):\n",
                drift_batches,
                static_cast<long long>(drift.scores_recorded));
    std::printf("  record cost       %12.1f ns/score\n",
                drift.record_ns_per_score);
    std::printf("  evaluate cost     %12.4f ms (PSI+KS+structural)\n",
                drift.evaluate_ms);
    std::printf("  PSI stable/shift  %9.4f / %.4f   (alert threshold "
                "0.25)\n",
                drift.stable_psi, drift.shifted_psi);
    std::printf("  KS  shifted       %12.4f\n", drift.shifted_ks);
    RecordManifestResult(unod_case.name, "VBM", "drift.record_ns_per_score",
                         drift.record_ns_per_score);
    RecordManifestResult(unod_case.name, "VBM", "drift.evaluate_ms",
                         drift.evaluate_ms);
    RecordManifestResult(unod_case.name, "VBM", "drift.stable_psi",
                         drift.stable_psi);
    RecordManifestResult(unod_case.name, "VBM", "drift.shifted_psi",
                         drift.shifted_psi);
  }

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    file << ResultsJson(unod_case, mixed, small, large, ratio,
                        drift_phase ? &drift : nullptr)
         << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vgod::bench

int main(int argc, char** argv) { return vgod::bench::Main(argc, argv); }
