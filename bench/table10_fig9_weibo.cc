// Regenerates paper Table X and Fig 9: the labeled-outlier study on the
// Weibo-like dataset. Table X compares VGOD against AnomalyDAE on total /
// structural / contextual AUC; Fig 9's statistics (degree distribution of
// outliers vs inliers, attribute variance, homophily) are re-measured on
// the simulated graph.
#include <cstdio>

#include "bench_common.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "graph/graph_ops.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Table X + Fig 9", "labeled outlier study on weibo-sim");
  bench::UnodCase unod = bench::MakeUnodCase("weibo", bench::EnvSeed());

  eval::Table table({"Model", "AUC", "AUC(V-, O_str)", "AUC(V-, O_attr)"});
  for (const std::string& model : {std::string("VGOD"),
                                   std::string("AnomalyDAE")}) {
    Result<std::unique_ptr<detectors::OutlierDetector>> detector =
        detectors::MakeDetector(model,
                                bench::OptionsFor(unod, bench::EnvSeed()));
    VGOD_CHECK(detector.ok());
    VGOD_CHECK(detector.value()->Fit(unod.graph).ok());
    detectors::DetectorOutput out = detector.value()->Score(unod.graph);
    table.AddRow()
        .AddCell(model)
        .AddCell(eval::Auc(out.score, unod.combined), 3)
        .AddCell(eval::Auc(out.structural_score, unod.combined), 3)
        .AddCell(eval::Auc(out.contextual_score, unod.combined), 3);
    std::fprintf(stderr, "  [done] %s\n", model.c_str());
  }
  std::printf("\nTable X — component AUCs on weibo-sim\n");
  table.Print();
  std::printf(
      "\nPaper reference: VGOD 0.977/0.922/0.926 vs AnomalyDAE\n"
      "0.925/0.796/0.925 — the win comes from the structural component.\n");

  // Fig 9 statistics.
  const AttributedGraph& g = unod.graph;
  const auto& labels = g.outlier_labels();
  double outlier_deg = 0.0, inlier_deg = 0.0;
  int n_out = 0, n_in = 0;
  int64_t outlier_edges = 0, outlier_to_outlier = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (labels[i]) {
      outlier_deg += g.Degree(i);
      ++n_out;
      for (int32_t j : g.Neighbors(i)) {
        ++outlier_edges;
        outlier_to_outlier += labels[j];
      }
    } else {
      inlier_deg += g.Degree(i);
      ++n_in;
    }
  }
  std::printf("\nFig 9 statistics (measured | paper)\n");
  std::printf("  homophily:                   %.3f | 0.75\n",
              graph_ops::EdgeHomophily(g));
  std::printf("  outlier attribute variance:  %.2f | 425.0\n",
              datasets::AttributeVariance(g.attributes(), labels, 1));
  std::printf("  inlier attribute variance:   %.2f | 11.95\n",
              datasets::AttributeVariance(g.attributes(), labels, 0));
  std::printf("  mean degree outlier/inlier:  %.2f / %.2f (no elevation)\n",
              outlier_deg / n_out, inlier_deg / n_in);
  std::printf("  outlier->outlier edge share: %.2f (cohesive clusters)\n\n",
              static_cast<double>(outlier_to_outlier) / outlier_edges);
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
