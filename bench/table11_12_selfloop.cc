// Regenerates paper Tables XI and XII: the self-loop edge ablation.
// Table XI: VBM with/without self loops on *contextual-only* injections —
// plain neighbor variance is blind to contextual outliers, the self-loop
// technique makes them visible. Table XII: the same ablation inside full
// VGOD on the standard UNOD experiment.
#include <cstdio>

#include "bench_common.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Tables XI + XII", "self-loop edge ablation");

  // Table XI: contextual-only injection, VBM only.
  std::vector<std::string> header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    header.push_back(name);
  }
  eval::Table vbm_table(header);
  vbm_table.AddRow().AddCell("VBM");
  eval::Table vbm_sl_table(header);  // Filled in the same loop.
  std::vector<double> with_sl;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    Result<datasets::Dataset> dataset =
        datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
    VGOD_CHECK(dataset.ok());
    const bench::InjectionParams params =
        bench::StandardParams(name, dataset.value().graph.num_nodes());
    Rng rng(bench::EnvSeed() ^ 0x11);
    Result<injection::InjectionResult> injected =
        injection::InjectContextualOutliers(
            dataset.value().graph, params.num_cliques * params.clique_size,
            params.candidate_set, injection::DistanceKind::kEuclidean, &rng);
    VGOD_CHECK(injected.ok());
    for (bool self_loop : {false, true}) {
      detectors::VbmConfig config;
      config.seed = bench::EnvSeed();
      config.self_loop = self_loop;
      config.epochs = std::max(
          1, static_cast<int>(config.epochs * bench::EnvEpochScale()));
      detectors::Vbm vbm(config);
      VGOD_CHECK(vbm.Fit(injected.value().graph).ok());
      const double auc = eval::Auc(vbm.Score(injected.value().graph).score,
                                   injected.value().contextual);
      if (self_loop) {
        with_sl.push_back(auc);
      } else {
        vbm_table.AddCell(auc, 4);
      }
    }
    std::fprintf(stderr, "  [done] Table XI %s\n", name.c_str());
  }
  vbm_sl_table.AddRow().AddCell("VBM w/ SL");
  for (double auc : with_sl) vbm_sl_table.AddCell(auc, 4);

  std::printf("\nTable XI — AUC of VBM on contextual-only outliers\n");
  vbm_table.Print();
  vbm_sl_table.Print();
  std::printf(
      "Paper reference: VBM ~0.47-0.51 (blind); w/ SL jumps to 0.65-0.86,\n"
      "largest on the low-degree citation datasets.\n");

  // Table XII: standard UNOD, VGOD with and without the self loop.
  std::vector<std::string> header12 = {"Model"};
  std::vector<bench::UnodCase> cases;
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
    header12.push_back(name);
  }
  eval::Table vgod_table(header12);
  for (bool self_loop : {false, true}) {
    vgod_table.AddRow().AddCell(self_loop ? "VGOD w/ SL" : "VGOD");
    for (const bench::UnodCase& unod : cases) {
      detectors::DetectorOptions options =
          bench::OptionsFor(unod, bench::EnvSeed());
      options.self_loop = self_loop;
      Result<std::unique_ptr<detectors::OutlierDetector>> vgod =
          detectors::MakeDetector("VGOD", options);
      VGOD_CHECK(vgod.ok());
      VGOD_CHECK(vgod.value()->Fit(unod.graph).ok());
      vgod_table.AddCell(
          eval::Auc(vgod.value()->Score(unod.graph).score, unod.combined),
          4);
      std::fprintf(stderr, "  [done] Table XII sl=%d %s\n", self_loop,
                   unod.name.c_str());
    }
  }
  std::printf("\nTable XII — AUC of VGOD with/without the self loop\n");
  vgod_table.Print();
  std::printf(
      "Paper reference (shape): the self loop improves every dataset\n"
      "except flickr (high average degree), where it slightly hurts.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
