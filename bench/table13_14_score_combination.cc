// Regenerates paper Tables XIII and XIV (Appendix A): VGOD's AUC and
// AucGap under the three score-combination strategies — mean-std (Eq. 19),
// raw weighted sum, and sum-to-unit (Eq. 23).
#include <cstdio>

#include "bench_common.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Tables XIII + XIV", "score combination ablation");

  std::vector<bench::UnodCase> cases;
  std::vector<std::string> auc_header = {"Model"};
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
    auc_header.push_back(name);
  }
  eval::Table auc_table(auc_header);

  std::vector<std::string> gap_header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    gap_header.push_back(name);
  }
  eval::Table gap_table(gap_header);

  // kRank is this repo's extension beyond the paper's three combiners.
  for (auto combination : {detectors::ScoreCombination::kMeanStd,
                           detectors::ScoreCombination::kWeighted,
                           detectors::ScoreCombination::kSumToUnit,
                           detectors::ScoreCombination::kRank}) {
    const std::string label =
        std::string("VGOD (") + detectors::ScoreCombinationName(combination) +
        ")";
    auc_table.AddRow().AddCell(label);
    gap_table.AddRow().AddCell(label);
    for (const bench::UnodCase& unod : cases) {
      detectors::VgodConfig config;
      config.vbm.seed = bench::EnvSeed();
      config.arm.seed = bench::EnvSeed() + 1;
      config.vbm.self_loop = unod.self_loop;
      config.vbm.row_normalize_attributes = unod.row_normalize;
      config.arm.row_normalize_attributes = unod.row_normalize;
      config.combination = combination;
      config.vbm.epochs = std::max(
          1, static_cast<int>(config.vbm.epochs * bench::EnvEpochScale()));
      config.arm.epochs = std::max(
          1, static_cast<int>(config.arm.epochs * bench::EnvEpochScale()));
      detectors::Vgod vgod(config);
      VGOD_CHECK(vgod.Fit(unod.graph).ok());
      detectors::DetectorOutput out = vgod.Score(unod.graph);
      auc_table.AddCell(eval::Auc(out.score, unod.combined), 3);
      if (unod.has_type_labels()) {
        gap_table.AddCell(
            eval::AucGap(
                eval::AucSubset(out.score, unod.combined, unod.structural),
                eval::AucSubset(out.score, unod.combined, unod.contextual)),
            4);
      }
      std::fprintf(stderr, "  [done] %s on %s\n", label.c_str(),
                   unod.name.c_str());
    }
  }

  std::printf("\nTable XIII — AUC by combination strategy\n");
  auc_table.Print();
  std::printf("\nTable XIV — AucGap by combination strategy\n");
  gap_table.Print();
  std::printf(
      "\nPaper reference (shape): mean-std wins or ties on AUC everywhere\n"
      "and has by far the most balanced AucGap; the raw weighted sum is\n"
      "the most unbalanced (scale mismatch between the two scores).\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
