// Regenerates paper Tables XV and XVI (Appendix B): the inductive setting.
// Every model trains on the standard injected graph, then scores a graph
// re-injected with a different seed (AnomalyDAE is excluded — it cannot
// perform inductive inference, paper Table II).
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

const std::vector<std::string> kModels = {"Dominant", "DONE", "CoLA",
                                          "CONAD", "DegNorm", "VGOD"};

struct InductiveCase {
  std::string name;
  AttributedGraph train_graph;
  injection::InjectionResult test;
  bool self_loop;
};

void Run() {
  bench::PrintBanner("Tables XV + XVI",
                     "UNOD in the inductive setting (fresh injection)");

  std::vector<InductiveCase> cases;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    Result<datasets::Dataset> dataset =
        datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
    VGOD_CHECK(dataset.ok());
    const bench::InjectionParams params =
        bench::StandardParams(name, dataset.value().graph.num_nodes());
    Rng train_rng(bench::EnvSeed() ^ 0x15);
    Rng test_rng(bench::EnvSeed() ^ 0x16);
    Result<injection::InjectionResult> train = injection::InjectStandard(
        dataset.value().graph, params.num_cliques, params.clique_size,
        params.candidate_set, &train_rng);
    Result<injection::InjectionResult> test = injection::InjectStandard(
        dataset.value().graph, params.num_cliques, params.clique_size,
        params.candidate_set, &test_rng);
    VGOD_CHECK(train.ok() && test.ok());
    cases.push_back(InductiveCase{name, std::move(train.value().graph),
                                  std::move(test).value(),
                                  name != "flickr"});
  }

  std::vector<std::string> header = {"Model"};
  for (const auto& unod : cases) header.push_back(unod.name);
  eval::Table auc_table(header);

  std::vector<std::string> gap_header = {"Model"};
  for (const auto& unod : cases) {
    gap_header.push_back(unod.name + ":gap");
    gap_header.push_back(unod.name + ":str");
    gap_header.push_back(unod.name + ":ctx");
  }
  eval::Table gap_table(gap_header);

  for (const std::string& model : kModels) {
    auc_table.AddRow().AddCell(model);
    gap_table.AddRow().AddCell(model);
    for (const InductiveCase& unod : cases) {
      detectors::DetectorOptions options;
      options.seed = bench::EnvSeed();
      options.self_loop = unod.self_loop;
      options.epoch_scale = bench::EnvEpochScale();
      Result<std::unique_ptr<detectors::OutlierDetector>> detector =
          detectors::MakeDetector(model, options);
      VGOD_CHECK(detector.ok());
      VGOD_CHECK(detector.value()->supports_inductive()) << model;
      VGOD_CHECK(detector.value()->Fit(unod.train_graph).ok());
      detectors::DetectorOutput out =
          detector.value()->Score(unod.test.graph);
      auc_table.AddCell(eval::Auc(out.score, unod.test.combined), 4);
      const double str =
          eval::AucSubset(out.score, unod.test.combined, unod.test.structural);
      const double ctx =
          eval::AucSubset(out.score, unod.test.combined, unod.test.contextual);
      gap_table.AddCell(eval::AucGap(str, ctx), 3);
      gap_table.AddCell(str, 3);
      gap_table.AddCell(ctx, 3);
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   unod.name.c_str());
    }
  }

  std::printf("\nTable XV — inductive AUC\n");
  auc_table.Print();
  std::printf("\nTable XVI — inductive AucGap with per-type AUCs\n");
  gap_table.Print();
  std::printf(
      "\nPaper reference (shape): the ordering mirrors the transductive\n"
      "setting — VGOD clearly best and most balanced, DegNorm competitive\n"
      "with the deep baselines; VGOD can even improve inductively since\n"
      "overfitting to the training graph is removed.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
