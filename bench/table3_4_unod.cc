// Regenerates paper Table IV (UNOD AUC for all models on all five
// datasets) and Table III (AucGap with per-type AUCs on the injected
// datasets) from one training run per (model, dataset) pair.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

struct CellResult {
  double auc = 0.0;
  double str_auc = 0.0;   // AUC(V_str, O)
  double ctx_auc = 0.0;   // AUC(V_attr, O)
  bool has_types = false;
};

// Paper-reported values for the side-by-side comparison (Table IV).
const std::map<std::string, std::map<std::string, double>> kPaperAuc = {
    {"Dominant", {{"cora", 0.8134}, {"citeseer", 0.8250}, {"pubmed", 0.7999},
                  {"flickr", 0.7440}, {"weibo", 0.925}}},
    {"AnomalyDAE", {{"cora", 0.8433}, {"citeseer", 0.8441},
                    {"pubmed", 0.8898}, {"flickr", 0.7524},
                    {"weibo", 0.928}}},
    {"DONE", {{"cora", 0.8498}, {"citeseer", 0.8800}, {"pubmed", 0.7664},
              {"flickr", 0.7482}, {"weibo", 0.887}}},
    {"CoLA", {{"cora", 0.8790}, {"citeseer", 0.8861}, {"pubmed", 0.9214},
              {"flickr", 0.7530}, {"weibo", 0.748}}},
    {"CONAD", {{"cora", 0.7456}, {"citeseer", 0.7078}, {"pubmed", 0.6930},
               {"flickr", 0.7395}, {"weibo", 0.927}}},
    {"DegNorm", {{"cora", 0.8928}, {"citeseer", 0.9385}, {"pubmed", 0.9074},
                 {"flickr", 0.7515}, {"weibo", 0.893}}},
    {"VGOD", {{"cora", 0.9503}, {"citeseer", 0.9845}, {"pubmed", 0.9813},
              {"flickr", 0.8773}, {"weibo", 0.9765}}},
};

void Run() {
  bench::PrintBanner("Table IV + Table III",
                     "UNOD experiment: AUC, per-type AUC and AucGap");

  std::map<std::string, std::map<std::string, CellResult>> results;
  std::vector<bench::UnodCase> cases;
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
  }

  for (const std::string& model : detectors::ComparisonDetectorNames()) {
    for (const bench::UnodCase& unod : cases) {
      Result<std::unique_ptr<detectors::OutlierDetector>> detector =
          detectors::MakeDetector(model,
                                  bench::OptionsFor(unod, bench::EnvSeed()));
      VGOD_CHECK(detector.ok());
      const Status fit = detector.value()->Fit(unod.graph);
      VGOD_CHECK(fit.ok()) << model << "/" << unod.name << ": "
                           << fit.ToString();
      const detectors::DetectorOutput out =
          detector.value()->Score(unod.graph);
      CellResult cell;
      cell.auc = eval::Auc(out.score, unod.combined);
      if (unod.has_type_labels()) {
        cell.has_types = true;
        cell.str_auc =
            eval::AucSubset(out.score, unod.combined, unod.structural);
        cell.ctx_auc =
            eval::AucSubset(out.score, unod.combined, unod.contextual);
      }
      results[model][unod.name] = cell;
      bench::RecordManifestResult(unod.name, model, "auc", cell.auc);
      if (cell.has_types) {
        bench::RecordManifestResult(unod.name, model, "structural_auc",
                                    cell.str_auc);
        bench::RecordManifestResult(unod.name, model, "contextual_auc",
                                    cell.ctx_auc);
      }
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   unod.name.c_str());
    }
  }

  std::printf("\nTable IV — AUC (measured | paper)\n");
  std::vector<std::string> header = {"Model"};
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    header.push_back(name);
  }
  eval::Table auc_table(header);
  for (const std::string& model : detectors::ComparisonDetectorNames()) {
    auc_table.AddRow().AddCell(model);
    for (const std::string& name : datasets::BenchmarkDatasetNames()) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.4f | %.3f",
                    results[model][name].auc, kPaperAuc.at(model).at(name));
      auc_table.AddCell(cell);
    }
  }
  auc_table.Print();

  std::printf(
      "\nTable III — AucGap with per-type AUCs (injected datasets only)\n");
  std::vector<std::string> gap_header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    gap_header.push_back(name + ":gap");
    gap_header.push_back(name + ":str");
    gap_header.push_back(name + ":ctx");
  }
  eval::Table gap_table(gap_header);
  for (const std::string& model : detectors::ComparisonDetectorNames()) {
    gap_table.AddRow().AddCell(model);
    for (const std::string& name : datasets::InjectionDatasetNames()) {
      const CellResult& cell = results[model][name];
      gap_table.AddCell(eval::AucGap(cell.str_auc, cell.ctx_auc), 3);
      gap_table.AddCell(cell.str_auc, 3);
      gap_table.AddCell(cell.ctx_auc, 3);
    }
  }
  gap_table.Print();

  std::printf(
      "\nPaper reference (shape): VGOD has the best AUC on every dataset\n"
      "and the lowest overall AucGap; CONAD and Dominant are strongly\n"
      "contextual-biased (str << ctx); DegNorm is competitive with the\n"
      "deep baselines purely through leakage.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
