// Regenerates paper Table V and Fig 6: structural outlier detection with
// clique sizes q in {3, 5, 10, 15}. Table V reports AUC on the union of
// all groups; Fig 6 reports each group's AUC separately (the polylines).
// VBM's robustness as q shrinks — while degree-based signals fade — is the
// headline result.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

const std::vector<int> kCliqueSizes = {3, 5, 10, 15};
// CONAD is omitted as in the paper ("we fail to get a reasonable result").
// GUIDE (paper ref [21], higher-order structure reconstruction) is added
// as an extension row: clique injection is its home turf.
const std::vector<std::string> kModels = {"Dominant", "AnomalyDAE", "DONE",
                                          "CoLA", "GUIDE", "Deg", "VBM"};

struct SweepCase {
  std::string name;
  injection::GroupedInjectionResult injected;
  bool self_loop;
};

std::vector<double> StructuralScores(const std::string& model,
                                     const SweepCase& sweep) {
  // Paper §VI-C2 protocol, reproduced faithfully: baselines are trained
  // "until their AUC score reaches the peak" (a sweep over epoch budgets
  // here, since our detectors re-initialize per Fit), and "if their model
  // outputs multiple scores, we adopt the score with the highest AUC as
  // its structural score".
  const bool sweep_epochs = model != "Deg" && model != "VBM";
  std::vector<double> budgets = sweep_epochs
                                    ? std::vector<double>{0.12, 0.25, 0.5, 1.0}
                                    : std::vector<double>{1.0};
  std::vector<double> best;
  double best_auc = -1.0;
  for (double budget : budgets) {
    detectors::DetectorOptions options;
    options.seed = bench::EnvSeed();
    options.self_loop = sweep.self_loop;
    options.epoch_scale = budget * bench::EnvEpochScale();
    Result<std::unique_ptr<detectors::OutlierDetector>> detector =
        detectors::MakeDetector(model, options);
    VGOD_CHECK(detector.ok());
    VGOD_CHECK(detector.value()->Fit(sweep.injected.graph).ok());
    detectors::DetectorOutput out =
        detector.value()->Score(sweep.injected.graph);
    for (const std::vector<double>* candidate :
         {&out.score, &out.structural_score, &out.contextual_score}) {
      if (candidate->empty()) continue;
      const double auc = eval::Auc(*candidate, sweep.injected.combined);
      if (auc > best_auc) {
        best_auc = auc;
        best = *candidate;
      }
    }
  }
  return best;
}

void Run() {
  bench::PrintBanner("Table V + Fig 6",
                     "structural detection under clique sizes q={3,5,10,15}");

  std::vector<SweepCase> cases;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    Result<datasets::Dataset> dataset =
        datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
    VGOD_CHECK(dataset.ok());
    // Paper: each group holds 2% of |V| structural outliers.
    const int group_size =
        std::max(4, dataset.value().graph.num_nodes() / 50);
    Rng rng(bench::EnvSeed() ^ 0x56);
    Result<injection::GroupedInjectionResult> injected =
        injection::InjectCliqueSizeGroups(dataset.value().graph, kCliqueSizes,
                                          group_size, &rng);
    VGOD_CHECK(injected.ok()) << injected.status().ToString();
    cases.push_back(SweepCase{name, std::move(injected).value(),
                              name != "flickr"});
  }

  std::vector<std::string> header = {"Model"};
  for (const auto& sweep : cases) header.push_back(sweep.name);
  eval::Table union_table(header);

  // Fig 6 series: model -> dataset -> per-q AUC.
  std::vector<std::string> fig_header = {"Model", "dataset"};
  for (int q : kCliqueSizes) fig_header.push_back("q=" + std::to_string(q));
  eval::Table fig_table(fig_header);

  for (const std::string& model : kModels) {
    union_table.AddRow().AddCell(model);
    for (const SweepCase& sweep : cases) {
      const std::vector<double> scores = StructuralScores(model, sweep);
      union_table.AddCell(
          eval::Auc(scores, sweep.injected.combined), 4);
      fig_table.AddRow().AddCell(model).AddCell(sweep.name);
      for (size_t g = 0; g < kCliqueSizes.size(); ++g) {
        std::vector<uint8_t> mask(sweep.injected.graph.num_nodes(), 0);
        for (int node : sweep.injected.groups[g]) mask[node] = 1;
        fig_table.AddCell(
            eval::AucSubset(scores, sweep.injected.combined, mask), 3);
      }
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   sweep.name.c_str());
    }
  }

  std::printf("\nTable V — AUC on the union of all clique-size groups\n");
  union_table.Print();
  std::printf("\nFig 6 — per-group AUC (one polyline per model)\n");
  fig_table.Print();
  std::printf(
      "\nPaper reference (shape): VBM best on all datasets (0.98+ on the\n"
      "citation sets, largest gain on Flickr); Deg beats the deep\n"
      "baselines on the low-degree citation datasets; every model's AUC\n"
      "drops as q shrinks but VBM declines the least.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
