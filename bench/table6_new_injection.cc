// Regenerates paper Table VI: structural outlier detection under the
// paper's new leakage-free injection — victims keep their degree but their
// neighbors are replaced with uniform samples from other communities.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

// GUIDE (paper ref [21]) added as an extension row.
const std::vector<std::string> kModels = {"Dominant", "AnomalyDAE", "DONE",
                                          "CoLA", "CONAD", "GUIDE", "Deg",
                                          "VBM"};

void Run() {
  bench::PrintBanner("Table VI",
                     "structural detection under edge-replacement injection");

  std::vector<std::string> header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    header.push_back(name);
  }
  eval::Table table(header);

  struct Case {
    std::string name;
    injection::InjectionResult injected;
    bool self_loop;
  };
  std::vector<Case> cases;
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    Result<datasets::Dataset> dataset =
        datasets::MakeDataset(name, bench::EnvScale(), bench::EnvSeed());
    VGOD_CHECK(dataset.ok());
    // Paper: 10% of nodes become structural outliers.
    Rng rng(bench::EnvSeed() ^ 0x66);
    Result<injection::InjectionResult> injected =
        injection::InjectStructuralByEdgeReplacement(
            dataset.value().graph, dataset.value().graph.num_nodes() / 10,
            &rng);
    VGOD_CHECK(injected.ok()) << injected.status().ToString();
    cases.push_back(
        Case{name, std::move(injected).value(), name != "flickr"});
  }

  for (const std::string& model : kModels) {
    table.AddRow().AddCell(model);
    for (const Case& unod : cases) {
      // Same protocol as the clique sweep (paper §VI-C2/§VI-D2): baselines
      // are trained to their AUC peak over epoch budgets and their
      // best-AUC score head is taken as the structural score.
      const bool sweep_epochs = model != "Deg" && model != "VBM";
      std::vector<double> budgets =
          sweep_epochs ? std::vector<double>{0.12, 0.25, 0.5, 1.0}
                       : std::vector<double>{1.0};
      double best_auc = -1.0;
      for (double budget : budgets) {
        detectors::DetectorOptions options;
        options.seed = bench::EnvSeed();
        options.self_loop = unod.self_loop;
        options.epoch_scale = budget * bench::EnvEpochScale();
        Result<std::unique_ptr<detectors::OutlierDetector>> detector =
            detectors::MakeDetector(model, options);
        VGOD_CHECK(detector.ok());
        VGOD_CHECK(detector.value()->Fit(unod.injected.graph).ok());
        detectors::DetectorOutput out =
            detector.value()->Score(unod.injected.graph);
        for (const std::vector<double>* candidate :
             {&out.score, &out.structural_score, &out.contextual_score}) {
          if (candidate->empty()) continue;
          best_auc = std::max(
              best_auc, eval::Auc(*candidate, unod.injected.structural));
        }
      }
      table.AddCell(best_auc, 3);
      std::fprintf(stderr, "  [done] %s on %s\n", model.c_str(),
                   unod.name.c_str());
    }
  }
  table.Print();
  std::printf(
      "\nPaper reference (shape): VBM clearly best everywhere (0.86-0.96);\n"
      "degree is uninformative by construction; reconstruction baselines\n"
      "land in the 0.5-0.85 band. (Deg is added here as a control; the\n"
      "paper omits it since its AUC is ~0.5 under this injection.)\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
