// Regenerates paper Tables VIII and IX: VGOD's AUC and AucGap when the
// GNN backbone of ARM is swapped between GIN, GCN and GAT.
#include <cstdio>

#include "bench_common.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace vgod {
namespace {

void Run() {
  bench::PrintBanner("Tables VIII + IX", "ARM GNN backbone ablation");

  std::vector<bench::UnodCase> cases;
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    cases.push_back(bench::MakeUnodCase(name, bench::EnvSeed()));
  }

  std::vector<std::string> auc_header = {"Model"};
  for (const auto& unod : cases) auc_header.push_back(unod.name);
  eval::Table auc_table(auc_header);

  std::vector<std::string> gap_header = {"Model"};
  for (const std::string& name : datasets::InjectionDatasetNames()) {
    gap_header.push_back(name);
  }
  eval::Table gap_table(gap_header);

  for (auto kind :
       {gnn::GnnKind::kGin, gnn::GnnKind::kGcn, gnn::GnnKind::kGat}) {
    const std::string label =
        std::string("VGOD (") + gnn::GnnKindName(kind) + ")";
    auc_table.AddRow().AddCell(label);
    gap_table.AddRow().AddCell(label);
    for (const bench::UnodCase& unod : cases) {
      detectors::VgodConfig config;
      config.vbm.seed = bench::EnvSeed();
      config.arm.seed = bench::EnvSeed() + 1;
      config.vbm.self_loop = unod.self_loop;
      config.vbm.row_normalize_attributes = unod.row_normalize;
      config.arm.row_normalize_attributes = unod.row_normalize;
      config.arm.gnn = kind;
      config.vbm.epochs = std::max(
          1, static_cast<int>(config.vbm.epochs * bench::EnvEpochScale()));
      config.arm.epochs = std::max(
          1, static_cast<int>(config.arm.epochs * bench::EnvEpochScale()));
      detectors::Vgod vgod(config);
      VGOD_CHECK(vgod.Fit(unod.graph).ok());
      detectors::DetectorOutput out = vgod.Score(unod.graph);
      auc_table.AddCell(eval::Auc(out.score, unod.combined), 4);
      if (unod.has_type_labels()) {
        gap_table.AddCell(
            eval::AucGap(
                eval::AucSubset(out.score, unod.combined, unod.structural),
                eval::AucSubset(out.score, unod.combined, unod.contextual)),
            4);
      }
      std::fprintf(stderr, "  [done] %s on %s\n", label.c_str(),
                   unod.name.c_str());
    }
  }

  std::printf("\nTable VIII — AUC by backbone\n");
  auc_table.Print();
  std::printf("\nTable IX — AucGap by backbone (injected datasets)\n");
  gap_table.Print();
  std::printf(
      "\nPaper reference (shape): the three backbones are within a small\n"
      "band of each other on the injected datasets; GAT wins clearly on\n"
      "weibo.\n\n");
}

}  // namespace
}  // namespace vgod

int main() {
  vgod::Run();
  return 0;
}
