file(REMOVE_RECURSE
  "CMakeFiles/ext_minibatch_scaling.dir/ext_minibatch_scaling.cc.o"
  "CMakeFiles/ext_minibatch_scaling.dir/ext_minibatch_scaling.cc.o.d"
  "ext_minibatch_scaling"
  "ext_minibatch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_minibatch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
