# Empty compiler generated dependencies file for ext_minibatch_scaling.
# This may be replaced when dependencies are built.
