file(REMOVE_RECURSE
  "CMakeFiles/ext_nondeep_baselines.dir/ext_nondeep_baselines.cc.o"
  "CMakeFiles/ext_nondeep_baselines.dir/ext_nondeep_baselines.cc.o.d"
  "ext_nondeep_baselines"
  "ext_nondeep_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nondeep_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
