# Empty dependencies file for ext_nondeep_baselines.
# This may be replaced when dependencies are built.
