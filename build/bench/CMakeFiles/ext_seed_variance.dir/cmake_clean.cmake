file(REMOVE_RECURSE
  "CMakeFiles/ext_seed_variance.dir/ext_seed_variance.cc.o"
  "CMakeFiles/ext_seed_variance.dir/ext_seed_variance.cc.o.d"
  "ext_seed_variance"
  "ext_seed_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
