# Empty compiler generated dependencies file for ext_seed_variance.
# This may be replaced when dependencies are built.
