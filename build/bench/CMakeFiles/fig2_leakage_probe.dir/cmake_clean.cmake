file(REMOVE_RECURSE
  "CMakeFiles/fig2_leakage_probe.dir/fig2_leakage_probe.cc.o"
  "CMakeFiles/fig2_leakage_probe.dir/fig2_leakage_probe.cc.o.d"
  "fig2_leakage_probe"
  "fig2_leakage_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_leakage_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
