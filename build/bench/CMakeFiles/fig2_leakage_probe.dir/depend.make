# Empty dependencies file for fig2_leakage_probe.
# This may be replaced when dependencies are built.
