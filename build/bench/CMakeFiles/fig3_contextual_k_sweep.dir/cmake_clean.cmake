file(REMOVE_RECURSE
  "CMakeFiles/fig3_contextual_k_sweep.dir/fig3_contextual_k_sweep.cc.o"
  "CMakeFiles/fig3_contextual_k_sweep.dir/fig3_contextual_k_sweep.cc.o.d"
  "fig3_contextual_k_sweep"
  "fig3_contextual_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_contextual_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
