# Empty compiler generated dependencies file for fig3_contextual_k_sweep.
# This may be replaced when dependencies are built.
