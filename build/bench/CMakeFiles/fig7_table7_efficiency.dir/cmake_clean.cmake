file(REMOVE_RECURSE
  "CMakeFiles/fig7_table7_efficiency.dir/fig7_table7_efficiency.cc.o"
  "CMakeFiles/fig7_table7_efficiency.dir/fig7_table7_efficiency.cc.o.d"
  "fig7_table7_efficiency"
  "fig7_table7_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_table7_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
