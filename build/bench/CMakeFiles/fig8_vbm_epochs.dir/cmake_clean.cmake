file(REMOVE_RECURSE
  "CMakeFiles/fig8_vbm_epochs.dir/fig8_vbm_epochs.cc.o"
  "CMakeFiles/fig8_vbm_epochs.dir/fig8_vbm_epochs.cc.o.d"
  "fig8_vbm_epochs"
  "fig8_vbm_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vbm_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
