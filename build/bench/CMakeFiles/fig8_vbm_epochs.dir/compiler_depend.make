# Empty compiler generated dependencies file for fig8_vbm_epochs.
# This may be replaced when dependencies are built.
