file(REMOVE_RECURSE
  "CMakeFiles/table10_fig9_weibo.dir/table10_fig9_weibo.cc.o"
  "CMakeFiles/table10_fig9_weibo.dir/table10_fig9_weibo.cc.o.d"
  "table10_fig9_weibo"
  "table10_fig9_weibo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_fig9_weibo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
