# Empty dependencies file for table10_fig9_weibo.
# This may be replaced when dependencies are built.
