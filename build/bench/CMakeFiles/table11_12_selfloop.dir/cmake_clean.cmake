file(REMOVE_RECURSE
  "CMakeFiles/table11_12_selfloop.dir/table11_12_selfloop.cc.o"
  "CMakeFiles/table11_12_selfloop.dir/table11_12_selfloop.cc.o.d"
  "table11_12_selfloop"
  "table11_12_selfloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_12_selfloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
