# Empty compiler generated dependencies file for table11_12_selfloop.
# This may be replaced when dependencies are built.
