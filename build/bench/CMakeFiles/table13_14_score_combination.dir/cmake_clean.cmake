file(REMOVE_RECURSE
  "CMakeFiles/table13_14_score_combination.dir/table13_14_score_combination.cc.o"
  "CMakeFiles/table13_14_score_combination.dir/table13_14_score_combination.cc.o.d"
  "table13_14_score_combination"
  "table13_14_score_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_14_score_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
