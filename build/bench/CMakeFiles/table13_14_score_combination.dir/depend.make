# Empty dependencies file for table13_14_score_combination.
# This may be replaced when dependencies are built.
