file(REMOVE_RECURSE
  "CMakeFiles/table15_16_inductive.dir/table15_16_inductive.cc.o"
  "CMakeFiles/table15_16_inductive.dir/table15_16_inductive.cc.o.d"
  "table15_16_inductive"
  "table15_16_inductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table15_16_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
