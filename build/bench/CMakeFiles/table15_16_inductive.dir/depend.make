# Empty dependencies file for table15_16_inductive.
# This may be replaced when dependencies are built.
