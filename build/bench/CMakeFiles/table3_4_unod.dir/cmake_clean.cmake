file(REMOVE_RECURSE
  "CMakeFiles/table3_4_unod.dir/table3_4_unod.cc.o"
  "CMakeFiles/table3_4_unod.dir/table3_4_unod.cc.o.d"
  "table3_4_unod"
  "table3_4_unod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_4_unod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
