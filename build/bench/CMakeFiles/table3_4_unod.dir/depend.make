# Empty dependencies file for table3_4_unod.
# This may be replaced when dependencies are built.
