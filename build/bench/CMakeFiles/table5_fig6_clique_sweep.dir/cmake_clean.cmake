file(REMOVE_RECURSE
  "CMakeFiles/table5_fig6_clique_sweep.dir/table5_fig6_clique_sweep.cc.o"
  "CMakeFiles/table5_fig6_clique_sweep.dir/table5_fig6_clique_sweep.cc.o.d"
  "table5_fig6_clique_sweep"
  "table5_fig6_clique_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fig6_clique_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
