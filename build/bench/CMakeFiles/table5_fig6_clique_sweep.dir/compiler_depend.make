# Empty compiler generated dependencies file for table5_fig6_clique_sweep.
# This may be replaced when dependencies are built.
