file(REMOVE_RECURSE
  "CMakeFiles/table6_new_injection.dir/table6_new_injection.cc.o"
  "CMakeFiles/table6_new_injection.dir/table6_new_injection.cc.o.d"
  "table6_new_injection"
  "table6_new_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_new_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
