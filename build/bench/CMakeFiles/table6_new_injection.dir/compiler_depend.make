# Empty compiler generated dependencies file for table6_new_injection.
# This may be replaced when dependencies are built.
