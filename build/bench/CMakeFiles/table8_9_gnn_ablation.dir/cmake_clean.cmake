file(REMOVE_RECURSE
  "CMakeFiles/table8_9_gnn_ablation.dir/table8_9_gnn_ablation.cc.o"
  "CMakeFiles/table8_9_gnn_ablation.dir/table8_9_gnn_ablation.cc.o.d"
  "table8_9_gnn_ablation"
  "table8_9_gnn_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_9_gnn_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
