file(REMOVE_RECURSE
  "../lib/libvgod_bench_common.a"
  "../lib/libvgod_bench_common.pdb"
  "CMakeFiles/vgod_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/vgod_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
