file(REMOVE_RECURSE
  "../lib/libvgod_bench_common.a"
)
