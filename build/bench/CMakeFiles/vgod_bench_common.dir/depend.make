# Empty dependencies file for vgod_bench_common.
# This may be replaced when dependencies are built.
