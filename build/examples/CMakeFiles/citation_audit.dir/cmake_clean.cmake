file(REMOVE_RECURSE
  "CMakeFiles/citation_audit.dir/citation_audit.cpp.o"
  "CMakeFiles/citation_audit.dir/citation_audit.cpp.o.d"
  "citation_audit"
  "citation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
