# Empty compiler generated dependencies file for citation_audit.
# This may be replaced when dependencies are built.
