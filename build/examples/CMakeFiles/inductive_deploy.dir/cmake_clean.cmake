file(REMOVE_RECURSE
  "CMakeFiles/inductive_deploy.dir/inductive_deploy.cpp.o"
  "CMakeFiles/inductive_deploy.dir/inductive_deploy.cpp.o.d"
  "inductive_deploy"
  "inductive_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inductive_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
