# Empty compiler generated dependencies file for inductive_deploy.
# This may be replaced when dependencies are built.
