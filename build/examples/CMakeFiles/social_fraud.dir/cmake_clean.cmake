file(REMOVE_RECURSE
  "CMakeFiles/social_fraud.dir/social_fraud.cpp.o"
  "CMakeFiles/social_fraud.dir/social_fraud.cpp.o.d"
  "social_fraud"
  "social_fraud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_fraud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
