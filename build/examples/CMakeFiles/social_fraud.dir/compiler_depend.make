# Empty compiler generated dependencies file for social_fraud.
# This may be replaced when dependencies are built.
