file(REMOVE_RECURSE
  "CMakeFiles/vgod_core.dir/args.cc.o"
  "CMakeFiles/vgod_core.dir/args.cc.o.d"
  "CMakeFiles/vgod_core.dir/logging.cc.o"
  "CMakeFiles/vgod_core.dir/logging.cc.o.d"
  "CMakeFiles/vgod_core.dir/rng.cc.o"
  "CMakeFiles/vgod_core.dir/rng.cc.o.d"
  "CMakeFiles/vgod_core.dir/status.cc.o"
  "CMakeFiles/vgod_core.dir/status.cc.o.d"
  "libvgod_core.a"
  "libvgod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
