file(REMOVE_RECURSE
  "libvgod_core.a"
)
