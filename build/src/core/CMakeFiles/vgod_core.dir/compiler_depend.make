# Empty compiler generated dependencies file for vgod_core.
# This may be replaced when dependencies are built.
