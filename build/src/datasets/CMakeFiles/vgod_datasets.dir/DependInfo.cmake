
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/io.cc" "src/datasets/CMakeFiles/vgod_datasets.dir/io.cc.o" "gcc" "src/datasets/CMakeFiles/vgod_datasets.dir/io.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/datasets/CMakeFiles/vgod_datasets.dir/registry.cc.o" "gcc" "src/datasets/CMakeFiles/vgod_datasets.dir/registry.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/datasets/CMakeFiles/vgod_datasets.dir/synthetic.cc.o" "gcc" "src/datasets/CMakeFiles/vgod_datasets.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/vgod_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vgod_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
