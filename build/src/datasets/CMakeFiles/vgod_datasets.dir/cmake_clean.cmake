file(REMOVE_RECURSE
  "CMakeFiles/vgod_datasets.dir/io.cc.o"
  "CMakeFiles/vgod_datasets.dir/io.cc.o.d"
  "CMakeFiles/vgod_datasets.dir/registry.cc.o"
  "CMakeFiles/vgod_datasets.dir/registry.cc.o.d"
  "CMakeFiles/vgod_datasets.dir/synthetic.cc.o"
  "CMakeFiles/vgod_datasets.dir/synthetic.cc.o.d"
  "libvgod_datasets.a"
  "libvgod_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
