file(REMOVE_RECURSE
  "libvgod_datasets.a"
)
