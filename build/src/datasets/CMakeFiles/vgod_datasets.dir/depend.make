# Empty dependencies file for vgod_datasets.
# This may be replaced when dependencies are built.
