
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/anomalydae.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/anomalydae.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/anomalydae.cc.o.d"
  "/root/repo/src/detectors/arm.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/arm.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/arm.cc.o.d"
  "/root/repo/src/detectors/cola.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/cola.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/cola.cc.o.d"
  "/root/repo/src/detectors/conad.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/conad.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/conad.cc.o.d"
  "/root/repo/src/detectors/dominant.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/dominant.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/dominant.cc.o.d"
  "/root/repo/src/detectors/done.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/done.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/done.cc.o.d"
  "/root/repo/src/detectors/guide.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/guide.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/guide.cc.o.d"
  "/root/repo/src/detectors/nondeep.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/nondeep.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/nondeep.cc.o.d"
  "/root/repo/src/detectors/registry.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/registry.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/registry.cc.o.d"
  "/root/repo/src/detectors/serialize.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/serialize.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/serialize.cc.o.d"
  "/root/repo/src/detectors/simple.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/simple.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/simple.cc.o.d"
  "/root/repo/src/detectors/vbm.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/vbm.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/vbm.cc.o.d"
  "/root/repo/src/detectors/vgod.cc" "src/detectors/CMakeFiles/vgod_detectors.dir/vgod.cc.o" "gcc" "src/detectors/CMakeFiles/vgod_detectors.dir/vgod.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/vgod_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vgod_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vgod_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/vgod_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
