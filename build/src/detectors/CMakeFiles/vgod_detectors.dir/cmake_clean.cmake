file(REMOVE_RECURSE
  "CMakeFiles/vgod_detectors.dir/anomalydae.cc.o"
  "CMakeFiles/vgod_detectors.dir/anomalydae.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/arm.cc.o"
  "CMakeFiles/vgod_detectors.dir/arm.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/cola.cc.o"
  "CMakeFiles/vgod_detectors.dir/cola.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/conad.cc.o"
  "CMakeFiles/vgod_detectors.dir/conad.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/dominant.cc.o"
  "CMakeFiles/vgod_detectors.dir/dominant.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/done.cc.o"
  "CMakeFiles/vgod_detectors.dir/done.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/guide.cc.o"
  "CMakeFiles/vgod_detectors.dir/guide.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/nondeep.cc.o"
  "CMakeFiles/vgod_detectors.dir/nondeep.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/registry.cc.o"
  "CMakeFiles/vgod_detectors.dir/registry.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/serialize.cc.o"
  "CMakeFiles/vgod_detectors.dir/serialize.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/simple.cc.o"
  "CMakeFiles/vgod_detectors.dir/simple.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/vbm.cc.o"
  "CMakeFiles/vgod_detectors.dir/vbm.cc.o.d"
  "CMakeFiles/vgod_detectors.dir/vgod.cc.o"
  "CMakeFiles/vgod_detectors.dir/vgod.cc.o.d"
  "libvgod_detectors.a"
  "libvgod_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
