file(REMOVE_RECURSE
  "libvgod_detectors.a"
)
