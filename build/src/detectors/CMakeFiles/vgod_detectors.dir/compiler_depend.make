# Empty compiler generated dependencies file for vgod_detectors.
# This may be replaced when dependencies are built.
