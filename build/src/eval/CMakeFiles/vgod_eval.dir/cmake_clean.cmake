file(REMOVE_RECURSE
  "CMakeFiles/vgod_eval.dir/metrics.cc.o"
  "CMakeFiles/vgod_eval.dir/metrics.cc.o.d"
  "CMakeFiles/vgod_eval.dir/table.cc.o"
  "CMakeFiles/vgod_eval.dir/table.cc.o.d"
  "libvgod_eval.a"
  "libvgod_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
