file(REMOVE_RECURSE
  "libvgod_eval.a"
)
