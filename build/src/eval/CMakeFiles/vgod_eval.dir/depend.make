# Empty dependencies file for vgod_eval.
# This may be replaced when dependencies are built.
