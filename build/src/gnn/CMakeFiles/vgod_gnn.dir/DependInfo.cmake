
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/graph_autograd.cc" "src/gnn/CMakeFiles/vgod_gnn.dir/graph_autograd.cc.o" "gcc" "src/gnn/CMakeFiles/vgod_gnn.dir/graph_autograd.cc.o.d"
  "/root/repo/src/gnn/layers.cc" "src/gnn/CMakeFiles/vgod_gnn.dir/layers.cc.o" "gcc" "src/gnn/CMakeFiles/vgod_gnn.dir/layers.cc.o.d"
  "/root/repo/src/gnn/parameter_free.cc" "src/gnn/CMakeFiles/vgod_gnn.dir/parameter_free.cc.o" "gcc" "src/gnn/CMakeFiles/vgod_gnn.dir/parameter_free.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/vgod_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vgod_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
