file(REMOVE_RECURSE
  "CMakeFiles/vgod_gnn.dir/graph_autograd.cc.o"
  "CMakeFiles/vgod_gnn.dir/graph_autograd.cc.o.d"
  "CMakeFiles/vgod_gnn.dir/layers.cc.o"
  "CMakeFiles/vgod_gnn.dir/layers.cc.o.d"
  "CMakeFiles/vgod_gnn.dir/parameter_free.cc.o"
  "CMakeFiles/vgod_gnn.dir/parameter_free.cc.o.d"
  "libvgod_gnn.a"
  "libvgod_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
