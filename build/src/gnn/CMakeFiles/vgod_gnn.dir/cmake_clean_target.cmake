file(REMOVE_RECURSE
  "libvgod_gnn.a"
)
