# Empty compiler generated dependencies file for vgod_gnn.
# This may be replaced when dependencies are built.
