file(REMOVE_RECURSE
  "CMakeFiles/vgod_graph.dir/algorithms.cc.o"
  "CMakeFiles/vgod_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/vgod_graph.dir/graph.cc.o"
  "CMakeFiles/vgod_graph.dir/graph.cc.o.d"
  "CMakeFiles/vgod_graph.dir/graph_ops.cc.o"
  "CMakeFiles/vgod_graph.dir/graph_ops.cc.o.d"
  "CMakeFiles/vgod_graph.dir/sampling.cc.o"
  "CMakeFiles/vgod_graph.dir/sampling.cc.o.d"
  "libvgod_graph.a"
  "libvgod_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
