file(REMOVE_RECURSE
  "libvgod_graph.a"
)
