# Empty compiler generated dependencies file for vgod_graph.
# This may be replaced when dependencies are built.
