
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/injection/injection.cc" "src/injection/CMakeFiles/vgod_injection.dir/injection.cc.o" "gcc" "src/injection/CMakeFiles/vgod_injection.dir/injection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/vgod_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vgod_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
