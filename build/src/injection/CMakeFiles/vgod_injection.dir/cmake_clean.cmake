file(REMOVE_RECURSE
  "CMakeFiles/vgod_injection.dir/injection.cc.o"
  "CMakeFiles/vgod_injection.dir/injection.cc.o.d"
  "libvgod_injection.a"
  "libvgod_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
