file(REMOVE_RECURSE
  "libvgod_injection.a"
)
