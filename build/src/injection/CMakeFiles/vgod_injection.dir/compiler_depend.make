# Empty compiler generated dependencies file for vgod_injection.
# This may be replaced when dependencies are built.
