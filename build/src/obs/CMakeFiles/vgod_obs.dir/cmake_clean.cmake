file(REMOVE_RECURSE
  "CMakeFiles/vgod_obs.dir/json.cc.o"
  "CMakeFiles/vgod_obs.dir/json.cc.o.d"
  "CMakeFiles/vgod_obs.dir/memory.cc.o"
  "CMakeFiles/vgod_obs.dir/memory.cc.o.d"
  "CMakeFiles/vgod_obs.dir/metrics.cc.o"
  "CMakeFiles/vgod_obs.dir/metrics.cc.o.d"
  "CMakeFiles/vgod_obs.dir/monitor.cc.o"
  "CMakeFiles/vgod_obs.dir/monitor.cc.o.d"
  "CMakeFiles/vgod_obs.dir/trace.cc.o"
  "CMakeFiles/vgod_obs.dir/trace.cc.o.d"
  "libvgod_obs.a"
  "libvgod_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
