file(REMOVE_RECURSE
  "libvgod_obs.a"
)
