# Empty dependencies file for vgod_obs.
# This may be replaced when dependencies are built.
