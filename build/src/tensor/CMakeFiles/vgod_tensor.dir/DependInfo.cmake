
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/autograd.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/autograd.cc.o.d"
  "/root/repo/src/tensor/functional.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/functional.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/functional.cc.o.d"
  "/root/repo/src/tensor/gradcheck.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/gradcheck.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/gradcheck.cc.o.d"
  "/root/repo/src/tensor/init.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/init.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/init.cc.o.d"
  "/root/repo/src/tensor/kernels.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/kernels.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/kernels.cc.o.d"
  "/root/repo/src/tensor/nn.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/nn.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/nn.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/optimizer.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/optimizer.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/vgod_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/vgod_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
