file(REMOVE_RECURSE
  "CMakeFiles/vgod_tensor.dir/autograd.cc.o"
  "CMakeFiles/vgod_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/functional.cc.o"
  "CMakeFiles/vgod_tensor.dir/functional.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/vgod_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/init.cc.o"
  "CMakeFiles/vgod_tensor.dir/init.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/kernels.cc.o"
  "CMakeFiles/vgod_tensor.dir/kernels.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/nn.cc.o"
  "CMakeFiles/vgod_tensor.dir/nn.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/optimizer.cc.o"
  "CMakeFiles/vgod_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/vgod_tensor.dir/tensor.cc.o"
  "CMakeFiles/vgod_tensor.dir/tensor.cc.o.d"
  "libvgod_tensor.a"
  "libvgod_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
