file(REMOVE_RECURSE
  "libvgod_tensor.a"
)
