# Empty dependencies file for vgod_tensor.
# This may be replaced when dependencies are built.
