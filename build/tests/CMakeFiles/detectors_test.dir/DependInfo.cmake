
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/detectors_test.cc" "tests/CMakeFiles/detectors_test.dir/detectors_test.cc.o" "gcc" "tests/CMakeFiles/detectors_test.dir/detectors_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detectors/CMakeFiles/vgod_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/injection/CMakeFiles/vgod_injection.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/vgod_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/vgod_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vgod_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/vgod_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vgod_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/vgod_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vgod_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
