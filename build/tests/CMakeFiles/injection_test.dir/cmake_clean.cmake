file(REMOVE_RECURSE
  "CMakeFiles/injection_test.dir/injection_test.cc.o"
  "CMakeFiles/injection_test.dir/injection_test.cc.o.d"
  "injection_test"
  "injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
