file(REMOVE_RECURSE
  "CMakeFiles/vgod_cli.dir/vgod_cli.cc.o"
  "CMakeFiles/vgod_cli.dir/vgod_cli.cc.o.d"
  "vgod_cli"
  "vgod_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
