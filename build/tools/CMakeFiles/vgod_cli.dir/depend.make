# Empty dependencies file for vgod_cli.
# This may be replaced when dependencies are built.
