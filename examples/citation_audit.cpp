// Scenario: auditing an outlier-detection benchmark for data leakage —
// the paper's §IV analysis as a tool. Given a citation-style network, this
// example (1) injects outliers with the standard protocol, (2) measures
// how much of the "detection" signal is explainable by the two leakage
// probes, and (3) re-evaluates under the leakage-free edge-replacement
// injection.
//
//   ./build/examples/citation_audit
#include <cstdio>

#include "core/rng.h"
#include "datasets/registry.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "eval/metrics.h"
#include "injection/injection.h"

int main() {
  using namespace vgod;

  Result<datasets::Dataset> dataset = datasets::MakeDataset("cora", 1.0, 3);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  AttributedGraph graph = std::move(dataset.value().graph);
  std::printf("citation network: %d nodes, avg degree %.2f\n\n",
              graph.num_nodes(), graph.AverageDegree());

  // --- Part 1: the standard injection leaks labels into trivial features.
  Rng rng(11);
  injection::InjectionResult standard =
      std::move(injection::InjectStandard(graph, 3, 15, 50, &rng)).value();

  detectors::Deg deg;
  detectors::L2Norm l2;
  (void)deg.Fit(standard.graph);
  (void)l2.Fit(standard.graph);
  std::printf("standard injection (q=15, k=50, Euclidean):\n");
  std::printf("  degree probe  -> structural outliers: AUC %.3f\n",
              eval::AucSubset(deg.Score(standard.graph).score,
                              standard.combined, standard.structural));
  std::printf("  L2-norm probe -> contextual outliers: AUC %.3f\n",
              eval::AucSubset(l2.Score(standard.graph).score,
                              standard.combined, standard.contextual));
  std::printf("  => training-free features nearly solve the benchmark;\n"
              "     any model evaluated on it may just be reading leakage.\n\n");

  // --- Part 2: smaller k mitigates the contextual leakage (paper Fig 3).
  for (int k : {50, 5, 1}) {
    Rng k_rng(100 + k);
    injection::InjectionResult ctx =
        std::move(injection::InjectContextualOutliers(
                      graph, 60, k, injection::DistanceKind::kEuclidean,
                      &k_rng))
            .value();
    detectors::L2Norm probe;
    (void)probe.Fit(ctx.graph);
    std::printf("  k=%-2d  L2-norm AUC %.3f\n", k,
                eval::Auc(probe.Score(ctx.graph).score, ctx.contextual));
  }

  // --- Part 3: the leakage-free injection — degree carries nothing, the
  // variance-based model still detects.
  Rng er_rng(13);
  injection::InjectionResult replaced =
      std::move(injection::InjectStructuralByEdgeReplacement(
                    graph, graph.num_nodes() / 10, &er_rng))
          .value();
  detectors::Deg deg2;
  (void)deg2.Fit(replaced.graph);
  detectors::VbmConfig config;
  config.self_loop = true;
  detectors::Vbm vbm(config);
  const Status fit = vbm.Fit(replaced.graph);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("\nedge-replacement injection (degree-preserving):\n");
  std::printf("  degree probe AUC: %.3f  (leakage gone)\n",
              eval::Auc(deg2.Score(replaced.graph).score,
                        replaced.structural));
  std::printf("  VBM AUC:          %.3f  (neighbor variance still detects)\n",
              eval::Auc(vbm.Score(replaced.graph).score,
                        replaced.structural));
  return 0;
}
