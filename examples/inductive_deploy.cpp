// Scenario: train once, deploy on new graphs — the inductive setting of
// the paper's Appendix B. A VGOD model is fitted on one snapshot of a
// network and persisted as a model bundle (the artifact vgod_serve
// loads); a separate "deployment" restores the bundle by name — no
// architecture knowledge needed — and scores fresh snapshots the model
// never saw, round-tripped through the on-disk graph format.
//
//   ./build/examples/inductive_deploy
#include <cstdio>

#include "core/rng.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "injection/injection.h"

int main() {
  using namespace vgod;

  Result<datasets::Dataset> dataset =
      datasets::MakeDataset("citeseer", 1.0, 5);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const AttributedGraph& base = dataset.value().graph;

  // Training snapshot: one injected instance of the network.
  Rng train_rng(21);
  injection::InjectionResult train =
      std::move(injection::InjectStandard(base, 3, 15, 50, &train_rng))
          .value();

  detectors::VgodConfig config;
  config.vbm.self_loop = true;
  detectors::Vgod vgod(config);
  const Status fit = vgod.Fit(train.graph);
  if (!fit.ok()) {
    std::fprintf(stderr, "training failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  std::printf("trained VGOD on snapshot 0 (%d nodes) in %.2fs\n",
              train.graph.num_nodes(), vgod.train_stats().train_seconds);
  std::printf("transductive AUC (same graph): %.3f\n\n",
              eval::Auc(vgod.Score(train.graph).score, train.combined));

  // Persist the fitted model as a bundle: detector name + architecture
  // config + checksummed parameters in one self-describing file.
  const std::string bundle_path = "/tmp/vgod_inductive.vgodb";
  Result<detectors::ModelBundle> exported = vgod.ExportBundle();
  if (!exported.ok()) {
    std::fprintf(stderr, "%s\n", exported.status().ToString().c_str());
    return 1;
  }
  Status saved_bundle = detectors::SaveBundle(exported.value(), bundle_path);
  if (!saved_bundle.ok()) {
    std::fprintf(stderr, "%s\n", saved_bundle.ToString().c_str());
    return 1;
  }

  // Deployment side: restore the model from the bundle alone. The bundle
  // names its detector and carries the config, so this code has no
  // VgodConfig of its own — exactly what `vgod_serve --bundle=` does.
  Result<detectors::ModelBundle> bundle = detectors::LoadBundle(bundle_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<detectors::OutlierDetector>> deployed =
      detectors::MakeDetectorFromBundle(bundle.value());
  if (!deployed.ok()) {
    std::fprintf(stderr, "%s\n", deployed.status().ToString().c_str());
    return 1;
  }
  std::remove(bundle_path.c_str());
  std::printf("restored %s from bundle (%zu parameter tensors)\n\n",
              deployed.value()->name().c_str(),
              bundle.value().params.size());

  // Three fresh snapshots, each injected with a new seed. They round-trip
  // through the on-disk graph format as a deployment would.
  for (uint64_t snapshot = 1; snapshot <= 3; ++snapshot) {
    Rng rng(21 + snapshot);
    injection::InjectionResult fresh =
        std::move(injection::InjectStandard(base, 3, 15, 50, &rng)).value();

    const std::string path =
        "/tmp/vgod_snapshot_" + std::to_string(snapshot) + ".graph";
    Status saved = datasets::SaveGraph(fresh.graph, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    Result<AttributedGraph> loaded = datasets::LoadGraph(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    std::remove(path.c_str());

    // The restored model scores the unseen snapshot directly — no
    // retraining, and bit-identical to scoring with the trained instance.
    detectors::DetectorOutput out = deployed.value()->Score(loaded.value());
    std::printf("snapshot %llu: inductive AUC %.3f (str %.3f, ctx %.3f)\n",
                static_cast<unsigned long long>(snapshot),
                eval::Auc(out.score, fresh.combined),
                eval::AucSubset(out.score, fresh.combined, fresh.structural),
                eval::AucSubset(out.score, fresh.combined, fresh.contextual));
  }
  return 0;
}
