// Quickstart: build a small attributed network, inject the two standard
// outlier types, train VGOD, and rank the most anomalous nodes.
//
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "injection/injection.h"
#include "obs/monitor.h"

int main() {
  using namespace vgod;

  // 1. An attributed network with planted community structure: 500 nodes in
  //    5 communities, sparse bag-of-words-like attributes.
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = 500;
  spec.num_communities = 5;
  spec.avg_degree = 4.0;
  spec.attribute_dim = 64;
  Rng rng(42);
  AttributedGraph graph = datasets::GeneratePlantedPartition(spec, &rng);
  std::printf("graph: %d nodes, %lld directed edges, %d attributes\n",
              graph.num_nodes(),
              static_cast<long long>(graph.num_directed_edges()),
              graph.attribute_dim());

  // 2. Inject outliers with the standard protocol: 2 cliques of 10
  //    structural outliers plus 20 contextual outliers (candidate set 50).
  Result<injection::InjectionResult> injected =
      injection::InjectStandard(graph, /*num_cliques=*/2, /*clique_size=*/10,
                                /*candidate_set_size=*/50, &rng);
  if (!injected.ok()) {
    std::fprintf(stderr, "injection failed: %s\n",
                 injected.status().ToString().c_str());
    return 1;
  }
  const injection::InjectionResult& data = injected.value();

  // 3. Train VGOD: the variance-based model (VBM) handles structural
  //    outliers, the attribute reconstruction model (ARM) handles
  //    contextual ones; scores are combined by mean-std normalization.
  //    A TrainingMonitor observes both components' epochs (see
  //    docs/OBSERVABILITY.md for the JSONL variant used by vgod_cli).
  obs::TrainingMonitor monitor;
  detectors::VgodConfig config;
  config.vbm.self_loop = true;  // Low average degree -> enable Eq. 13.
  config.vbm.monitor = &monitor;
  config.arm.monitor = &monitor;
  detectors::Vgod vgod(config);
  const Status fit = vgod.Fit(data.graph);
  if (!fit.ok()) {
    std::fprintf(stderr, "training failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  const std::vector<obs::EpochRecord> epochs = monitor.Records();
  if (!epochs.empty()) {
    const obs::EpochRecord& first = epochs.front();
    const obs::EpochRecord& last = epochs.back();
    std::printf("telemetry: %zu epochs across VBM+ARM, %s loss %.4f -> "
                "%s loss %.4f\n",
                epochs.size(), first.detector.c_str(), first.loss,
                last.detector.c_str(), last.loss);
  }

  // 4. Score and evaluate.
  detectors::DetectorOutput out = vgod.Score(data.graph);
  std::printf("AUC (all outliers):      %.3f\n",
              eval::Auc(out.score, data.combined));
  std::printf("AUC (structural only):   %.3f\n",
              eval::AucSubset(out.score, data.combined, data.structural));
  std::printf("AUC (contextual only):   %.3f\n",
              eval::AucSubset(out.score, data.combined, data.contextual));

  // 5. Show the top-10 ranked nodes with their ground truth.
  std::vector<int> order(out.score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return out.score[a] > out.score[b];
  });
  std::printf("\ntop-10 most anomalous nodes:\n");
  for (int rank = 0; rank < 10; ++rank) {
    const int node = order[rank];
    const char* truth = data.structural[node]   ? "structural outlier"
                        : data.contextual[node] ? "contextual outlier"
                                                : "normal";
    std::printf("  #%2d node %4d  score %+6.3f  (%s)\n", rank + 1, node,
                out.score[node], truth);
  }
  return 0;
}
