// Scenario: fraud-ring detection in a social network — the Weibo-style
// setting that motivates the paper. Fraud accounts form cohesive clusters
// (they follow each other), have ordinary degrees, but wildly diverse
// profiles. Degree-based heuristics fail here; neighbor variance does not.
//
//   ./build/examples/social_fraud
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/simple.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "graph/graph_ops.h"

int main() {
  using namespace vgod;

  // A 1500-user social network; ~10% of the accounts are fraud rings.
  datasets::WeiboSimSpec spec;
  spec.base.num_nodes = 1500;
  spec.base.num_communities = 10;
  spec.base.avg_degree = 12.0;
  spec.base.attribute_dim = 64;
  spec.base.attribute_model = datasets::AttributeModel::kDenseGaussian;
  spec.base.intra_community_fraction = 0.8;
  Rng rng(2024);
  AttributedGraph network = datasets::GenerateWeiboSim(spec, &rng);

  int fraud_count = 0;
  for (uint8_t label : network.outlier_labels()) fraud_count += label;
  std::printf("network: %d users, %.1f avg connections, %d fraud accounts\n",
              network.num_nodes(), network.AverageDegree() , fraud_count);
  std::printf("edge homophily: %.2f (fraud rings are cohesive too)\n\n",
              graph_ops::EdgeHomophily(network));

  // Degree is useless by construction — show it.
  detectors::Deg degree_probe;
  (void)degree_probe.Fit(network);
  std::printf("degree heuristic AUC:  %.3f  (fraud accounts look ordinary)\n",
              eval::Auc(degree_probe.Score(network).score,
                        network.outlier_labels()));

  // VGOD: variance-based + reconstruction detection, row-normalized dense
  // profiles as in the paper's Weibo setup.
  detectors::VgodConfig config;
  config.vbm.self_loop = true;
  config.vbm.row_normalize_attributes = true;
  config.arm.row_normalize_attributes = true;
  detectors::Vgod vgod(config);
  const Status fit = vgod.Fit(network);
  if (!fit.ok()) {
    std::fprintf(stderr, "training failed: %s\n", fit.ToString().c_str());
    return 1;
  }
  detectors::DetectorOutput out = vgod.Score(network);
  std::printf("VGOD AUC:              %.3f\n",
              eval::Auc(out.score, network.outlier_labels()));
  std::printf("  structural component: %.3f (neighbor variance finds rings)\n",
              eval::Auc(out.structural_score, network.outlier_labels()));
  std::printf("  contextual component: %.3f\n\n",
              eval::Auc(out.contextual_score, network.outlier_labels()));

  // Precision of an investigation queue: if analysts review the top-k
  // flagged accounts, how many are actual fraud?
  std::vector<int> order(out.score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return out.score[a] > out.score[b]; });
  for (int k : {25, 50, 100, fraud_count}) {
    int hits = 0;
    for (int i = 0; i < k; ++i) hits += network.outlier_labels()[order[i]];
    std::printf("precision@%-4d = %.2f (%d/%d real fraud)\n", k,
                static_cast<double>(hits) / k, hits, k);
  }
  return 0;
}
