#include "core/args.h"

#include <algorithm>
#include <cstdlib>

namespace vgod {

Result<ArgParser> ArgParser::Parse(int argc, const char* const* argv) {
  ArgParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    const std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    if (key.empty()) {
      return Status::InvalidArgument("malformed option: " + arg);
    }
    parser.options_[key] =
        eq == std::string::npos ? "" : body.substr(eq + 1);
  }
  return parser;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double ArgParser::GetDouble(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::atof(it->second.c_str());
}

int64_t ArgParser::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool ArgParser::GetBool(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return false;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

Status ArgParser::Validate(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown option: --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace vgod
