#ifndef VGOD_CORE_ARGS_H_
#define VGOD_CORE_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod {

/// Minimal command-line parser for the repository's tools:
/// positional arguments plus "--key=value" and boolean "--flag" options.
/// Unknown options are rejected at Validate() time so typos fail loudly.
class ArgParser {
 public:
  /// Parses argv (argv[0] is skipped). Malformed options ("--=x") fail.
  static Result<ArgParser> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool HasOption(const std::string& key) const {
    return options_.count(key) > 0;
  }

  /// String option or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Numeric options; malformed numbers fall back (tools validate ranges
  /// themselves where it matters).
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  /// True if "--key" or "--key=true" was passed.
  bool GetBool(const std::string& key) const;

  /// Errors unless every provided option is in `known`.
  Status Validate(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // flag -> "" for bare flags.
};

}  // namespace vgod

#endif  // VGOD_CORE_ARGS_H_
