#ifndef VGOD_CORE_CHECK_H_
#define VGOD_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace vgod::internal {

/// Collects a failure message via `operator<<` and aborts on destruction.
/// Used only by the VGOD_CHECK* macros below; never instantiate directly.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace vgod::internal

/// Aborts with a message when `condition` is false. For programmer errors
/// (contract violations) only — recoverable failures use Status/Result.
/// Enabled in all build types: detection code paths are not hot enough for
/// these branches to matter, and silent corruption is worse than an abort.
#define VGOD_CHECK(condition)                                            \
  if (condition) {                                                       \
  } else                                                                 \
    ::vgod::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

#define VGOD_CHECK_EQ(a, b) VGOD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define VGOD_CHECK_NE(a, b) VGOD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define VGOD_CHECK_LT(a, b) VGOD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define VGOD_CHECK_LE(a, b) VGOD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define VGOD_CHECK_GT(a, b) VGOD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define VGOD_CHECK_GE(a, b) VGOD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // VGOD_CORE_CHECK_H_
