#include "core/faultinject.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "core/logging.h"

namespace vgod::faults {
namespace {

enum class Action { kFail, kNan };

struct SiteRule {
  Action action = Action::kFail;
  int64_t from_hit = 1;  // 1-based hit number at which injection starts.
  int64_t hits = 0;
  int64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteRule> sites;
};

std::atomic<bool> g_enabled{false};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

Status ParseRule(const std::string& token, std::string* site,
                 SiteRule* rule) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fault rule needs 'site=action': '" +
                                   token + "'");
  }
  *site = token.substr(0, eq);
  std::string action = token.substr(eq + 1);
  int64_t from_hit = 1;
  if (const size_t at = action.find('@'); at != std::string::npos) {
    const std::string count = action.substr(at + 1);
    action = action.substr(0, at);
    const auto [end, ec] = std::from_chars(
        count.data(), count.data() + count.size(), from_hit);
    if (ec != std::errc() || end != count.data() + count.size() ||
        from_hit < 1) {
      return Status::InvalidArgument(
          "fault rule '@N' needs a positive hit number: '" + token + "'");
    }
  }
  if (action == "fail") {
    rule->action = Action::kFail;
  } else if (action == "nan") {
    rule->action = Action::kNan;
  } else {
    return Status::InvalidArgument(
        "fault action must be 'fail' or 'nan': '" + token + "'");
  }
  rule->from_hit = from_hit;
  return Status::Ok();
}

/// Counts the hit and reports whether the armed `action` fires on it.
bool HitSite(const char* site, Action action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end() || it->second.action != action) {
    return false;
  }
  SiteRule& rule = it->second;
  ++rule.hits;
  if (rule.hits < rule.from_hit) return false;
  ++rule.triggers;
  return true;
}

/// Reads VGOD_FAULTS exactly once, before the first rule lookup.
void InitFromEnvOnce() {
  static const bool initialized = [] {
    const char* spec = std::getenv("VGOD_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      const Status armed = Arm(spec);
      if (!armed.ok()) {
        VGOD_LOG(Warning) << "ignoring bad VGOD_FAULTS: "
                          << armed.ToString();
      }
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace

bool Enabled() {
  InitFromEnvOnce();
  return g_enabled.load(std::memory_order_relaxed);
}

Status Arm(const std::string& spec) {
  std::map<std::string, SiteRule> sites;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find_first_of(",;", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) continue;
    std::string site;
    SiteRule rule;
    VGOD_RETURN_IF_ERROR(ParseRule(token, &site, &rule));
    sites[site] = rule;
  }

  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.sites = std::move(sites);
    g_enabled.store(!registry.sites.empty(), std::memory_order_relaxed);
  }
  return Status::Ok();
}

void Disarm() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  g_enabled.store(false, std::memory_order_relaxed);
}

bool ShouldFail(const char* site) {
  if (!Enabled()) return false;
  return HitSite(site, Action::kFail);
}

bool ShouldInjectNan(const char* site) {
  if (!Enabled()) return false;
  return HitSite(site, Action::kNan);
}

double MaybeNan(const char* site, double value) {
  return ShouldInjectNan(site)
             ? std::numeric_limits<double>::quiet_NaN()
             : value;
}

int64_t TriggerCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.triggers;
}

std::vector<std::string> ArmedSites() {
  std::vector<std::string> names;
  if (!Enabled()) return names;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  names.reserve(registry.sites.size());
  for (const auto& [name, rule] : registry.sites) names.push_back(name);
  return names;
}

}  // namespace vgod::faults
