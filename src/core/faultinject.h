#ifndef VGOD_CORE_FAULTINJECT_H_
#define VGOD_CORE_FAULTINJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::faults {

/// Deterministic fault injection for the untrusted-input degradation paths
/// (docs/ROBUSTNESS.md). A handful of named sites in IO and scoring code
/// consult this module; when a site is armed it forces the failure the
/// robustness machinery must absorb — an IO short-read/failure or an
/// injected NaN — so tests can exercise every error branch on demand.
///
/// Armed via the VGOD_FAULTS environment variable (mirroring VGOD_TRACE)
/// or programmatically with Arm(). The spec is a comma/semicolon separated
/// list of `site=action` rules:
///
///   VGOD_FAULTS="bundle.read=fail"        every hit of the site fails
///   VGOD_FAULTS="bundle.read=fail@3"      hits 1-2 succeed, 3+ fail
///   VGOD_FAULTS="serve.score=nan"         every hit injects a NaN
///   VGOD_FAULTS="vbm.loss=nan@2,dataset.read=fail"
///
/// The disarmed fast path is one relaxed atomic load, so leaving the
/// probes compiled into production builds costs nothing measurable.
/// Everything here is thread-safe.

/// True when any fault rule is armed. Reads VGOD_FAULTS once, lazily, on
/// first call (from any entry point below).
bool Enabled();

/// Parses `spec` and replaces the armed rule set. Empty spec == Disarm().
Status Arm(const std::string& spec);

/// Clears every rule and trigger counter.
void Disarm();

/// True when the `site` hit that this call represents must fail (site
/// armed with `fail` and the per-site hit counter has reached its
/// threshold). Each call counts as one hit of the site.
bool ShouldFail(const char* site);

/// True when this hit of `site` must produce a NaN (`nan` rules).
bool ShouldInjectNan(const char* site);

/// Convenience: `value`, or a quiet NaN when this hit of `site` is armed
/// for NaN injection.
double MaybeNan(const char* site, double value);

/// How many times `site` actually injected a failure/NaN so far.
int64_t TriggerCount(const std::string& site);

/// The armed site names (for startup logging).
std::vector<std::string> ArmedSites();

}  // namespace vgod::faults

#endif  // VGOD_CORE_FAULTINJECT_H_
