#include "core/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace vgod {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Parses VGOD_LOG_LEVEL ("debug"/"info"/"warning"|"warn"/"error", or a
/// numeric 0-3). Returns false when unset or unrecognized.
bool ParseEnvLogLevel(LogLevel* out) {
  const char* value = std::getenv("VGOD_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return false;
  if (std::strcmp(value, "debug") == 0 || std::strcmp(value, "0") == 0) {
    *out = LogLevel::kDebug;
  } else if (std::strcmp(value, "info") == 0 || std::strcmp(value, "1") == 0) {
    *out = LogLevel::kInfo;
  } else if (std::strcmp(value, "warning") == 0 ||
             std::strcmp(value, "warn") == 0 || std::strcmp(value, "2") == 0) {
    *out = LogLevel::kWarning;
  } else if (std::strcmp(value, "error") == 0 || std::strcmp(value, "3") == 0) {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogLevel InitialLogLevel() {
  LogLevel level = LogLevel::kInfo;
  ParseEnvLogLevel(&level);
  return level;
}

LogLevel g_log_level = InitialLogLevel();

/// Small per-thread id in first-use order (readable, unlike hashed
/// std::thread::id values).
uint32_t ThreadLogId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-06T12:34:56.789Z" (UTC, millisecond precision).
void FormatTimestamp(char* buffer, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc;
  gmtime_r(&seconds, &utc);
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buffer, size, "%s.%03dZ", date, millis);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

void SetLogLevelFromEnv(LogLevel fallback) {
  LogLevel level = fallback;
  ParseEnvLogLevel(&level);
  g_log_level = level;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_log_level)) return;
  char timestamp[32];
  FormatTimestamp(timestamp, sizeof(timestamp));
  std::fprintf(stderr, "%s [%s] [tid %u] %s\n", timestamp, LevelName(level_),
               ThreadLogId(), stream_.str().c_str());
}

}  // namespace internal
}  // namespace vgod
