#include "core/logging.h"

#include <cstdio>

namespace vgod {
namespace {

LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_log_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

}  // namespace internal
}  // namespace vgod
