#ifndef VGOD_CORE_LOGGING_H_
#define VGOD_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace vgod {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that reaches stderr. Default is kInfo; bench and
/// test binaries raise it to kWarning to keep output tables clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One log statement; formats "<LEVEL> <message>" to stderr on destruction
/// if `level` passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define VGOD_LOG(level)                                            \
  ::vgod::internal::LogMessage(::vgod::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace vgod

#endif  // VGOD_CORE_LOGGING_H_
