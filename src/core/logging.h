#ifndef VGOD_CORE_LOGGING_H_
#define VGOD_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace vgod {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that reaches stderr. The default is kInfo, or
/// whatever the VGOD_LOG_LEVEL environment variable requested at startup
/// ("debug"/"info"/"warning"/"error" or 0-3).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Sets the threshold to `fallback` unless VGOD_LOG_LEVEL is set, in which
/// case the environment wins. Lets bench/test binaries pick a quiet
/// default without taking the override away from the user.
void SetLogLevelFromEnv(LogLevel fallback);

namespace internal {

/// One log statement; formats
/// "<ISO-8601 UTC timestamp> [LEVEL] [tid N] <message>" to stderr on
/// destruction if `level` passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define VGOD_LOG(level)                                            \
  ::vgod::internal::LogMessage(::vgod::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace vgod

#endif  // VGOD_CORE_LOGGING_H_
