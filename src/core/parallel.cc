#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.h"

namespace vgod::par {
namespace {

constexpr int kMaxThreads = 256;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True while the current thread is inside a ParallelFor chunk body;
/// nested ParallelFor calls run inline instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

/// One ParallelFor dispatch: a static chunk decomposition of [begin, end)
/// that workers and the caller claim by atomic increment. Which thread
/// runs which chunk is scheduling noise; the chunk boundaries (and so the
/// result of every partition-independent kernel) are not. Heap-owned via
/// shared_ptr so a straggler worker that wakes after the region completed
/// only ever touches live memory (it then claims nothing and leaves).
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk_size = 0;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  int64_t done_chunks = 0;  // Guarded by the pool mutex.
};

class Pool {
 public:
  explicit Pool(int num_threads) : num_threads_(num_threads) {
    const int worker_count = num_threads_ - 1;
    if (worker_count > 0) {
      worker_busy_ns_ =
          std::make_unique<std::atomic<int64_t>[]>(worker_count);
      worker_idle_ns_ =
          std::make_unique<std::atomic<int64_t>[]>(worker_count);
      for (int i = 0; i < worker_count; ++i) {
        worker_busy_ns_[i].store(0, std::memory_order_relaxed);
        worker_idle_ns_[i].store(0, std::memory_order_relaxed);
      }
    }
    workers_.reserve(worker_count);
    for (int i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_threads() const { return num_threads_; }

  /// Runs `job` to completion with the caller participating. The pool
  /// mutex is only held for job handoff; chunk bodies run unlocked.
  void Run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();
    RunChunks(*job, -1);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&job] { return job->done_chunks == job->num_chunks; });
    job_ = nullptr;
  }

  std::atomic<int64_t> regions{0};
  std::atomic<int64_t> serial_regions{0};
  std::atomic<int64_t> inline_overflow{0};
  std::atomic<int64_t> pending_regions{0};
  std::atomic<int64_t> tasks{0};
  std::atomic<int64_t> idle_ns{0};
  std::atomic<int64_t> busy_ns{0};

  int64_t WorkerBusyNs(int worker) const {
    return worker_busy_ns_[worker].load(std::memory_order_relaxed);
  }
  int64_t WorkerIdleNs(int worker) const {
    return worker_idle_ns_[worker].load(std::memory_order_relaxed);
  }

  /// At most one region runs on the pool at a time; concurrent callers
  /// (e.g. serve workers scoring different batches) fall back to inline
  /// execution, which keeps batch-level x kernel-level parallelism from
  /// oversubscribing the machine.
  std::mutex region_mu;

 private:
  void WorkerLoop(int worker) {
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        const int64_t wait_start = NowNs();
        work_cv_.wait(lock, [&] {
          return stopping_ ||
                 (job_ != nullptr && generation_ != seen_generation);
        });
        const int64_t waited = NowNs() - wait_start;
        idle_ns.fetch_add(waited, std::memory_order_relaxed);
        worker_idle_ns_[worker].fetch_add(waited, std::memory_order_relaxed);
        if (stopping_) return;
        seen_generation = generation_;
        job = job_;
      }
      RunChunks(*job, worker);
    }
  }

  /// Claims and executes chunks until `job` has none left, then reports
  /// the ones it ran. Runs on workers and on the dispatching caller
  /// (`worker` == -1 for the caller).
  void RunChunks(Job& job, int worker) {
    int64_t ran = 0;
    const int64_t enter = NowNs();
    t_in_parallel_region = true;
    for (;;) {
      const int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.num_chunks) break;
      const int64_t lo = job.begin + c * job.chunk_size;
      const int64_t hi = std::min(job.end, lo + job.chunk_size);
      (*job.fn)(lo, hi);
      ++ran;
    }
    t_in_parallel_region = false;
    const int64_t active = NowNs() - enter;
    busy_ns.fetch_add(active, std::memory_order_relaxed);
    if (worker >= 0) {
      worker_busy_ns_[worker].fetch_add(active, std::memory_order_relaxed);
    }
    if (ran == 0) return;
    tasks.fetch_add(ran, std::memory_order_relaxed);
    bool complete = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job.done_chunks += ran;
      complete = job.done_chunks == job.num_chunks;
    }
    if (complete) done_cv_.notify_all();
  }

  const int num_threads_;
  std::unique_ptr<std::atomic<int64_t>[]> worker_busy_ns_;
  std::unique_ptr<std::atomic<int64_t>[]> worker_idle_ns_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stopping_ = false;
};

std::mutex& PoolMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// The global pool, created on first use and replaced by SetNumThreads.
/// Held by shared_ptr so a ParallelFor that raced a SetNumThreads keeps
/// its pool alive until the region finishes.
std::shared_ptr<Pool>& PoolSlot() {
  static std::shared_ptr<Pool>* pool = new std::shared_ptr<Pool>();
  return *pool;
}

int ClampThreads(int num_threads) {
  if (num_threads < 1) return 1;
  return std::min(num_threads, kMaxThreads);
}

std::shared_ptr<Pool> GetPool() {
  std::lock_guard<std::mutex> lock(PoolMutex());
  std::shared_ptr<Pool>& pool = PoolSlot();
  if (pool == nullptr) pool = std::make_shared<Pool>(DefaultNumThreads());
  return pool;
}

}  // namespace

int DefaultNumThreads() {
  const char* env = std::getenv("VGOD_NUM_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int parsed = std::atoi(env);
    if (parsed > 0) return ClampThreads(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return ClampThreads(hardware == 0 ? 1 : static_cast<int>(hardware));
}

int NumThreads() { return GetPool()->num_threads(); }

void SetNumThreads(int num_threads) {
  num_threads = ClampThreads(num_threads);
  std::shared_ptr<Pool> retired;  // Joined by ~Pool once unreferenced.
  {
    std::lock_guard<std::mutex> lock(PoolMutex());
    std::shared_ptr<Pool>& pool = PoolSlot();
    if (pool != nullptr && pool->num_threads() == num_threads) return;
    retired = std::move(pool);
    pool = std::make_shared<Pool>(num_threads);
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  VGOD_CHECK_GT(grain, 0);
  const int64_t range = end - begin;
  std::shared_ptr<Pool> pool = GetPool();
  const int threads = pool->num_threads();

  // Static decomposition, a pure function of (range, threads, grain):
  // ceil-split the range into at most `threads` chunks of >= grain.
  const int64_t wanted =
      std::min<int64_t>(threads, (range + grain - 1) / grain);
  if (wanted <= 1 || t_in_parallel_region) {
    pool->serial_regions.fetch_add(1, std::memory_order_relaxed);
    fn(begin, end);
    return;
  }

  // Depth of pool-worthy regions in flight right now (dispatched or about
  // to fall back inline) — the "queue depth" the par.pool.pending_regions
  // gauge reports, even though nothing actually queues.
  pool->pending_regions.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> region(pool->region_mu, std::try_to_lock);
  if (!region.owns_lock()) {
    // Another region is in flight (concurrent scoring threads); run inline
    // rather than queueing kernel work behind someone else's kernel.
    pool->serial_regions.fetch_add(1, std::memory_order_relaxed);
    pool->inline_overflow.fetch_add(1, std::memory_order_relaxed);
    fn(begin, end);
    pool->pending_regions.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->chunk_size = (range + wanted - 1) / wanted;
  job->num_chunks = (range + job->chunk_size - 1) / job->chunk_size;
  pool->regions.fetch_add(1, std::memory_order_relaxed);
  pool->Run(job);
  pool->pending_regions.fetch_sub(1, std::memory_order_relaxed);
}

PoolStats Stats() {
  std::shared_ptr<Pool> pool;
  {
    std::lock_guard<std::mutex> lock(PoolMutex());
    pool = PoolSlot();
  }
  PoolStats stats;
  if (pool == nullptr) {
    stats.threads = 0;  // Pool not started yet; no kernel ran ParallelFor.
    return stats;
  }
  stats.threads = pool->num_threads();
  stats.regions = pool->regions.load(std::memory_order_relaxed);
  stats.serial_regions = pool->serial_regions.load(std::memory_order_relaxed);
  stats.inline_overflow =
      pool->inline_overflow.load(std::memory_order_relaxed);
  stats.pending_regions =
      pool->pending_regions.load(std::memory_order_relaxed);
  stats.tasks = pool->tasks.load(std::memory_order_relaxed);
  stats.idle_ns = pool->idle_ns.load(std::memory_order_relaxed);
  stats.busy_ns = pool->busy_ns.load(std::memory_order_relaxed);
  const int worker_count = pool->num_threads() - 1;
  stats.worker_busy_ns.reserve(worker_count);
  stats.worker_idle_ns.reserve(worker_count);
  for (int i = 0; i < worker_count; ++i) {
    stats.worker_busy_ns.push_back(pool->WorkerBusyNs(i));
    stats.worker_idle_ns.push_back(pool->WorkerIdleNs(i));
  }
  return stats;
}

}  // namespace vgod::par
