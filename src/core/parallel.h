#ifndef VGOD_CORE_PARALLEL_H_
#define VGOD_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace vgod::par {

/// Deterministic intra-op parallelism for the tensor/GNN kernels
/// (docs/PARALLELISM.md).
///
/// The contract every caller relies on: ParallelFor decomposes [begin, end)
/// into contiguous chunks whose *boundaries* are a pure function of
/// (range, num_threads, grain), and every parallelized kernel in this
/// library only uses ParallelFor for partition-independent work — each
/// output element is produced by exactly one chunk, computed by the same
/// serial inner loop regardless of how the range was split. Consequently
/// kernel outputs are bit-identical across thread counts (including the
/// fully serial VGOD_NUM_THREADS=1 fallback), across runs, and across
/// which worker happens to claim which chunk.

/// Cumulative pool statistics, all monotonic except `threads`. Exported as
/// `par.pool.*` gauges by obs::MetricsRegistry::ToJson().
struct PoolStats {
  int threads = 1;          // Current configured pool width.
  int64_t regions = 0;      // ParallelFor calls dispatched to the pool.
  int64_t serial_regions = 0;  // ParallelFor calls run inline (serial).
  int64_t inline_overflow = 0;  // Inline fallbacks because the pool was
                                // busy with another region (a subset of
                                // serial_regions).
  int64_t pending_regions = 0;  // Instantaneous: regions currently
                                // dispatched or contending for the pool
                                // (the region "queue depth"; not
                                // monotonic).
  int64_t tasks = 0;        // Chunks executed by pool dispatch.
  int64_t idle_ns = 0;      // Worker time blocked waiting for work.
  int64_t busy_ns = 0;      // Worker + caller time inside chunk bodies.
  // Per pool-worker-thread active/idle split (size threads - 1; the
  // dispatching caller's chunk time is in busy_ns only). Exported as
  // par.pool.worker.N.{busy,idle}_seconds gauges.
  std::vector<int64_t> worker_busy_ns;
  std::vector<int64_t> worker_idle_ns;
};

/// Number of threads the global pool is configured with (>= 1). First call
/// initializes from VGOD_NUM_THREADS (unset/0 => hardware_concurrency,
/// clamped to [1, 256]); 1 means every ParallelFor runs serially inline.
int NumThreads();

/// The pool width VGOD_NUM_THREADS / hardware_concurrency would pick now,
/// without mutating the pool (what NumThreads() returns on first use).
int DefaultNumThreads();

/// Rebuilds the global pool with `num_threads` workers (clamped to
/// [1, 256]). Not safe to call concurrently with in-flight ParallelFor
/// calls from other threads; intended for process startup (--num_threads
/// flags), ScoringEngine::Start, and tests.
void SetNumThreads(int num_threads);

/// Runs fn(chunk_begin, chunk_end) over a static partition of
/// [begin, end) into contiguous chunks of at least `grain` iterations
/// (except possibly the last). Chunks run concurrently on the global pool;
/// the caller participates and the call returns only when every chunk
/// finished. Runs inline (one chunk, caller thread) when the range is
/// small, the pool is width 1, the call is nested inside another
/// ParallelFor chunk, or the pool is busy with another region — all of
/// which are safe because parallelized kernels are partition-independent
/// (see file comment).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Snapshot of the pool counters (threads reflects the live pool).
PoolStats Stats();

}  // namespace vgod::par

#endif  // VGOD_CORE_PARALLEL_H_
