#include "core/rng.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace vgod {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  VGOD_CHECK_GT(n, 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return static_cast<int64_t>(value % bound);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  VGOD_CHECK_GE(k, 0);
  VGOD_CHECK_LE(k, n);
  if (k == 0) return {};
  // Dense path: partial Fisher-Yates over [0, n).
  if (static_cast<int64_t>(k) * 3 >= n) {
    std::vector<int> pool(n);
    std::iota(pool.begin(), pool.end(), 0);
    for (int i = 0; i < k; ++i) {
      const int64_t j = i + UniformInt(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  // Sparse path: rejection into a hash set, then shuffle for random order.
  std::unordered_set<int> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<int> out;
  out.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    const int candidate = static_cast<int>(UniformInt(n));
    if (chosen.insert(candidate).second) out.push_back(candidate);
  }
  Shuffle(&out);
  return out;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace vgod
