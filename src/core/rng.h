#ifndef VGOD_CORE_RNG_H_
#define VGOD_CORE_RNG_H_

#include <cstdint>
#include <vector>

#include "core/check.h"

namespace vgod {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in this library draws from an
/// explicitly seeded Rng so that datasets, injections and training runs are
/// reproducible from a single seed. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal variate (Box-Muller; caches the spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `k` distinct integers from [0, n) in uniformly random order.
  /// Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Splits off an independently seeded child generator. Used to give each
  /// model / dataset / epoch its own stream without coupling their draws.
  Rng Split();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace vgod

#endif  // VGOD_CORE_RNG_H_
