#ifndef VGOD_CORE_STATUS_H_
#define VGOD_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace vgod {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation). Fallible public APIs in this library return `Status` or
/// `Result<T>` instead of throwing exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing `value()` on an
/// error result aborts, so callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK status keeps call sites
  /// (`return graph;` / `return Status::InvalidArgument(...)`) readable.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Prints the status and aborts. Out-of-line so Result<T> stays light.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

/// Propagates an error status from an expression returning `Status`.
#define VGOD_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::vgod::Status vgod_status_ = (expr);            \
    if (!vgod_status_.ok()) return vgod_status_;     \
  } while (false)

}  // namespace vgod

#endif  // VGOD_CORE_STATUS_H_
