#ifndef VGOD_CORE_STOPWATCH_H_
#define VGOD_CORE_STOPWATCH_H_

#include <chrono>

namespace vgod {

/// Wall-clock stopwatch used by the efficiency experiments (paper Fig 7 /
/// Table VII) and by the per-epoch training telemetry. Supports lap
/// splits (Lap) and pause/resume; paused time never counts toward the
/// elapsed total.
class Stopwatch {
 public:
  Stopwatch() : resume_point_(Clock::now()) {}

  /// Restarts the stopwatch: elapsed and lap both return to zero, and the
  /// stopwatch is running (even if it was paused).
  void Reset() {
    accumulated_ = Duration::zero();
    lap_mark_ = Duration::zero();
    resume_point_ = Clock::now();
    running_ = true;
  }

  /// Seconds of running (non-paused) time since construction or Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Accumulated()).count();
  }

  /// Seconds of running time since the last Lap() (or Reset()/start), and
  /// advances the lap mark. Replaces the ad-hoc
  /// "ElapsedSeconds() - previous" delta pattern.
  double Lap() {
    const Duration now = Accumulated();
    const Duration lap = now - lap_mark_;
    lap_mark_ = now;
    return std::chrono::duration<double>(lap).count();
  }

  /// Freezes the elapsed clock. No-op when already paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - resume_point_;
    running_ = false;
  }

  /// Restarts the elapsed clock after Pause(). No-op when running.
  void Resume() {
    if (running_) return;
    resume_point_ = Clock::now();
    running_ = true;
  }

  bool paused() const { return !running_; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration Accumulated() const {
    return running_ ? accumulated_ + (Clock::now() - resume_point_)
                    : accumulated_;
  }

  Duration accumulated_ = Duration::zero();  // Run time up to last pause.
  Duration lap_mark_ = Duration::zero();     // Accumulated() at last Lap().
  Clock::time_point resume_point_;
  bool running_ = true;
};

}  // namespace vgod

#endif  // VGOD_CORE_STOPWATCH_H_
