#ifndef VGOD_CORE_STOPWATCH_H_
#define VGOD_CORE_STOPWATCH_H_

#include <chrono>

namespace vgod {

/// Wall-clock stopwatch used by the efficiency experiments (paper Fig 7 /
/// Table VII) and by detectors to report per-epoch training time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vgod

#endif  // VGOD_CORE_STOPWATCH_H_
