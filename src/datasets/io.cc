#include "datasets/io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/faultinject.h"

namespace vgod::datasets {
namespace {

// Header dimensions a real dataset never reaches; a hostile or corrupt
// header must fail here instead of sizing a giant allocation.
constexpr int64_t kMaxNodes = 100'000'000;
constexpr int64_t kMaxAttributeDim = 1'000'000;
constexpr int64_t kMaxCells = int64_t{1} << 31;  // n * d bound.

}  // namespace

Status SaveGraph(const AttributedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  const bool has_comm = graph.has_communities();
  const bool has_labels = graph.has_outlier_labels();
  out << "vgod-graph " << n << " " << d << " " << (has_comm ? 1 : 0) << " "
      << (has_labels ? 1 : 0) << "\n";
  for (int i = 0; i < n; ++i) {
    if (has_comm) out << graph.communities()[i] << "\t";
    if (has_labels) out << static_cast<int>(graph.outlier_labels()[i]) << "\t";
    for (int j = 0; j < d; ++j) {
      if (j > 0) out << "\t";
      out << graph.attributes().At(i, j);
    }
    out << "\n";
  }
  out << "edges\n";
  for (const auto& [u, v] : graph.UndirectedEdgeList()) {
    out << u << "\t" << v << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<AttributedGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  // "dataset.read=fail" (faultinject.h) simulates the open succeeding and
  // the read failing (disappearing NFS mount, truncated download, ...).
  if (faults::ShouldFail("dataset.read")) {
    return Status::IoError("injected dataset read failure: " + path);
  }

  std::string magic;
  int64_t n = 0, d = 0;
  int has_comm = 0, has_labels = 0;
  in >> magic >> n >> d >> has_comm >> has_labels;
  if (!in || magic != "vgod-graph" || n < 0 || d < 0) {
    return Status::InvalidArgument("not a vgod-graph file: " + path);
  }
  // The header sizes the attribute allocation, so it is the file's most
  // dangerous field: cap it before trusting it.
  if (n > kMaxNodes || d > kMaxAttributeDim || n * d > kMaxCells) {
    return Status::InvalidArgument(
        "implausible vgod-graph header (" + std::to_string(n) + " nodes x " +
        std::to_string(d) + " attributes): " + path);
  }

  Tensor attrs(static_cast<int>(n), static_cast<int>(d));
  std::vector<int> communities;
  std::vector<uint8_t> labels;
  if (has_comm) communities.resize(n);
  if (has_labels) labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    if (has_comm) in >> communities[i];
    if (has_labels) {
      int label = 0;
      in >> label;
      labels[i] = static_cast<uint8_t>(label);
    }
    for (int64_t j = 0; j < d; ++j) {
      float value = 0.0f;
      in >> value;
      if (std::isfinite(value)) {
        attrs.SetAt(static_cast<int>(i), static_cast<int>(j), value);
      } else {
        // Some standard libraries parse "nan"/"inf" tokens (others fail
        // extraction, caught below); either way a non-finite value must
        // not poison every downstream kernel and score.
        return Status::InvalidArgument(
            "non-finite attribute for node " + std::to_string(i) + " in " +
            path);
      }
    }
    if (!in) {
      return Status::InvalidArgument(
          "truncated or malformed node table at node " + std::to_string(i) +
          " in " + path);
    }
  }
  std::string sentinel;
  in >> sentinel;
  if (sentinel != "edges") {
    return Status::InvalidArgument("missing edges sentinel in " + path);
  }
  GraphBuilder builder(static_cast<int>(n));
  int u = 0, v = 0;
  while (in >> u >> v) builder.AddEdge(u, v);
  if (!in.eof() && in.fail()) {
    return Status::InvalidArgument("malformed edge list in " + path);
  }
  builder.SetAttributes(std::move(attrs));
  if (has_comm) builder.SetCommunities(std::move(communities));
  if (has_labels) builder.SetOutlierLabels(std::move(labels));
  return builder.Build();
}

}  // namespace vgod::datasets
