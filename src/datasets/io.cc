#include "datasets/io.h"

#include <fstream>
#include <sstream>

namespace vgod::datasets {

Status SaveGraph(const AttributedGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  const bool has_comm = graph.has_communities();
  const bool has_labels = graph.has_outlier_labels();
  out << "vgod-graph " << n << " " << d << " " << (has_comm ? 1 : 0) << " "
      << (has_labels ? 1 : 0) << "\n";
  for (int i = 0; i < n; ++i) {
    if (has_comm) out << graph.communities()[i] << "\t";
    if (has_labels) out << static_cast<int>(graph.outlier_labels()[i]) << "\t";
    for (int j = 0; j < d; ++j) {
      if (j > 0) out << "\t";
      out << graph.attributes().At(i, j);
    }
    out << "\n";
  }
  out << "edges\n";
  for (const auto& [u, v] : graph.UndirectedEdgeList()) {
    out << u << "\t" << v << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<AttributedGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string magic;
  int n = 0, d = 0, has_comm = 0, has_labels = 0;
  in >> magic >> n >> d >> has_comm >> has_labels;
  if (magic != "vgod-graph" || n < 0 || d < 0) {
    return Status::InvalidArgument("not a vgod-graph file: " + path);
  }

  Tensor attrs(n, d);
  std::vector<int> communities;
  std::vector<uint8_t> labels;
  if (has_comm) communities.resize(n);
  if (has_labels) labels.resize(n);
  for (int i = 0; i < n; ++i) {
    if (has_comm) in >> communities[i];
    if (has_labels) {
      int label = 0;
      in >> label;
      labels[i] = static_cast<uint8_t>(label);
    }
    for (int j = 0; j < d; ++j) {
      float value = 0.0f;
      in >> value;
      attrs.SetAt(i, j, value);
    }
  }
  std::string sentinel;
  in >> sentinel;
  if (sentinel != "edges") {
    return Status::InvalidArgument("missing edges sentinel in " + path);
  }
  GraphBuilder builder(n);
  int u = 0, v = 0;
  while (in >> u >> v) builder.AddEdge(u, v);
  builder.SetAttributes(std::move(attrs));
  if (has_comm) builder.SetCommunities(std::move(communities));
  if (has_labels) builder.SetOutlierLabels(std::move(labels));
  return builder.Build();
}

}  // namespace vgod::datasets
