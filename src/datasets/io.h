#ifndef VGOD_DATASETS_IO_H_
#define VGOD_DATASETS_IO_H_

#include <string>

#include "core/status.h"
#include "graph/graph.h"

namespace vgod::datasets {

/// Saves `graph` as a single self-describing TSV file:
///   header line:  vgod-graph <num_nodes> <attr_dim> <has_comm> <has_labels>
///   one line per node: [community] [outlier_label] attr_0 ... attr_{d-1}
///   "edges" sentinel line, then one "u v" line per undirected edge.
/// The format favors being diffable/inspectable over compactness.
Status SaveGraph(const AttributedGraph& graph, const std::string& path);

/// Loads a graph previously written by SaveGraph.
Result<AttributedGraph> LoadGraph(const std::string& path);

}  // namespace vgod::datasets

#endif  // VGOD_DATASETS_IO_H_
