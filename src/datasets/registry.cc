#include "datasets/registry.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace vgod::datasets {
namespace {

int Scaled(int base, double scale) {
  return std::max(50, static_cast<int>(base * scale + 0.5));
}

Result<Dataset> MakeBuiltin(const std::string& name, double scale,
                            uint64_t seed) {
  Rng rng(seed ^ 0xda7a5e7ULL);
  Dataset dataset;
  dataset.name = name;

  SyntheticGraphSpec spec;
  if (name == "cora") {
    // Paper: 2706 nodes, avg degree 2.01, 1433 attrs, 7 classes, p=5.
    spec.num_nodes = Scaled(1350, scale);
    spec.num_communities = 7;
    spec.avg_degree = 2.0;
    spec.attribute_dim = 256;
    spec.topic_dims_per_community = 32;
    spec.intra_community_fraction = 0.9;
    spec.degree_power = 0.25;
    dataset.default_num_cliques = std::max(1, Scaled(5, scale) / 1);
  } else if (name == "citeseer") {
    // Paper: 3327 nodes, avg degree 1.42, 3703 attrs, 6 classes, p=5.
    spec.num_nodes = Scaled(1660, scale);
    spec.num_communities = 6;
    spec.avg_degree = 1.42;
    spec.attribute_dim = 300;
    spec.topic_dims_per_community = 40;
    spec.intra_community_fraction = 0.9;
    spec.degree_power = 0.2;
    dataset.default_num_cliques = 5;
  } else if (name == "pubmed") {
    // Paper: 19717 nodes, avg degree 2.25, 500 attrs, 3 classes, p=20.
    spec.num_nodes = Scaled(3000, scale);
    spec.num_communities = 3;
    spec.avg_degree = 2.25;
    spec.attribute_dim = 250;
    spec.topic_dims_per_community = 60;
    spec.intra_community_fraction = 0.9;
    spec.degree_power = 0.25;
    dataset.default_num_cliques = 6;
  } else if (name == "flickr") {
    // Paper: 7575 nodes, avg degree 31.65, 12047 attrs, 9 classes, p=15.
    // Degree is scaled to 16 alongside the node count so that community
    // neighborhoods keep a comparable relative density.
    spec.num_nodes = Scaled(1500, scale);
    spec.num_communities = 9;
    spec.avg_degree = 16.0;
    spec.attribute_dim = 400;
    spec.topic_dims_per_community = 36;
    spec.topic_active_prob = 0.3;
    spec.background_active_prob = 0.02;
    spec.intra_community_fraction = 0.8;
    spec.degree_power = 0.5;
    dataset.default_num_cliques = 6;
  } else if (name == "weibo") {
    // Paper: 8405 nodes, avg degree 48.5, 64 attrs, 10.3% labeled outliers,
    // homophily 0.75. Degree scaled to 12 with the node count.
    WeiboSimSpec weibo;
    weibo.base.num_nodes = Scaled(2000, scale);
    weibo.base.num_communities = 10;
    weibo.base.avg_degree = 12.0;
    weibo.base.attribute_dim = 64;
    weibo.base.attribute_model = AttributeModel::kDenseGaussian;
    weibo.base.intra_community_fraction = 0.8;
    weibo.base.degree_power = 0.4;
    weibo.base.gaussian_mean_spread = 2.0;
    weibo.base.gaussian_noise = 0.6;
    weibo.outlier_fraction = 0.103;
    weibo.outlier_mean_spread = 8.0;
    dataset.graph = GenerateWeiboSim(weibo, &rng);
    dataset.has_labeled_outliers = true;
    return dataset;
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }

  dataset.graph = GeneratePlantedPartition(spec, &rng);
  return dataset;
}

// Name -> factory map behind a mutex, mirroring detectors::FactoryRegistry:
// the serving layer and bench harnesses build datasets from several threads
// at once. The factory is copied out before it runs, so graph generation
// (the slow part) never happens under the lock.
class DatasetRegistry {
 public:
  static DatasetRegistry& Global() {
    static DatasetRegistry* registry = new DatasetRegistry();
    return *registry;
  }

  void Register(const std::string& name, DatasetFactory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    factories_[name] = std::move(factory);
  }

  Result<DatasetFactory> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("unknown dataset: " + name);
    }
    return it->second;
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;
  }

 private:
  DatasetRegistry() {
    for (const std::string& name : BenchmarkDatasetNames()) {
      factories_[name] = [name](double scale, uint64_t seed) {
        return MakeBuiltin(name, scale, seed);
      };
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, DatasetFactory> factories_;
};

}  // namespace

const std::vector<std::string>& BenchmarkDatasetNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "cora", "citeseer", "pubmed", "flickr", "weibo"};
  return *names;
}

const std::vector<std::string>& InjectionDatasetNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "cora", "citeseer", "pubmed", "flickr"};
  return *names;
}

Result<Dataset> MakeDataset(const std::string& name, double scale,
                            uint64_t seed) {
  Result<DatasetFactory> factory = DatasetRegistry::Global().Find(name);
  if (!factory.ok()) return factory.status();
  return factory.value()(scale, seed);
}

void RegisterDataset(const std::string& name, DatasetFactory factory) {
  DatasetRegistry::Global().Register(name, std::move(factory));
}

std::vector<std::string> RegisteredDatasetNames() {
  return DatasetRegistry::Global().Names();
}

}  // namespace vgod::datasets
