#ifndef VGOD_DATASETS_REGISTRY_H_
#define VGOD_DATASETS_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "datasets/synthetic.h"
#include "graph/graph.h"

namespace vgod::datasets {

/// A named benchmark dataset instance.
struct Dataset {
  std::string name;
  AttributedGraph graph;
  /// True when the graph carries ground-truth outlier labels (weibo-sim);
  /// false for the injection datasets, which get labels at injection time.
  bool has_labeled_outliers = false;
  /// Injection sizing matching the paper's Table I outlier fractions:
  /// number of structural-outlier cliques (p); clique size q and candidate
  /// set k are experiment parameters.
  int default_num_cliques = 5;
};

/// Names accepted by MakeDataset, in the paper's Table I order:
/// cora, citeseer, pubmed, flickr, weibo.
const std::vector<std::string>& BenchmarkDatasetNames();

/// The four injection datasets (all of the above except weibo).
const std::vector<std::string>& InjectionDatasetNames();

/// Builds the simulated stand-in for the named paper dataset. `scale`
/// multiplies the node count (1.0 = the bench-scale defaults in DESIGN.md
/// §4; tests use ~0.2). Each (name, seed, scale) triple is reproducible.
/// Thread-safe: serving and bench code generate datasets concurrently.
Result<Dataset> MakeDataset(const std::string& name, double scale,
                            uint64_t seed);

/// Builds a dataset instance at (scale, seed); registered under a name.
using DatasetFactory =
    std::function<Result<Dataset>(double scale, uint64_t seed)>;

/// Adds (or replaces) a dataset factory under `name`. Thread-safe with
/// respect to concurrent MakeDataset calls.
void RegisterDataset(const std::string& name, DatasetFactory factory);

/// Every registered dataset name (built-ins plus RegisterDataset calls),
/// sorted. Thread-safe.
std::vector<std::string> RegisteredDatasetNames();

}  // namespace vgod::datasets

#endif  // VGOD_DATASETS_REGISTRY_H_
