#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/check.h"

namespace vgod::datasets {
namespace {

/// Weighted sampler over a fixed set of node ids (cumulative sums + binary
/// search). Small graphs; O(log n) per draw is plenty.
class WeightedPicker {
 public:
  WeightedPicker(std::vector<int> ids, const std::vector<double>& weights)
      : ids_(std::move(ids)) {
    cumulative_.reserve(ids_.size());
    double acc = 0.0;
    for (int id : ids_) {
      acc += weights[id];
      cumulative_.push_back(acc);
    }
  }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }

  int Pick(Rng* rng) const {
    VGOD_CHECK(!ids_.empty());
    const double target = rng->Uniform() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
    return ids_[std::min<size_t>(it - cumulative_.begin(), ids_.size() - 1)];
  }

 private:
  std::vector<int> ids_;
  std::vector<double> cumulative_;
};

std::vector<double> NodePropensities(int n, double degree_power, Rng* rng) {
  std::vector<double> weights(n);
  for (int i = 0; i < n; ++i) {
    const double u = std::max(rng->Uniform(), 1e-6);
    weights[i] = degree_power > 0.0 ? std::pow(u, -degree_power) : 1.0;
  }
  return weights;
}

/// Wires `num_edges` undirected edges given community membership; a
/// `intra_fraction` share lands within a community, the rest across two
/// distinct communities, endpoints weighted by `propensity`.
std::vector<std::pair<int, int>> WireCommunityEdges(
    const std::vector<int>& communities, int num_communities,
    const std::vector<double>& propensity, int64_t num_edges,
    double intra_fraction, Rng* rng) {
  std::vector<std::vector<int>> members(num_communities);
  for (size_t i = 0; i < communities.size(); ++i) {
    members[communities[i]].push_back(static_cast<int>(i));
  }
  std::vector<WeightedPicker> pickers;
  pickers.reserve(num_communities);
  std::vector<int> usable_communities;
  std::vector<double> usable_mass;  // Cumulative member mass.
  double mass_acc = 0.0;
  for (int c = 0; c < num_communities; ++c) {
    pickers.emplace_back(members[c], propensity);
    if (members[c].size() >= 2) {
      usable_communities.push_back(c);
      // Weight community choice by total member propensity so per-node edge
      // rates do not depend on community size (small planted clusters must
      // not end up denser per node than large ones).
      double mass = 0.0;
      for (int id : members[c]) mass += propensity[id];
      mass_acc += mass;
      usable_mass.push_back(mass_acc);
    }
  }
  std::vector<int> all_ids(communities.size());
  std::iota(all_ids.begin(), all_ids.end(), 0);
  WeightedPicker global(all_ids, propensity);

  std::set<std::pair<int, int>> seen;
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges);
  int64_t attempts = 0;
  const int64_t max_attempts = num_edges * 50;
  while (static_cast<int64_t>(edges.size()) < num_edges &&
         attempts++ < max_attempts) {
    int u, v;
    if (!usable_communities.empty() && rng->Uniform() < intra_fraction) {
      const double target = rng->Uniform() * usable_mass.back();
      const auto it =
          std::lower_bound(usable_mass.begin(), usable_mass.end(), target);
      const int c = usable_communities[std::min<size_t>(
          it - usable_mass.begin(), usable_communities.size() - 1)];
      u = pickers[c].Pick(rng);
      v = pickers[c].Pick(rng);
    } else {
      u = global.Pick(rng);
      v = global.Pick(rng);
      if (communities[u] == communities[v]) continue;
    }
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    edges.emplace_back(u, v);
  }
  return edges;
}

Tensor SparseTopicAttributes(const std::vector<int>& communities,
                             const SyntheticGraphSpec& spec, Rng* rng) {
  const int n = static_cast<int>(communities.size());
  const int d = spec.attribute_dim;
  // Each community owns a random subset of dimensions as its topic.
  std::vector<std::vector<int>> topics(spec.num_communities);
  for (int c = 0; c < spec.num_communities; ++c) {
    topics[c] = rng->SampleWithoutReplacement(
        d, std::min(spec.topic_dims_per_community, d));
  }
  Tensor attrs = Tensor::Zeros(n, d);
  for (int i = 0; i < n; ++i) {
    float* row = attrs.data() + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) {
      if (rng->Bernoulli(spec.background_active_prob)) row[j] = 1.0f;
    }
    for (int j : topics[communities[i]]) {
      if (rng->Bernoulli(spec.topic_active_prob)) row[j] = 1.0f;
    }
  }
  return attrs;
}

Tensor DenseGaussianAttributes(const std::vector<int>& communities,
                               int num_communities, int attribute_dim,
                               double mean_spread, double noise, Rng* rng) {
  const int n = static_cast<int>(communities.size());
  Tensor means(num_communities, attribute_dim);
  for (int64_t i = 0; i < means.size(); ++i) {
    means.data()[i] = static_cast<float>(rng->Normal(0.0, mean_spread));
  }
  Tensor attrs(n, attribute_dim);
  for (int i = 0; i < n; ++i) {
    const float* mean_row =
        means.data() + static_cast<size_t>(communities[i]) * attribute_dim;
    float* row = attrs.data() + static_cast<size_t>(i) * attribute_dim;
    for (int j = 0; j < attribute_dim; ++j) {
      row[j] = mean_row[j] + static_cast<float>(rng->Normal(0.0, noise));
    }
  }
  return attrs;
}

}  // namespace

AttributedGraph GeneratePlantedPartition(const SyntheticGraphSpec& spec,
                                         Rng* rng) {
  VGOD_CHECK_GT(spec.num_nodes, 0);
  VGOD_CHECK_GT(spec.num_communities, 0);
  const int n = spec.num_nodes;

  std::vector<int> communities(n);
  for (int i = 0; i < n; ++i) {
    communities[i] = static_cast<int>(rng->UniformInt(spec.num_communities));
  }
  const std::vector<double> propensity =
      NodePropensities(n, spec.degree_power, rng);
  const int64_t num_edges =
      static_cast<int64_t>(spec.avg_degree * n / 2.0 + 0.5);
  std::vector<std::pair<int, int>> edges =
      WireCommunityEdges(communities, spec.num_communities, propensity,
                         num_edges, spec.intra_community_fraction, rng);

  Tensor attrs;
  if (spec.attribute_model == AttributeModel::kSparseTopics) {
    attrs = SparseTopicAttributes(communities, spec, rng);
  } else {
    attrs = DenseGaussianAttributes(communities, spec.num_communities,
                                    spec.attribute_dim,
                                    spec.gaussian_mean_spread,
                                    spec.gaussian_noise, rng);
  }

  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  builder.SetAttributes(std::move(attrs));
  builder.SetCommunities(std::move(communities));
  Result<AttributedGraph> result = builder.Build();
  VGOD_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

AttributedGraph GenerateWeiboSim(const WeiboSimSpec& spec, Rng* rng) {
  const SyntheticGraphSpec& base = spec.base;
  const int n = base.num_nodes;
  const int num_outliers =
      std::max(1, static_cast<int>(n * spec.outlier_fraction + 0.5));

  // Pick outliers and group them into cohesive clusters; each cluster acts
  // as its own "community" in the wiring step, so outliers end up densely
  // connected to each other without an elevated degree.
  std::vector<int> outlier_ids = rng->SampleWithoutReplacement(n, num_outliers);
  std::vector<uint8_t> is_outlier(n, 0);
  for (int id : outlier_ids) is_outlier[id] = 1;

  std::vector<int> communities(n, -1);
  for (int i = 0; i < n; ++i) {
    if (!is_outlier[i]) {
      communities[i] = static_cast<int>(rng->UniformInt(base.num_communities));
    }
  }
  int next_label = base.num_communities;
  size_t cursor = 0;
  while (cursor < outlier_ids.size()) {
    const int span = spec.min_cluster_size +
                     static_cast<int>(rng->UniformInt(
                         spec.max_cluster_size - spec.min_cluster_size + 1));
    for (int s = 0; s < span && cursor < outlier_ids.size(); ++s) {
      communities[outlier_ids[cursor++]] = next_label;
    }
    ++next_label;
  }

  const std::vector<double> propensity =
      NodePropensities(n, base.degree_power, rng);
  const int64_t num_edges = static_cast<int64_t>(base.avg_degree * n / 2.0);
  std::vector<std::pair<int, int>> edges = WireCommunityEdges(
      communities, next_label, propensity, num_edges,
      base.intra_community_fraction, rng);

  // Inliers: shared community Gaussians (low diversity). Outliers: each
  // node draws its own mean with a large spread (high diversity).
  Tensor attrs(n, base.attribute_dim);
  Tensor community_means(base.num_communities, base.attribute_dim);
  for (int64_t i = 0; i < community_means.size(); ++i) {
    community_means.data()[i] =
        static_cast<float>(rng->Normal(0.0, base.gaussian_mean_spread));
  }
  for (int i = 0; i < n; ++i) {
    float* row = attrs.data() + static_cast<size_t>(i) * base.attribute_dim;
    if (is_outlier[i]) {
      for (int j = 0; j < base.attribute_dim; ++j) {
        row[j] = static_cast<float>(rng->Normal(0.0, spec.outlier_mean_spread) +
                                    rng->Normal(0.0, base.gaussian_noise));
      }
    } else {
      const float* mean_row =
          community_means.data() +
          static_cast<size_t>(communities[i]) * base.attribute_dim;
      for (int j = 0; j < base.attribute_dim; ++j) {
        row[j] = mean_row[j] +
                 static_cast<float>(rng->Normal(0.0, base.gaussian_noise));
      }
    }
  }

  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  builder.SetAttributes(std::move(attrs));
  builder.SetCommunities(std::move(communities));
  builder.SetOutlierLabels(std::move(is_outlier));
  Result<AttributedGraph> result = builder.Build();
  VGOD_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

double AttributeVariance(const Tensor& attributes,
                         const std::vector<uint8_t>& mask,
                         uint8_t mask_value) {
  VGOD_CHECK_EQ(static_cast<int>(mask.size()), attributes.rows());
  const int d = attributes.cols();
  int count = 0;
  std::vector<double> mean(d, 0.0);
  for (int i = 0; i < attributes.rows(); ++i) {
    if (mask[i] != mask_value) continue;
    ++count;
    const float* row = attributes.data() + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) mean[j] += row[j];
  }
  VGOD_CHECK_GT(count, 0);
  for (double& m : mean) m /= count;
  double total = 0.0;
  for (int i = 0; i < attributes.rows(); ++i) {
    if (mask[i] != mask_value) continue;
    const float* row = attributes.data() + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) {
      const double diff = row[j] - mean[j];
      total += diff * diff;
    }
  }
  return total / (static_cast<double>(count) * d);
}

}  // namespace vgod::datasets
