#ifndef VGOD_DATASETS_SYNTHETIC_H_
#define VGOD_DATASETS_SYNTHETIC_H_

#include "core/rng.h"
#include "graph/graph.h"

namespace vgod::datasets {

/// How node attributes are generated.
enum class AttributeModel {
  /// Sparse binary bag-of-words-like vectors: each community owns a block
  /// of "topic" dimensions activated with high probability; all other
  /// dimensions fire at a low background rate. Stands in for the citation
  /// networks (Cora/Citeseer/PubMed) and Flickr.
  kSparseTopics,
  /// Dense Gaussian vectors around a per-community mean. Stands in for
  /// Weibo's dense 64-dim features.
  kDenseGaussian,
};

/// Parameters of the planted-partition attributed-graph generator.
/// Communities are planted both in the topology (a fraction of edges stays
/// within a community) and in the attributes (per-community topic blocks or
/// Gaussian means), which is exactly the structure the paper's injection
/// protocols and the VBM detector rely on.
struct SyntheticGraphSpec {
  int num_nodes = 1000;
  int num_communities = 5;
  /// Expected average node degree (undirected).
  double avg_degree = 4.0;
  /// Probability that a sampled edge is intra-community; controls edge
  /// homophily.
  double intra_community_fraction = 0.85;
  /// Degree heterogeneity: node propensity w = u^{-degree_power}, u~U(0,1).
  /// 0 gives a near-regular graph; 0.5 a heavy-ish tail (social networks).
  double degree_power = 0.25;

  int attribute_dim = 128;
  AttributeModel attribute_model = AttributeModel::kSparseTopics;
  // kSparseTopics parameters.
  int topic_dims_per_community = 24;
  double topic_active_prob = 0.35;
  double background_active_prob = 0.01;
  // kDenseGaussian parameters.
  double gaussian_mean_spread = 2.0;
  double gaussian_noise = 0.5;
};

/// Generates an attributed network from `spec`. Community labels are set on
/// the result. The graph is undirected, simple (no self loops, no
/// multi-edges) and unlabeled (no outliers).
AttributedGraph GeneratePlantedPartition(const SyntheticGraphSpec& spec,
                                         Rng* rng);

/// Parameters for the Weibo-like generator (labeled outliers planted).
struct WeiboSimSpec {
  /// Inlier community structure.
  SyntheticGraphSpec base;
  /// Fraction of nodes that are labeled outliers (paper: 10.3%).
  double outlier_fraction = 0.103;
  /// Outlier cluster size range; outliers form dense cohesive clusters
  /// (paper Fig 9a) whose size keeps their degree ordinary (Fig 9b).
  int min_cluster_size = 8;
  int max_cluster_size = 20;
  /// Spread of per-node outlier attribute means; large values reproduce the
  /// paper's observation that outlier attributes are far more diverse than
  /// inliers' (variance 425 vs 11.95).
  double outlier_mean_spread = 8.0;
};

/// Generates a Weibo-like network: cohesive inlier communities plus planted
/// outlier clusters that are (i) structurally cohesive, (ii) not degree-
/// elevated, (iii) attribute-diverse. Outlier labels and community labels
/// (outlier clusters get their own labels) are set on the result.
AttributedGraph GenerateWeiboSim(const WeiboSimSpec& spec, Rng* rng);

/// Mean of the per-dimension variance of the attribute rows selected by
/// `mask_value` in `mask` — the statistic the paper reports as "variance of
/// attribute vectors" for Weibo outliers (425.0) vs inliers (11.95).
double AttributeVariance(const Tensor& attributes,
                         const std::vector<uint8_t>& mask, uint8_t mask_value);

}  // namespace vgod::datasets

#endif  // VGOD_DATASETS_SYNTHETIC_H_
