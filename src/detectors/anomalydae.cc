#include "detectors/anomalydae.h"

#include "graph/graph_ops.h"
#include "obs/trace.h"
#include "tensor/kernels.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

AnomalyDae::AnomalyDae(AnomalyDaeConfig config) : config_(config) {}

AnomalyDae::Forward AnomalyDae::RunForward(
    std::shared_ptr<const AttributedGraph> graph,
    const Tensor& attributes) const {
  Variable x = Variable::Constant(attributes);
  // Structure encoder: dense transform, then a GAT attention layer.
  Variable zv = ag::Relu(structure_in_->Forward(x));
  zv = structure_gat_->Forward(graph, zv);
  // Attribute encoder: per-attribute embeddings from X^T (d x n input).
  Variable xt = Variable::Constant(kernels::Transpose(attributes));
  Variable za = attribute_encoder_->Forward(xt);
  Forward out;
  out.structure_reconstruction = ag::Sigmoid(ag::MatMulNT(zv, zv));
  out.attribute_reconstruction = ag::MatMulNT(zv, za);
  return out;
}

Status AnomalyDae::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("AnomalyDAE requires node attributes");
  }
  obs::TrainingRun run("AnomalyDAE", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  fitted_num_nodes_ = n;
  structure_in_.emplace(d, config_.hidden_dim, &rng);
  structure_gat_ =
      std::make_unique<gnn::GatConv>(config_.hidden_dim, config_.hidden_dim,
                                     &rng);
  attribute_encoder_.emplace(
      std::vector<int>{n, config_.hidden_dim, config_.hidden_dim}, &rng);

  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable attr_target = Variable::Constant(graph.attributes());
  Variable adj_target = Variable::Constant(graph_ops::DenseAdjacency(graph));

  std::vector<Variable> params = structure_in_->Parameters();
  for (Variable& p : structure_gat_->Parameters()) {
    params.push_back(std::move(p));
  }
  for (Variable& p : attribute_encoder_->Parameters()) {
    params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("anomalydae/epoch");
    Forward forward = RunForward(message_graph, graph.attributes());
    Variable attr_loss = ag::MeanAll(
        ag::RowSquaredDistance(forward.attribute_reconstruction, attr_target));
    Variable struct_loss = ag::MeanAll(
        ag::RowSquaredDistance(forward.structure_reconstruction, adj_target));
    Variable loss = ag::Add(ag::Scale(attr_loss, config_.eta),
                            ag::Scale(struct_loss, 1.0f - config_.eta));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput AnomalyDae::Score(const AttributedGraph& graph) const {
  VGOD_CHECK_EQ(graph.num_nodes(), fitted_num_nodes_)
      << "AnomalyDAE cannot score a different graph (non-inductive)";
  NoGradGuard no_grad;
  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Forward forward = RunForward(message_graph, graph.attributes());
  Variable attr_errors =
      ag::RowSquaredDistance(forward.attribute_reconstruction,
                             Variable::Constant(graph.attributes()));
  Variable struct_errors = ag::RowSquaredDistance(
      forward.structure_reconstruction,
      Variable::Constant(graph_ops::DenseAdjacency(graph)));

  DetectorOutput out;
  const int n = graph.num_nodes();
  out.score.resize(n);
  out.structural_score.resize(n);
  out.contextual_score.resize(n);
  for (int i = 0; i < n; ++i) {
    out.contextual_score[i] = attr_errors.value().At(i, 0);
    out.structural_score[i] = struct_errors.value().At(i, 0);
    out.score[i] = config_.eta * out.contextual_score[i] +
                   (1.0f - config_.eta) * out.structural_score[i];
  }
  return out;
}

}  // namespace vgod::detectors
