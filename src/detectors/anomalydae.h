#ifndef VGOD_DETECTORS_ANOMALYDAE_H_
#define VGOD_DETECTORS_ANOMALYDAE_H_

#include <memory>
#include <optional>

#include "detectors/detector.h"
#include "gnn/layers.h"
#include "tensor/nn.h"

namespace vgod::detectors {

/// Configuration of the AnomalyDAE baseline (Fan et al., ICASSP 2020).
struct AnomalyDaeConfig {
  int hidden_dim = 64;
  int epochs = 40;
  float lr = 0.005f;
  /// Weight of the attribute term (eta in the original paper); the
  /// structure term gets 1 - eta.
  float eta = 0.5f;
  uint64_t seed = 4;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// AnomalyDAE: a dual autoencoder. The structure encoder (linear + GAT
/// attention layer) produces node embeddings Z_v used to reconstruct the
/// adjacency via sigmoid(Z_v Z_v^T); the attribute encoder is an MLP over
/// X^T producing per-attribute embeddings Z_a, and the cross-modality
/// decoder reconstructs X as Z_v Z_a^T. Because the attribute encoder's
/// input width is |V|, a fitted model is tied to its training graph —
/// paper Table II marks it non-inductive.
class AnomalyDae : public OutlierDetector {
 public:
  explicit AnomalyDae(AnomalyDaeConfig config = {});

  std::string name() const override { return "AnomalyDAE"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;
  bool supports_inductive() const override { return false; }

 private:
  struct Forward {
    Variable attribute_reconstruction;  // n x d
    Variable structure_reconstruction;  // n x n
  };
  Forward RunForward(std::shared_ptr<const AttributedGraph> graph,
                     const Tensor& attributes) const;

  AnomalyDaeConfig config_;
  std::optional<nn::Linear> structure_in_;
  std::unique_ptr<gnn::GnnLayer> structure_gat_;
  std::optional<nn::Mlp> attribute_encoder_;
  int fitted_num_nodes_ = -1;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_ANOMALYDAE_H_
