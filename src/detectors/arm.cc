#include "detectors/arm.h"

#include "core/faultinject.h"
#include "detectors/divergence.h"
#include "detectors/serialize.h"
#include "graph/graph_ops.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {
namespace {

Tensor PrepareAttributes(const AttributedGraph& graph, bool row_normalize) {
  VGOD_CHECK(graph.has_attributes()) << "ARM requires node attributes";
  return row_normalize
             ? graph_ops::RowNormalizeAttributes(graph.attributes())
             : graph.attributes();
}

}  // namespace

Arm::Arm(ArmConfig config) : config_(std::move(config)) {}

Variable Arm::Reconstruct(std::shared_ptr<const AttributedGraph> graph,
                          const Tensor& attributes) const {
  VGOD_CHECK(in_transform_.has_value()) << "Fit() before Score()";
  Variable x = Variable::Constant(attributes);
  // Eq. 14: Z^(0) = row-normalized linear transform.
  Variable z = ag::RowL2Normalize(in_transform_->Forward(x));
  // Eq. 15: L GNN layers absorbing neighbor messages.
  for (const auto& layer : layers_) {
    z = ag::Relu(layer->Forward(graph, z));
  }
  // Eq. 16: retransform to attribute space.
  return out_transform_->Forward(z);
}

std::vector<Variable> Arm::Parameters() const {
  std::vector<Variable> params = in_transform_->Parameters();
  for (const auto& layer : layers_) {
    for (Variable& p : layer->Parameters()) params.push_back(std::move(p));
  }
  for (Variable& p : out_transform_->Parameters()) {
    params.push_back(std::move(p));
  }
  return params;
}

void Arm::BuildModules(int input_dim, Rng* rng) {
  in_transform_.emplace(input_dim, config_.hidden_dim, rng);
  layers_.clear();
  for (int l = 0; l < config_.num_layers; ++l) {
    layers_.push_back(
        gnn::MakeConv(config_.gnn, config_.hidden_dim, config_.hidden_dim,
                      rng));
  }
  out_transform_.emplace(config_.hidden_dim, input_dim, rng);
}

Status Arm::Fit(const AttributedGraph& graph) {
  VGOD_PROFILE_MEMORY_PHASE("detector/arm_fit");
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("ARM requires node attributes");
  }
  obs::TrainingRun run("ARM", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const Tensor attributes =
      PrepareAttributes(graph, config_.row_normalize_attributes);
  BuildModules(attributes.cols(), &rng);

  // GCN/GAT aggregate over the given neighbor lists; self loops keep each
  // node's own signal in its reconstruction.
  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable target = Variable::Constant(attributes);

  Adam optimizer(Parameters(), config_.lr);
  DivergenceGuard guard(Parameters());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("arm/epoch");
    Variable reconstructed = Reconstruct(message_graph, attributes);
    // Eq. 17-18: minimize the mean per-node squared error.
    Variable loss =
        ag::MeanAll(ag::RowSquaredDistance(reconstructed, target));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    // "arm.loss=nan" (faultinject.h) simulates a diverged fit on demand.
    const double epoch_loss =
        faults::MaybeNan("arm.loss", loss.value().ScalarValue());
    const obs::EpochRecord record =
        run.EndEpoch(epoch + 1, epoch_loss, optimizer.GradNorm());
    const Status healthy = guard.Check(record);
    if (!healthy.ok()) {
      // Parameters are already rolled back to the last finite epoch.
      train_stats_.epochs = guard.last_good_epoch();
      train_stats_.train_seconds = run.TotalSeconds();
      return healthy;
    }
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Arm::Score(const AttributedGraph& graph) const {
  VGOD_PROFILE_SCOPE("detector/arm_score");
  NoGradGuard no_grad;
  const Tensor attributes =
      PrepareAttributes(graph, config_.row_normalize_attributes);
  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable reconstructed = Reconstruct(message_graph, attributes);
  Variable errors = ag::RowSquaredDistance(reconstructed,
                                           Variable::Constant(attributes));
  DetectorOutput out;
  out.score.resize(graph.num_nodes());
  for (int i = 0; i < graph.num_nodes(); ++i) {
    out.score[i] = errors.value().At(i, 0);
  }
  out.contextual_score = out.score;
  return out;
}

Status Arm::Save(const std::string& path) const {
  if (!in_transform_.has_value()) {
    return Status::FailedPrecondition("Fit() before Save()");
  }
  return SaveParameterList(Parameters(), path);
}

Status Arm::Load(const std::string& path) {
  Result<std::vector<Tensor>> tensors = LoadParameterList(path);
  if (!tensors.ok()) return tensors.status();
  return RestoreParameters(tensors.value());
}

Status Arm::RestoreParameters(const std::vector<Tensor>& tensors) {
  if (tensors.empty()) {
    return Status::InvalidArgument("ARM: empty parameter list");
  }
  // The first tensor is the input transform's d x hidden weight.
  const Tensor& weight = tensors[0];
  if (weight.cols() != config_.hidden_dim) {
    return Status::InvalidArgument(
        "stored hidden dim " + std::to_string(weight.cols()) +
        " != configured " + std::to_string(config_.hidden_dim));
  }
  Rng rng(config_.seed);
  BuildModules(weight.rows(), &rng);
  std::vector<Variable> params = Parameters();
  return AssignParameters(tensors, &params);
}

Result<ModelBundle> Arm::ExportBundle() const {
  if (!in_transform_.has_value()) {
    return Status::FailedPrecondition("Fit() before ExportBundle()");
  }
  ModelBundle bundle;
  bundle.detector = name();
  obs::JsonValue::Object config;
  config["hidden_dim"] =
      obs::JsonValue(static_cast<int64_t>(config_.hidden_dim));
  config["num_layers"] =
      obs::JsonValue(static_cast<int64_t>(config_.num_layers));
  config["gnn"] = obs::JsonValue(std::string(gnn::GnnKindName(config_.gnn)));
  config["row_normalize_attributes"] =
      obs::JsonValue(config_.row_normalize_attributes);
  bundle.config = obs::JsonValue(std::move(config));
  for (const Variable& param : Parameters()) {
    bundle.params.push_back(param.value().Clone());
  }
  return bundle;
}

Status Arm::RestoreFromBundle(const ModelBundle& bundle) {
  if (!bundle.detector.empty() && bundle.detector != name()) {
    return Status::InvalidArgument("bundle is for detector '" +
                                   bundle.detector + "', not " + name());
  }
  if (bundle.config.is_object()) {
    // Untrusted config: range-check before the double -> int casts (UB out
    // of range) and before BuildModules allocates num_layers hidden^2
    // tensors from these values.
    const double hidden =
        ConfigNumber(bundle.config, "hidden_dim", config_.hidden_dim);
    if (!(hidden >= 1.0 && hidden <= 65536.0)) {
      return Status::InvalidArgument(
          "bundle hidden_dim out of range [1, 65536]");
    }
    const double layers =
        ConfigNumber(bundle.config, "num_layers", config_.num_layers);
    if (!(layers >= 0.0 && layers <= 64.0)) {
      return Status::InvalidArgument(
          "bundle num_layers out of range [0, 64]");
    }
    config_.hidden_dim = static_cast<int>(hidden);
    config_.num_layers = static_cast<int>(layers);
    config_.row_normalize_attributes =
        ConfigBool(bundle.config, "row_normalize_attributes",
                   config_.row_normalize_attributes);
    const std::string gnn_name =
        ConfigString(bundle.config, "gnn", gnn::GnnKindName(config_.gnn));
    bool known = false;
    for (gnn::GnnKind kind : {gnn::GnnKind::kGcn, gnn::GnnKind::kGat,
                              gnn::GnnKind::kGin, gnn::GnnKind::kSage}) {
      if (gnn_name == gnn::GnnKindName(kind)) {
        config_.gnn = kind;
        known = true;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown GNN backbone in bundle: " +
                                     gnn_name);
    }
  }
  return RestoreParameters(bundle.params);
}

}  // namespace vgod::detectors
