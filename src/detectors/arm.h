#ifndef VGOD_DETECTORS_ARM_H_
#define VGOD_DETECTORS_ARM_H_

#include <memory>
#include <optional>
#include <vector>

#include "detectors/detector.h"
#include "gnn/layers.h"
#include "tensor/nn.h"

namespace vgod::detectors {

/// Configuration of the Attribute Reconstruction Model (paper §V-B).
struct ArmConfig {
  /// Hidden dimension. The paper uses 128 on graphs of 2.7k-19.7k nodes;
  /// the simulated datasets here are ~4-10x smaller, so the default keeps a
  /// comparable nodes-per-hidden-unit ratio. An over-provisioned ARM
  /// memorizes the large-norm outlier rows (MSE weights them most) and its
  /// contextual AUC *inverts* with training — measured in
  /// bench/table4_unod_auc sweeps.
  int hidden_dim = 32;
  /// Number of GNN layers L (paper: 2).
  int num_layers = 2;
  /// GNN backbone (paper default: GAT; Tables VIII-IX ablate GCN/GIN).
  gnn::GnnKind gnn = gnn::GnnKind::kGat;
  /// Training epochs (paper: 100, scaled down with the capacity above).
  int epochs = 40;
  float lr = 0.005f;
  /// Row-normalize attributes before use (paper: applied on Weibo).
  bool row_normalize_attributes = false;
  uint64_t seed = 2;
  /// Optional training telemetry sink (one EpochRecord per epoch). Not
  /// owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// The Attribute Reconstruction Model: linear feature transform with row
/// L2 normalization (Eq. 14), L GNN layers (Eq. 15), linear
/// retransformation back to attribute space (Eq. 16). The per-node squared
/// reconstruction error (Eq. 17) is the contextual outlier score.
class Arm : public OutlierDetector {
 public:
  explicit Arm(ArmConfig config = {});

  std::string name() const override { return "ARM"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

  const ArmConfig& config() const { return config_; }

  /// Persists all trained parameters (requires a prior Fit).
  Status Save(const std::string& path) const;

  /// Restores a model saved by Save(). The stored shapes must match this
  /// model's config (hidden dim, layer count, backbone).
  Status Load(const std::string& path);

  /// Bundle persistence (bundle.h): the config JSON carries hidden_dim,
  /// num_layers, the GNN backbone name, and row_normalize_attributes.
  bool supports_bundles() const override { return true; }
  Result<ModelBundle> ExportBundle() const override;
  Status RestoreFromBundle(const ModelBundle& bundle) override;

  int expected_attribute_dim() const override {
    return in_transform_.has_value() ? in_transform_->in_features() : -1;
  }

 private:
  /// Rebuilds the module stack from the tensor shapes + current config and
  /// installs `tensors`.
  Status RestoreParameters(const std::vector<Tensor>& tensors);

  /// Reconstructed attribute matrix X_hat for `graph`.
  Variable Reconstruct(std::shared_ptr<const AttributedGraph> graph,
                       const Tensor& attributes) const;

  std::vector<Variable> Parameters() const;

  /// (Re)creates the module stack for `input_dim` attributes.
  void BuildModules(int input_dim, Rng* rng);

  ArmConfig config_;
  std::optional<nn::Linear> in_transform_;
  std::vector<std::unique_ptr<gnn::GnnLayer>> layers_;
  std::optional<nn::Linear> out_transform_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_ARM_H_
