#include "detectors/bundle.h"

#include <cstring>
#include <fstream>

#include "core/faultinject.h"
#include "detectors/serialize.h"

namespace vgod::detectors {
namespace {

// Streaming FNV-1a over the serialized payload. Cheap, dependency-free,
// and enough to catch truncation and bit rot; this is an integrity check,
// not a cryptographic one.
class Fnv1a {
 public:
  void Update(const void* data, size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void WriteRaw(std::ofstream* out, Fnv1a* sum, const void* data, size_t len) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  if (sum != nullptr) sum->Update(data, len);
}

template <typename T>
void WriteScalar(std::ofstream* out, Fnv1a* sum, T value) {
  WriteRaw(out, sum, &value, sizeof(value));
}

bool ReadRaw(std::ifstream* in, Fnv1a* sum, void* data, size_t len) {
  // "bundle.read=fail[@N]" (faultinject.h) forces the Nth read to come up
  // short, exercising every truncation branch of LoadBundle on demand.
  if (faults::ShouldFail("bundle.read")) return false;
  in->read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  if (in->gcount() != static_cast<std::streamsize>(len)) return false;
  if (sum != nullptr) sum->Update(data, len);
  return true;
}

template <typename T>
bool ReadScalar(std::ifstream* in, Fnv1a* sum, T* value) {
  return ReadRaw(in, sum, value, sizeof(*value));
}

// Caps that a well-formed bundle never hits; reads beyond them mean a
// corrupt or hostile file and fail instead of allocating wildly.
constexpr uint32_t kMaxStringLen = 1 << 20;       // 1 MiB of name/config.
constexpr uint32_t kMaxParamCount = 1 << 16;
constexpr int64_t kMaxTensorElems = int64_t{1} << 31;

}  // namespace

double ConfigNumber(const obs::JsonValue& config, const std::string& key,
                    double fallback) {
  const obs::JsonValue& value = config.at(key);
  return value.is_number() ? value.number() : fallback;
}

bool ConfigBool(const obs::JsonValue& config, const std::string& key,
                bool fallback) {
  const obs::JsonValue& value = config.at(key);
  return value.is_bool() ? value.boolean() : fallback;
}

std::string ConfigString(const obs::JsonValue& config, const std::string& key,
                         const std::string& fallback) {
  const obs::JsonValue& value = config.at(key);
  return value.is_string() ? value.string_value() : fallback;
}

Status SaveBundle(const ModelBundle& bundle, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  out.write(kBundleMagic, 8);
  WriteScalar<uint32_t>(&out, nullptr, kBundleFormatVersion);

  Fnv1a sum;
  const std::string config_json =
      bundle.config.is_null() ? std::string("{}") : bundle.config.Dump();
  WriteScalar<uint32_t>(&out, &sum,
                        static_cast<uint32_t>(bundle.detector.size()));
  WriteRaw(&out, &sum, bundle.detector.data(), bundle.detector.size());
  WriteScalar<uint32_t>(&out, &sum, static_cast<uint32_t>(config_json.size()));
  WriteRaw(&out, &sum, config_json.data(), config_json.size());
  WriteScalar<uint32_t>(&out, &sum,
                        static_cast<uint32_t>(bundle.params.size()));
  for (const Tensor& tensor : bundle.params) {
    WriteScalar<int32_t>(&out, &sum, tensor.rows());
    WriteScalar<int32_t>(&out, &sum, tensor.cols());
    WriteRaw(&out, &sum, tensor.data(), sizeof(float) * tensor.size());
  }
  WriteScalar<uint64_t>(&out, nullptr, sum.Digest());

  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<ModelBundle> LoadBundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  char magic[8];
  if (!ReadRaw(&in, nullptr, magic, sizeof(magic))) {
    return Status::InvalidArgument("not a vgod bundle (too short): " + path);
  }
  if (std::memcmp(magic, kBundleMagic, 8) != 0) {
    // Legacy fallback: the plain-text parameter dump of serialize.h.
    if (std::memcmp(magic, "vgod-par", 8) == 0) {
      Result<std::vector<Tensor>> tensors = LoadParameterList(path);
      if (!tensors.ok()) return tensors.status();
      ModelBundle bundle;
      bundle.params = std::move(tensors).value();
      return bundle;
    }
    return Status::InvalidArgument("not a vgod bundle (bad magic): " + path);
  }
  uint32_t version = 0;
  if (!ReadScalar(&in, nullptr, &version)) {
    return Status::InvalidArgument("truncated bundle header: " + path);
  }
  if (version != kBundleFormatVersion) {
    return Status::InvalidArgument(
        "unsupported bundle format version " + std::to_string(version) +
        " (expected " + std::to_string(kBundleFormatVersion) + "): " + path);
  }

  Fnv1a sum;
  auto read_string = [&](std::string* value) -> Status {
    uint32_t len = 0;
    if (!ReadScalar(&in, &sum, &len)) {
      return Status::InvalidArgument("truncated bundle: " + path);
    }
    if (len > kMaxStringLen) {
      return Status::InvalidArgument("corrupt bundle (oversized field): " +
                                     path);
    }
    value->resize(len);
    if (len > 0 && !ReadRaw(&in, &sum, value->data(), len)) {
      return Status::InvalidArgument("truncated bundle: " + path);
    }
    return Status::Ok();
  };

  ModelBundle bundle;
  std::string config_json;
  VGOD_RETURN_IF_ERROR(read_string(&bundle.detector));
  VGOD_RETURN_IF_ERROR(read_string(&config_json));
  Result<obs::JsonValue> config = obs::ParseJson(config_json);
  if (!config.ok()) {
    return Status::InvalidArgument("corrupt bundle config JSON in " + path +
                                   ": " + config.status().message());
  }
  bundle.config = std::move(config).value();

  uint32_t count = 0;
  if (!ReadScalar(&in, &sum, &count)) {
    return Status::InvalidArgument("truncated bundle: " + path);
  }
  if (count > kMaxParamCount) {
    return Status::InvalidArgument("corrupt bundle (parameter count " +
                                   std::to_string(count) + "): " + path);
  }
  bundle.params.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    int32_t rows = 0, cols = 0;
    if (!ReadScalar(&in, &sum, &rows) || !ReadScalar(&in, &sum, &cols)) {
      return Status::InvalidArgument("truncated tensor header in " + path);
    }
    if (rows < 0 || cols < 0 ||
        static_cast<int64_t>(rows) * cols > kMaxTensorElems) {
      return Status::InvalidArgument("corrupt tensor shape in " + path);
    }
    Tensor tensor(rows, cols);
    if (!ReadRaw(&in, &sum, tensor.data(), sizeof(float) * tensor.size())) {
      return Status::InvalidArgument("truncated tensor data in " + path);
    }
    bundle.params.push_back(std::move(tensor));
  }

  uint64_t stored_sum = 0;
  if (!ReadScalar(&in, nullptr, &stored_sum)) {
    return Status::InvalidArgument("truncated bundle checksum: " + path);
  }
  if (stored_sum != sum.Digest()) {
    return Status::InvalidArgument("bundle checksum mismatch: " + path);
  }
  return bundle;
}

}  // namespace vgod::detectors
