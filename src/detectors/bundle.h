#ifndef VGOD_DETECTORS_BUNDLE_H_
#define VGOD_DETECTORS_BUNDLE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "obs/json.h"
#include "tensor/tensor.h"

namespace vgod::detectors {

// Versioned binary checkpoint ("model bundle") for trained detectors — the
// deployment artifact that vgod_serve loads. Unlike the legacy
// serialize.{h,cc} text dump, a bundle is self-describing: it names the
// detector, carries the architecture config as JSON, and checksums the
// parameter payload, so a load against the wrong model fails loudly
// instead of silently mis-assigning weights.
//
// On-disk layout (all integers little-endian):
//   8 bytes   magic "VGODBNDL"
//   u32       format version (kBundleFormatVersion)
//   u32       detector name length, then that many bytes
//   u32       config JSON length, then that many bytes
//   u32       parameter tensor count
//   per tensor: i32 rows, i32 cols, rows*cols float32 values
//   u64       FNV-1a checksum over everything after the version field

inline constexpr char kBundleMagic[9] = "VGODBNDL";  // 8 chars + NUL.
inline constexpr uint32_t kBundleFormatVersion = 1;

/// A detector checkpoint in memory: which detector, its architecture
/// config (detector-specific JSON object), and the trained parameter
/// tensors in the detector's canonical Parameters() order.
struct ModelBundle {
  std::string detector;
  obs::JsonValue config;
  std::vector<Tensor> params;
};

/// Writes `bundle` to `path` in the binary format above.
Status SaveBundle(const ModelBundle& bundle, const std::string& path);

/// Typed lookups into a bundle's config object, with fallbacks for keys a
/// (possibly older) bundle does not carry.
double ConfigNumber(const obs::JsonValue& config, const std::string& key,
                    double fallback);
bool ConfigBool(const obs::JsonValue& config, const std::string& key,
                bool fallback);
std::string ConfigString(const obs::JsonValue& config, const std::string& key,
                         const std::string& fallback);

/// Reads a bundle written by SaveBundle. Rejects bad magic, unknown
/// format versions, truncated payloads, and checksum mismatches. As a
/// migration path, a legacy "vgod-params" text file (serialize.h) is
/// accepted and returned as a bundle with an empty detector name and
/// null config — the caller must know the architecture, exactly as with
/// LoadParameterList.
Result<ModelBundle> LoadBundle(const std::string& path);

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_BUNDLE_H_
