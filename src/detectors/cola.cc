#include "detectors/cola.h"

#include <numeric>

#include "gnn/graph_autograd.h"
#include "graph/graph_ops.h"
#include "obs/trace.h"
#include "tensor/kernels.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

Cola::Cola(ColaConfig config) : config_(config) {}

Cola::RoundOutput Cola::RunRound(const AttributedGraph& graph,
                                 Rng* rng) const {
  const int n = graph.num_nodes();
  const int c = config_.subgraph_size;

  // One random-walk subgraph per node; the target node is row 0 of its
  // group and its attribute row is masked (anonymized) in the batch.
  std::vector<std::vector<int>> groups(n);
  for (int i = 0; i < n; ++i) groups[i] = RandomWalk(graph, i, c - 1, rng);
  BlockDiagonalBatch batch = MakeBlockDiagonalBatch(graph, groups);
  const int d = graph.attribute_dim();
  Tensor batch_attrs = batch.graph.attributes().Clone();
  for (int g = 0; g < n; ++g) {
    float* row =
        batch_attrs.data() + static_cast<size_t>(batch.group_offsets[g]) * d;
    std::fill(row, row + d, 0.0f);
  }

  // Shared one-layer GCN over the batched subgraphs.
  AttributedGraph batch_sl = batch.graph.WithSelfLoops();
  batch_sl.SetAttributes(batch_attrs);
  auto shared_batch = std::make_shared<const AttributedGraph>(batch_sl);
  Variable h = ag::Relu(
      ag::Spmm(shared_batch, graph_ops::GcnNormWeights(*shared_batch),
               embed_->Forward(Variable::Constant(batch_attrs))));

  // Per-subgraph readout (mean over the group's rows).
  std::vector<int> offsets = batch.group_offsets;
  offsets.push_back(batch.graph.num_nodes());
  Variable readout = ag::SegmentMeanRows(h, std::move(offsets));

  // Target embeddings: the shared weight applied to the *unmasked* raw
  // attributes (no aggregation — the node is judged against its context).
  Variable target = ag::Relu(
      embed_->Forward(Variable::Constant(graph.attributes())));
  Variable transformed = discriminator_->Forward(target);

  // Positive: own subgraph. Negative: another node's subgraph (cyclic
  // shift keeps exactly one negative per target).
  const int shift = 1 + static_cast<int>(rng->UniformInt(n - 1));
  std::vector<int> shifted(n);
  for (int i = 0; i < n; ++i) shifted[i] = (i + shift) % n;
  Variable negative_readout = ag::GatherRows(readout, std::move(shifted));

  RoundOutput out;
  out.positive_logits = ag::RowSums(ag::Mul(transformed, readout));
  out.negative_logits = ag::RowSums(ag::Mul(transformed, negative_readout));
  return out;
}

Status Cola::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("CoLA requires node attributes");
  }
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument("CoLA needs at least two nodes");
  }
  obs::TrainingRun run("CoLA", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  embed_.emplace(graph.attribute_dim(), config_.hidden_dim, &rng,
                 /*use_bias=*/false);
  discriminator_.emplace(config_.hidden_dim, config_.hidden_dim, &rng,
                         /*use_bias=*/false);

  std::vector<Variable> params = embed_->Parameters();
  for (Variable& p : discriminator_->Parameters()) {
    params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  const int n = graph.num_nodes();
  const Tensor ones = Tensor::Ones(n, 1);
  const Tensor zeros = Tensor::Zeros(n, 1);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("cola/epoch");
    RoundOutput round = RunRound(graph, &rng);
    Variable loss = ag::Add(ag::BceWithLogits(round.positive_logits, ones),
                            ag::BceWithLogits(round.negative_logits, zeros));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Cola::Score(const AttributedGraph& graph) const {
  NoGradGuard no_grad;
  Rng rng(config_.seed ^ 0xc01a);
  const int n = graph.num_nodes();
  DetectorOutput out;
  out.score.assign(n, 0.0);
  // Multi-round sampling inference: score = E[ s(negative) - s(positive) ].
  for (int round = 0; round < config_.test_rounds; ++round) {
    RoundOutput r = RunRound(graph, &rng);
    const Tensor pos = kernels::Sigmoid(r.positive_logits.value());
    const Tensor neg = kernels::Sigmoid(r.negative_logits.value());
    for (int i = 0; i < n; ++i) {
      out.score[i] += (neg.At(i, 0) - pos.At(i, 0)) / config_.test_rounds;
    }
  }
  return out;
}

}  // namespace vgod::detectors
