#ifndef VGOD_DETECTORS_COLA_H_
#define VGOD_DETECTORS_COLA_H_

#include <optional>

#include "core/rng.h"
#include "detectors/detector.h"
#include "graph/sampling.h"
#include "tensor/nn.h"

namespace vgod::detectors {

/// Configuration of the CoLA baseline (Liu et al., TNNLS 2021).
struct ColaConfig {
  int hidden_dim = 64;
  int epochs = 20;
  float lr = 0.005f;
  /// Local subgraph size c (target node + random-walk context).
  int subgraph_size = 4;
  /// Test-time sampling rounds R. The original uses 256; 64 here keeps the
  /// single-core bench tractable while preserving CoLA's defining property
  /// of multi-round sampling inference (it remains the slowest model at
  /// inference by a wide margin, paper Table VII).
  int test_rounds = 64;
  uint64_t seed = 6;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// CoLA: contrastive self-supervised detection. For each target node, a
/// positive instance pairs the node with its random-walk local subgraph
/// (target attributes masked inside the subgraph) and a negative instance
/// pairs it with another node's subgraph. A shared GCN embeds subgraphs, a
/// bilinear discriminator scores (target, subgraph-readout) agreement, and
/// the outlier score is the average of (negative score - positive score)
/// over test rounds: outliers disagree with their own neighborhood.
/// No reconstruction, no component scores (paper Table II).
class Cola : public OutlierDetector {
 public:
  explicit Cola(ColaConfig config = {});

  std::string name() const override { return "CoLA"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  struct RoundOutput {
    Variable positive_logits;  // n x 1
    Variable negative_logits;  // n x 1
  };
  /// Samples one round of subgraphs and evaluates both instance pairs.
  RoundOutput RunRound(const AttributedGraph& graph, Rng* rng) const;

  ColaConfig config_;
  std::optional<nn::Linear> embed_;          // Shared GCN weight.
  std::optional<nn::Linear> discriminator_;  // Bilinear form.
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_COLA_H_
