#include "detectors/conad.h"

#include <algorithm>

#include "graph/graph_ops.h"
#include "obs/trace.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

Conad::Conad(ConadConfig config) : config_(config) {}

Conad::AugmentedView Conad::Augment(const AttributedGraph& graph,
                                    Rng* rng) const {
  const int n = graph.num_nodes();
  const int num_pseudo =
      std::max(1, static_cast<int>(n * config_.augmentation_rate));
  std::vector<int> chosen = rng->SampleWithoutReplacement(n, num_pseudo);
  std::vector<uint8_t> pseudo(n, 0);
  std::vector<uint8_t> drop_edges(n, 0);

  Tensor attrs = graph.attributes().Clone();
  const int d = attrs.cols();
  std::vector<std::pair<int, int>> extra_edges;
  for (int node : chosen) {
    pseudo[node] = 1;
    switch (rng->UniformInt(4)) {
      case 0: {
        // High-degree: wire the node to a batch of random others.
        const int burst = 10 + static_cast<int>(rng->UniformInt(6));
        for (int t = 0; t < burst; ++t) {
          const int other = static_cast<int>(rng->UniformInt(n));
          if (other != node) extra_edges.emplace_back(node, other);
        }
        break;
      }
      case 1:
        // Outlying: drop the node's edges.
        drop_edges[node] = 1;
        break;
      case 2: {
        // Deviated attributes: swap in a random other node's vector plus
        // noise.
        const int other = static_cast<int>(rng->UniformInt(n));
        const float* src = graph.attributes().data() +
                           static_cast<size_t>(other) * d;
        float* dst = attrs.data() + static_cast<size_t>(node) * d;
        for (int j = 0; j < d; ++j) {
          dst[j] = src[j] + static_cast<float>(rng->Normal(0.0, 0.5));
        }
        break;
      }
      default: {
        // Disproportionate: scale the attribute vector up or down sharply.
        const float factor = rng->Bernoulli(0.5) ? 10.0f : 0.1f;
        float* dst = attrs.data() + static_cast<size_t>(node) * d;
        for (int j = 0; j < d; ++j) dst[j] *= factor;
        break;
      }
    }
  }

  GraphBuilder builder(n);
  for (const auto& [u, v] : graph.UndirectedEdgeList()) {
    if (drop_edges[u] || drop_edges[v]) continue;
    builder.AddEdge(u, v);
  }
  for (const auto& [u, v] : extra_edges) builder.AddEdge(u, v);
  builder.SetAttributes(std::move(attrs));
  Result<AttributedGraph> built = builder.Build();
  VGOD_CHECK(built.ok()) << built.status().ToString();
  return AugmentedView{std::move(built).value(), std::move(pseudo)};
}

Variable Conad::Encode(std::shared_ptr<const AttributedGraph> graph,
                       const Tensor& attributes) const {
  Variable z = ag::Relu(
      encoder1_->Forward(graph, Variable::Constant(attributes)));
  return ag::Relu(encoder2_->Forward(graph, z));
}

Status Conad::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("CONAD requires node attributes");
  }
  obs::TrainingRun run("CONAD", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  encoder1_ = std::make_unique<gnn::GcnConv>(d, config_.hidden_dim, &rng);
  encoder2_ = std::make_unique<gnn::GcnConv>(config_.hidden_dim,
                                             config_.hidden_dim, &rng);
  attribute_decoder_ =
      std::make_unique<gnn::GcnConv>(config_.hidden_dim, d, &rng);

  auto original =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable attr_target = Variable::Constant(graph.attributes());
  Variable adj_target = Variable::Constant(graph_ops::DenseAdjacency(graph));

  std::vector<Variable> params = encoder1_->Parameters();
  for (Variable& p : encoder2_->Parameters()) params.push_back(std::move(p));
  for (Variable& p : attribute_decoder_->Parameters()) {
    params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("conad/epoch");
    AugmentedView view = Augment(graph, &rng);
    auto augmented =
        std::make_shared<const AttributedGraph>(view.graph.WithSelfLoops());

    Variable z = Encode(original, graph.attributes());
    Variable z_aug = Encode(augmented, view.graph.attributes());

    // Siamese contrastive term: agreement for untouched nodes, a margin
    // hinge pushing pseudo-anomalies apart.
    Variable distance = ag::RowSquaredDistance(z, z_aug);
    Tensor normal_mask(n, 1);
    Tensor pseudo_mask(n, 1);
    int num_pseudo = 0;
    for (int i = 0; i < n; ++i) {
      normal_mask.SetAt(i, 0, view.pseudo_anomaly[i] ? 0.0f : 1.0f);
      pseudo_mask.SetAt(i, 0, view.pseudo_anomaly[i] ? 1.0f : 0.0f);
      num_pseudo += view.pseudo_anomaly[i];
    }
    Variable agree = ag::SumAll(
        ag::Mul(distance, Variable::Constant(normal_mask)));
    Variable repel = ag::SumAll(ag::Mul(
        ag::Relu(ag::Sub(
            Variable::Constant(Tensor::Full(n, 1, config_.margin)), distance)),
        Variable::Constant(pseudo_mask)));
    Variable contrast =
        ag::Add(ag::Scale(agree, 1.0f / std::max(1, n - num_pseudo)),
                ag::Scale(repel, 1.0f / std::max(1, num_pseudo)));

    // Reconstruction term on the original view (also the scoring path).
    Variable x_hat = attribute_decoder_->Forward(original, z);
    Variable a_hat = ag::Sigmoid(ag::MatMulNT(z, z));
    Variable recon =
        ag::Add(ag::MeanAll(ag::RowSquaredDistance(x_hat, attr_target)),
                ag::MeanAll(ag::RowSquaredDistance(a_hat, adj_target)));

    Variable loss = ag::Add(ag::Scale(contrast, config_.eta),
                            ag::Scale(recon, 1.0f - config_.eta));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Conad::Score(const AttributedGraph& graph) const {
  NoGradGuard no_grad;
  auto original =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable z = Encode(original, graph.attributes());
  Variable x_hat = attribute_decoder_->Forward(original, z);
  Variable a_hat = ag::Sigmoid(ag::MatMulNT(z, z));
  Variable attr_errors = ag::RowSquaredDistance(
      x_hat, Variable::Constant(graph.attributes()));
  Variable struct_errors = ag::RowSquaredDistance(
      a_hat, Variable::Constant(graph_ops::DenseAdjacency(graph)));

  DetectorOutput out;
  const int n = graph.num_nodes();
  out.score.resize(n);
  out.structural_score.resize(n);
  out.contextual_score.resize(n);
  for (int i = 0; i < n; ++i) {
    out.contextual_score[i] = attr_errors.value().At(i, 0);
    out.structural_score[i] = struct_errors.value().At(i, 0);
    out.score[i] = 0.5 * (out.contextual_score[i] + out.structural_score[i]);
  }
  return out;
}

}  // namespace vgod::detectors
