#ifndef VGOD_DETECTORS_CONAD_H_
#define VGOD_DETECTORS_CONAD_H_

#include <memory>

#include "core/rng.h"
#include "detectors/detector.h"
#include "gnn/layers.h"

namespace vgod::detectors {

/// Configuration of the CONAD baseline (Xu et al., PAKDD 2022).
struct ConadConfig {
  int hidden_dim = 64;
  int epochs = 30;
  float lr = 0.005f;
  /// Fraction of nodes turned into pseudo-anomalies per augmented view.
  float augmentation_rate = 0.1f;
  /// Weight of the contrastive term; (1 - eta) weighs reconstruction.
  float eta = 0.5f;
  /// Margin of the contrastive hinge for pseudo-anomalous nodes.
  float margin = 0.5f;
  uint64_t seed = 8;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// CONAD: contrastive detection with human-knowledge-driven augmentation.
/// Each epoch builds an augmented view where a random subset of nodes is
/// perturbed by one of four strategies (high-degree clique, edge dropping,
/// attribute deviation, disproportionate scaling). A Siamese GCN encoder
/// pulls unperturbed nodes' embeddings together across views and pushes
/// pseudo-anomalies apart (margin hinge), alongside a Dominant-style
/// reconstruction objective on the original view, which also provides the
/// outlier score.
class Conad : public OutlierDetector {
 public:
  explicit Conad(ConadConfig config = {});

  std::string name() const override { return "CONAD"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  struct AugmentedView {
    AttributedGraph graph;
    std::vector<uint8_t> pseudo_anomaly;  // 1 for perturbed nodes.
  };
  AugmentedView Augment(const AttributedGraph& graph, Rng* rng) const;

  Variable Encode(std::shared_ptr<const AttributedGraph> graph,
                  const Tensor& attributes) const;

  ConadConfig config_;
  std::unique_ptr<gnn::GnnLayer> encoder1_;
  std::unique_ptr<gnn::GnnLayer> encoder2_;
  std::unique_ptr<gnn::GnnLayer> attribute_decoder_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_CONAD_H_
