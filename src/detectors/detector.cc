#include "detectors/detector.h"

namespace vgod::detectors {

Result<ModelBundle> OutlierDetector::ExportBundle() const {
  return Status::FailedPrecondition(name() +
                                    " does not support model bundles");
}

Status OutlierDetector::RestoreFromBundle(const ModelBundle& bundle) {
  (void)bundle;
  return Status::FailedPrecondition(name() +
                                    " does not support model bundles");
}

}  // namespace vgod::detectors
