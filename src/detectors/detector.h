#ifndef VGOD_DETECTORS_DETECTOR_H_
#define VGOD_DETECTORS_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "detectors/bundle.h"
#include "graph/graph.h"
#include "obs/monitor.h"

namespace vgod::detectors {

/// Scores produced by a detector. Higher = more anomalous (paper
/// Definition 2). Component scores are present only for detectors that
/// separate structural and contextual signals (VGOD, DegNorm, AnomalyDAE,
/// Dominant, DONE, CONAD); empty otherwise.
struct DetectorOutput {
  std::vector<double> score;
  std::vector<double> structural_score;
  std::vector<double> contextual_score;

  bool has_components() const {
    return !structural_score.empty() && !contextual_score.empty();
  }
};

/// Wall-clock accounting for the efficiency experiment (paper Fig 7 /
/// Table VII), plus the per-epoch telemetry captured by
/// obs::TrainingRun (loss, grad norm, epoch seconds, peak tensor
/// bytes). `epoch_records` is empty for non-deep detectors.
struct TrainStats {
  int epochs = 0;
  double train_seconds = 0.0;
  std::vector<obs::EpochRecord> epoch_records;

  double SecondsPerEpoch() const {
    return epochs > 0 ? train_seconds / epochs : 0.0;
  }
};

/// Unsupervised node outlier detector. The transductive protocol of the
/// paper is Fit(g) then Score(g) on the same graph; the inductive protocol
/// (paper Appendix B) calls Score on a different graph with the same
/// attribute schema. Detectors that cannot score unseen graphs
/// (AnomalyDAE) document it via supports_inductive().
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  virtual std::string name() const = 0;

  /// Trains on `graph` without labels. Must be called before Score.
  virtual Status Fit(const AttributedGraph& graph) = 0;

  /// Scores every node of `graph`.
  virtual DetectorOutput Score(const AttributedGraph& graph) const = 0;

  /// Whether a fitted model can score a graph other than its training
  /// graph (paper Table II, "Inductive Inference" column).
  virtual bool supports_inductive() const { return true; }

  /// The attribute width a fitted (or bundle-restored) model requires of
  /// any graph it scores, or -1 when unknown (unfitted, or the detector is
  /// schema-free). The serving layer checks the resident graph against
  /// this at startup — a mismatch would otherwise only surface as a shape
  /// CHECK deep inside the first Score() kernel.
  virtual int expected_attribute_dim() const { return -1; }

  /// Whether this detector can round-trip through a model bundle
  /// (bundle.h) — the deployment artifact vgod::serve loads.
  virtual bool supports_bundles() const { return false; }

  /// Packs the fitted model (name, architecture config, parameters) into a
  /// bundle. Default: FailedPrecondition for detectors without support.
  virtual Result<ModelBundle> ExportBundle() const;

  /// Reconfigures this detector from `bundle.config` and installs
  /// `bundle.params`, making it ready to Score without a Fit. Fails on
  /// detector-name, parameter-count, or shape mismatch.
  virtual Status RestoreFromBundle(const ModelBundle& bundle);

  const TrainStats& train_stats() const { return train_stats_; }

 protected:
  TrainStats train_stats_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_DETECTOR_H_
