#include "detectors/divergence.h"

#include <cmath>
#include <string>

#include "core/logging.h"
#include "obs/metrics.h"

namespace vgod::detectors {

DivergenceGuard::DivergenceGuard(std::vector<Variable> params)
    : params_(std::move(params)) {}

Status DivergenceGuard::Check(const obs::EpochRecord& record) {
  const bool loss_ok = std::isfinite(record.loss);
  const bool grad_ok = std::isfinite(record.grad_norm);
  if (loss_ok && grad_ok) {
    if (snapshot_.empty()) {
      snapshot_.reserve(params_.size());
      for (const Variable& param : params_) {
        snapshot_.push_back(param.value().Clone());
      }
    } else {
      for (size_t i = 0; i < params_.size(); ++i) {
        snapshot_[i].CopyFrom(params_[i].value());
      }
    }
    last_good_epoch_ = record.epoch;
    return Status::Ok();
  }

  VGOD_COUNTER_INC("train.divergence");
  const std::string quantity =
      !loss_ok ? "loss=" + std::to_string(record.loss)
               : "grad_norm=" + std::to_string(record.grad_norm);
  std::string message = record.detector + " training diverged at epoch " +
                        std::to_string(record.epoch) + "/" +
                        std::to_string(record.planned_epochs) + " (" +
                        quantity + ")";
  if (last_good_epoch_ > 0) {
    for (size_t i = 0; i < params_.size(); ++i) {
      params_[i].SetValue(snapshot_[i]);
    }
    message += "; parameters rolled back to epoch " +
               std::to_string(last_good_epoch_);
  } else {
    message += "; no finite epoch to roll back to";
  }
  VGOD_LOG(Warning) << message;
  return Status::Internal(message);
}

}  // namespace vgod::detectors
