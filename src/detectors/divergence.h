#ifndef VGOD_DETECTORS_DIVERGENCE_H_
#define VGOD_DETECTORS_DIVERGENCE_H_

#include <vector>

#include "core/status.h"
#include "obs/monitor.h"
#include "tensor/autograd.h"

namespace vgod::detectors {

/// Watches a training loop's per-epoch telemetry for divergence (the
/// non-finite loss or gradient norm that unsupervised detectors are prone
/// to — BOND/PyGOD both report it across seeds) and keeps the model
/// recoverable: after every finite epoch it snapshots the parameters, and
/// on the first non-finite epoch it rolls the parameters back to that
/// snapshot and reports a structured error.
///
/// Usage, inside Fit() right after obs::TrainingRun::EndEpoch:
///
///   DivergenceGuard guard(Parameters());
///   for (...) {
///     ...optimizer step...
///     const obs::EpochRecord record = run.EndEpoch(epoch + 1, loss, norm);
///     VGOD_RETURN_IF_ERROR(guard.Check(record));
///   }
///
/// When Check returns an error the Fit should return it as-is: the caller
/// gets a clear Status while the detector holds the last-good-epoch
/// parameters, so it can still Score (or export a bundle) from the final
/// healthy state instead of garbage.
class DivergenceGuard {
 public:
  /// `params` are the live training parameters (shared autograd nodes, so
  /// the guard sees every optimizer step and can write rollbacks back).
  explicit DivergenceGuard(std::vector<Variable> params);

  /// Finite loss and grad norm: snapshots the parameters, returns OK.
  /// Non-finite: restores the last snapshot (when one exists), bumps the
  /// train.divergence counter, and returns Internal naming the detector,
  /// epoch, offending quantity, and the epoch rolled back to.
  Status Check(const obs::EpochRecord& record);

  /// The latest epoch whose parameters are snapshotted (0 = none yet).
  int last_good_epoch() const { return last_good_epoch_; }

 private:
  std::vector<Variable> params_;
  std::vector<Tensor> snapshot_;
  int last_good_epoch_ = 0;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_DIVERGENCE_H_
