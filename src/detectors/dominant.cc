#include "detectors/dominant.h"

#include "graph/graph_ops.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

Dominant::Dominant(DominantConfig config) : config_(config) {}

Dominant::Forward Dominant::RunForward(
    std::shared_ptr<const AttributedGraph> graph,
    const Tensor& attributes) const {
  Variable x = Variable::Constant(attributes);
  Variable z = ag::Relu(encoder1_->Forward(graph, x));
  z = ag::Relu(encoder2_->Forward(graph, z));
  Forward out;
  out.attribute_reconstruction = attribute_decoder_->Forward(graph, z);
  out.structure_reconstruction = ag::Sigmoid(ag::MatMulNT(z, z));
  return out;
}

Status Dominant::Fit(const AttributedGraph& graph) {
  VGOD_PROFILE_MEMORY_PHASE("detector/dominant_fit");
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("Dominant requires node attributes");
  }
  obs::TrainingRun run("Dominant", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const int d = graph.attribute_dim();
  encoder1_ = std::make_unique<gnn::GcnConv>(d, config_.hidden_dim, &rng);
  encoder2_ = std::make_unique<gnn::GcnConv>(config_.hidden_dim,
                                             config_.hidden_dim, &rng);
  attribute_decoder_ =
      std::make_unique<gnn::GcnConv>(config_.hidden_dim, d, &rng);

  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable attr_target = Variable::Constant(graph.attributes());
  Variable adj_target =
      Variable::Constant(graph_ops::DenseAdjacency(graph));

  std::vector<Variable> params = encoder1_->Parameters();
  for (Variable& p : encoder2_->Parameters()) params.push_back(std::move(p));
  for (Variable& p : attribute_decoder_->Parameters()) {
    params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("dominant/epoch");
    Forward forward = RunForward(message_graph, graph.attributes());
    Variable attr_loss = ag::MeanAll(
        ag::RowSquaredDistance(forward.attribute_reconstruction, attr_target));
    Variable struct_loss = ag::MeanAll(
        ag::RowSquaredDistance(forward.structure_reconstruction, adj_target));
    Variable loss = ag::Add(ag::Scale(attr_loss, config_.alpha),
                            ag::Scale(struct_loss, 1.0f - config_.alpha));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Dominant::Score(const AttributedGraph& graph) const {
  VGOD_PROFILE_SCOPE("detector/dominant_score");
  NoGradGuard no_grad;
  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Forward forward = RunForward(message_graph, graph.attributes());
  Variable attr_errors =
      ag::RowSquaredDistance(forward.attribute_reconstruction,
                             Variable::Constant(graph.attributes()));
  Variable struct_errors = ag::RowSquaredDistance(
      forward.structure_reconstruction,
      Variable::Constant(graph_ops::DenseAdjacency(graph)));

  DetectorOutput out;
  const int n = graph.num_nodes();
  out.score.resize(n);
  out.structural_score.resize(n);
  out.contextual_score.resize(n);
  for (int i = 0; i < n; ++i) {
    out.contextual_score[i] = attr_errors.value().At(i, 0);
    out.structural_score[i] = struct_errors.value().At(i, 0);
    out.score[i] = config_.alpha * out.contextual_score[i] +
                   (1.0f - config_.alpha) * out.structural_score[i];
  }
  return out;
}

}  // namespace vgod::detectors
