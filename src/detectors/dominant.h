#ifndef VGOD_DETECTORS_DOMINANT_H_
#define VGOD_DETECTORS_DOMINANT_H_

#include <memory>
#include <optional>

#include "detectors/detector.h"
#include "gnn/layers.h"

namespace vgod::detectors {

/// Configuration of the Dominant baseline (Ding et al., SDM 2019).
struct DominantConfig {
  int hidden_dim = 64;
  int epochs = 40;
  float lr = 0.005f;
  /// Weight of the attribute reconstruction term; (1 - alpha) weighs the
  /// structure term. 0.5 balances them as in the reference setup.
  float alpha = 0.5f;
  uint64_t seed = 3;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// Dominant: a shared two-layer GCN encoder feeding (a) a GCN attribute
/// decoder and (b) a sigmoid(Z Z^T) structure decoder; the weighted
/// per-node reconstruction errors are the outlier score. The structure
/// term reconstructs the full dense adjacency — the O(|V|^2) cost noted in
/// paper Table II, and the source of its degree bias on structural
/// outliers.
class Dominant : public OutlierDetector {
 public:
  explicit Dominant(DominantConfig config = {});

  std::string name() const override { return "Dominant"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  struct Forward {
    Variable attribute_reconstruction;  // n x d
    Variable structure_reconstruction;  // n x n (sigmoid(Z Z^T))
  };
  Forward RunForward(std::shared_ptr<const AttributedGraph> graph,
                     const Tensor& attributes) const;

  DominantConfig config_;
  std::unique_ptr<gnn::GnnLayer> encoder1_;
  std::unique_ptr<gnn::GnnLayer> encoder2_;
  std::unique_ptr<gnn::GnnLayer> attribute_decoder_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_DOMINANT_H_
