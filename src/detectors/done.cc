#include "detectors/done.h"

#include <cmath>

#include "eval/metrics.h"
#include "gnn/graph_autograd.h"
#include "graph/graph_ops.h"
#include "obs/trace.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {
namespace {

/// Sum-to-unit probabilities from raw non-negative errors; a floor keeps
/// log(1/o) finite.
std::vector<double> ErrorProbabilities(const Variable& errors) {
  std::vector<double> raw(errors.rows());
  for (int i = 0; i < errors.rows(); ++i) {
    raw[i] = std::max(0.0f, errors.value().At(i, 0));
  }
  std::vector<double> probs = eval::SumToUnitNormalize(raw);
  for (double& p : probs) p = std::max(p, 1e-12);
  return probs;
}

Tensor LogInverseWeights(const std::vector<double>& probs) {
  Tensor out(static_cast<int>(probs.size()), 1);
  for (size_t i = 0; i < probs.size(); ++i) {
    out.SetAt(static_cast<int>(i), 0,
              static_cast<float>(std::log(1.0 / probs[i])));
  }
  return out;
}

}  // namespace

Done::Done(DoneConfig config) : config_(config) {}

Done::ErrorTerms Done::ComputeErrors(const AttributedGraph& graph,
                                     const Tensor& attributes,
                                     const Tensor& adjacency) const {
  auto shared_graph = std::make_shared<const AttributedGraph>(graph);
  Variable adjacency_rows = Variable::Constant(adjacency);
  Variable x = Variable::Constant(attributes);

  Variable hs = ag::Relu(structure_encoder_->Forward(adjacency_rows));
  Variable ha = ag::Relu(attribute_encoder_->Forward(x));
  Variable adjacency_hat = structure_decoder_->Forward(hs);
  Variable x_hat = attribute_decoder_->Forward(ha);

  ErrorTerms out;
  // Reconstruction terms.
  out.terms[0] = ag::RowSquaredDistance(adjacency_hat, adjacency_rows);
  out.terms[1] = ag::RowSquaredDistance(x_hat, x);
  // Homophily terms: embeddings should match the neighborhood mean.
  out.terms[2] =
      ag::RowSquaredDistance(hs, ag::NeighborMean(shared_graph, hs));
  out.terms[3] =
      ag::RowSquaredDistance(ha, ag::NeighborMean(shared_graph, ha));
  // Cross-modality agreement.
  out.terms[4] = ag::RowSquaredDistance(hs, ha);
  return out;
}

Status Done::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("DONE requires node attributes");
  }
  obs::TrainingRun run("DONE", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  fitted_num_nodes_ = n;
  structure_encoder_.emplace(n, config_.hidden_dim, &rng);
  structure_decoder_.emplace(config_.hidden_dim, n, &rng);
  attribute_encoder_.emplace(d, config_.hidden_dim, &rng);
  attribute_decoder_.emplace(config_.hidden_dim, d, &rng);

  const Tensor adjacency = graph_ops::DenseAdjacency(graph);

  std::vector<Variable> params = structure_encoder_->Parameters();
  for (auto* module : {&*structure_decoder_, &*attribute_encoder_,
                       &*attribute_decoder_}) {
    for (Variable& p : module->Parameters()) params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  // log(1/o_i) weights, refreshed from the previous epoch's errors
  // (alternating minimization over o and the network parameters).
  std::vector<Tensor> weights(kNumTerms, Tensor::Ones(n, 1));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("done/epoch");
    ErrorTerms errors = ComputeErrors(graph, graph.attributes(), adjacency);
    Variable loss;
    for (int k = 0; k < kNumTerms; ++k) {
      Variable weighted =
          ag::MeanAll(ag::Mul(errors.terms[k],
                              Variable::Constant(weights[k])));
      loss = loss.defined() ? ag::Add(loss, weighted) : weighted;
    }
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    for (int k = 0; k < kNumTerms; ++k) {
      weights[k] = LogInverseWeights(ErrorProbabilities(errors.terms[k]));
    }
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Done::Score(const AttributedGraph& graph) const {
  VGOD_CHECK_EQ(graph.num_nodes(), fitted_num_nodes_)
      << "DONE's structure AE is sized to its training graph";
  NoGradGuard no_grad;
  ErrorTerms errors = ComputeErrors(graph, graph.attributes(),
                                    graph_ops::DenseAdjacency(graph));
  const int n = graph.num_nodes();
  DetectorOutput out;
  out.score.assign(n, 0.0);
  out.structural_score.assign(n, 0.0);
  out.contextual_score.assign(n, 0.0);
  for (int k = 0; k < kNumTerms; ++k) {
    const std::vector<double> probs = ErrorProbabilities(errors.terms[k]);
    for (int i = 0; i < n; ++i) {
      out.score[i] += probs[i] / kNumTerms;
      // Terms 0 and 2 read the topology; 1 and 3 the attributes; term 4
      // couples both and contributes to neither component score.
      if (k == 0 || k == 2) out.structural_score[i] += probs[i] / 2.0;
      if (k == 1 || k == 3) out.contextual_score[i] += probs[i] / 2.0;
    }
  }
  return out;
}

}  // namespace vgod::detectors
