#ifndef VGOD_DETECTORS_DONE_H_
#define VGOD_DETECTORS_DONE_H_

#include <optional>

#include "detectors/detector.h"
#include "tensor/nn.h"

namespace vgod::detectors {

/// Configuration of the DONE baseline (Bandyopadhyay et al., WSDM 2020).
struct DoneConfig {
  int hidden_dim = 64;
  int epochs = 40;
  float lr = 0.005f;
  uint64_t seed = 5;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// DONE: two MLP autoencoders — one over adjacency rows (structure AE) and
/// one over attributes (attribute AE) — trained with five per-node error
/// terms: structure reconstruction, attribute reconstruction, structure
/// homophily, attribute homophily, and cross-embedding agreement. Each
/// term's per-node errors define provisional outlier probabilities o_i
/// (sum-to-unit), and each node's loss contribution is weighted by
/// log(1/o_i) using the previous epoch's probabilities (alternating
/// optimization, as in the original paper). The final score averages the
/// five normalized error terms. Because the structure AE's input width is
/// |V|, DONE here is used transductively-sized; the original samples
/// neighborhoods (its O(|V|K) complexity in paper Table II).
class Done : public OutlierDetector {
 public:
  explicit Done(DoneConfig config = {});

  std::string name() const override { return "DONE"; }
  Status Fit(const AttributedGraph& graph) override;
  /// Inductive in the paper's sense (Table II): a fitted model scores any
  /// graph with the same node count and attribute schema (the structure
  /// AE's input is an adjacency row, so the node count is part of the
  /// schema).
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  static constexpr int kNumTerms = 5;

  struct ErrorTerms {
    Variable terms[kNumTerms];  // Each n x 1.
  };
  ErrorTerms ComputeErrors(const AttributedGraph& graph,
                           const Tensor& attributes,
                           const Tensor& adjacency) const;

  DoneConfig config_;
  std::optional<nn::Linear> structure_encoder_;
  std::optional<nn::Linear> structure_decoder_;
  std::optional<nn::Linear> attribute_encoder_;
  std::optional<nn::Linear> attribute_decoder_;
  int fitted_num_nodes_ = -1;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_DONE_H_
