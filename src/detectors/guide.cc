#include "detectors/guide.h"

#include "graph/algorithms.h"
#include "obs/trace.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

Guide::Guide(GuideConfig config) : config_(config) {}

Guide::Forward Guide::RunForward(std::shared_ptr<const AttributedGraph> graph,
                                 const Tensor& attributes,
                                 const Tensor& structure_features) const {
  Forward out;
  Variable x = Variable::Constant(attributes);
  Variable z = ag::Relu(attr_encoder_->Forward(graph, x));
  out.attribute_reconstruction = attr_decoder_->Forward(graph, z);

  Variable s = Variable::Constant(structure_features);
  Variable hs = struct_encoder_->Forward(s);
  out.structure_reconstruction = struct_decoder_->Forward(hs);
  return out;
}

Status Guide::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("GUIDE requires node attributes");
  }
  obs::TrainingRun run("GUIDE", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const int d = graph.attribute_dim();
  attr_encoder_ = std::make_unique<gnn::GcnConv>(d, config_.hidden_dim, &rng);
  attr_decoder_ = std::make_unique<gnn::GcnConv>(config_.hidden_dim, d, &rng);
  const Tensor structure_features =
      graph_algorithms::StructuralFeatureMatrix(graph);
  struct_encoder_.emplace(
      std::vector<int>{structure_features.cols(), config_.hidden_dim}, &rng);
  struct_decoder_.emplace(config_.hidden_dim, structure_features.cols(),
                          &rng);

  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  Variable attr_target = Variable::Constant(graph.attributes());
  Variable struct_target = Variable::Constant(structure_features);

  std::vector<Variable> params = attr_encoder_->Parameters();
  for (auto* module :
       std::initializer_list<nn::Module*>{&*attr_decoder_, &*struct_encoder_,
                                          &*struct_decoder_}) {
    for (Variable& p : module->Parameters()) params.push_back(std::move(p));
  }
  Adam optimizer(params, config_.lr);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("guide/epoch");
    Forward forward =
        RunForward(message_graph, graph.attributes(), structure_features);
    Variable attr_loss = ag::MeanAll(
        ag::RowSquaredDistance(forward.attribute_reconstruction, attr_target));
    Variable struct_loss = ag::MeanAll(ag::RowSquaredDistance(
        forward.structure_reconstruction, struct_target));
    Variable loss = ag::Add(ag::Scale(attr_loss, config_.alpha),
                            ag::Scale(struct_loss, 1.0f - config_.alpha));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Guide::Score(const AttributedGraph& graph) const {
  NoGradGuard no_grad;
  auto message_graph =
      std::make_shared<const AttributedGraph>(graph.WithSelfLoops());
  const Tensor structure_features =
      graph_algorithms::StructuralFeatureMatrix(graph);
  Forward forward =
      RunForward(message_graph, graph.attributes(), structure_features);
  Variable attr_errors =
      ag::RowSquaredDistance(forward.attribute_reconstruction,
                             Variable::Constant(graph.attributes()));
  Variable struct_errors =
      ag::RowSquaredDistance(forward.structure_reconstruction,
                             Variable::Constant(structure_features));

  DetectorOutput out;
  const int n = graph.num_nodes();
  out.score.resize(n);
  out.structural_score.resize(n);
  out.contextual_score.resize(n);
  for (int i = 0; i < n; ++i) {
    out.contextual_score[i] = attr_errors.value().At(i, 0);
    out.structural_score[i] = struct_errors.value().At(i, 0);
    out.score[i] = config_.alpha * out.contextual_score[i] +
                   (1.0f - config_.alpha) * out.structural_score[i];
  }
  return out;
}

}  // namespace vgod::detectors
