#ifndef VGOD_DETECTORS_GUIDE_H_
#define VGOD_DETECTORS_GUIDE_H_

#include <memory>
#include <optional>

#include "detectors/detector.h"
#include "gnn/layers.h"
#include "tensor/nn.h"

namespace vgod::detectors {

/// Configuration of the GUIDE baseline (Yuan et al., IEEE BigData 2021 —
/// paper reference [21]).
struct GuideConfig {
  int hidden_dim = 32;
  int epochs = 40;
  float lr = 0.005f;
  /// Weight of the attribute reconstruction term.
  float alpha = 0.5f;
  uint64_t seed = 10;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// GUIDE: replaces Dominant's O(|V|^2) adjacency reconstruction with
/// *higher-order structure* reconstruction. Each node gets a structural
/// descriptor (here: degree, triangles, wedges, local clustering, core
/// number — a compact stand-in for GUIDE's graphlet degree vector, see
/// graph_algorithms::StructuralFeatureMatrix) reconstructed by an MLP
/// autoencoder, alongside a GCN attribute autoencoder. Injected cliques
/// produce extreme motif statistics, which is exactly what this
/// reconstruction flags. Inductive, and O(|E| + |V|) like VGOD.
class Guide : public OutlierDetector {
 public:
  explicit Guide(GuideConfig config = {});

  std::string name() const override { return "GUIDE"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  struct Forward {
    Variable attribute_reconstruction;  // n x d
    Variable structure_reconstruction;  // n x 5 (motif features)
  };
  Forward RunForward(std::shared_ptr<const AttributedGraph> graph,
                     const Tensor& attributes,
                     const Tensor& structure_features) const;

  GuideConfig config_;
  std::unique_ptr<gnn::GnnLayer> attr_encoder_;
  std::unique_ptr<gnn::GnnLayer> attr_decoder_;
  std::optional<nn::Mlp> struct_encoder_;
  std::optional<nn::Linear> struct_decoder_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_GUIDE_H_
