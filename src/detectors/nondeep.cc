#include "detectors/nondeep.h"

#include "core/rng.h"
#include "obs/trace.h"
#include "tensor/functional.h"
#include "tensor/kernels.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {
namespace {

/// Smooth L2,1 norm: sum_i sqrt(||row_i||^2 + eps).
Variable L21Norm(const Variable& m) {
  return ag::SumAll(ag::Sqrt(ag::RowSums(ag::Square(m))));
}

/// tr(R^T L R) = sum over undirected edges ||r_u - r_v||^2.
Variable LaplacianSmoothness(const Variable& residual,
                             const AttributedGraph& graph) {
  std::vector<int> sources, targets;
  sources.reserve(graph.num_directed_edges() / 2);
  targets.reserve(graph.num_directed_edges() / 2);
  for (const auto& [u, v] : graph.UndirectedEdgeList()) {
    sources.push_back(u);
    targets.push_back(v);
  }
  if (sources.empty()) return Variable::Constant(Tensor::Zeros(1, 1));
  Variable ru = ag::GatherRows(residual, std::move(sources));
  Variable rv = ag::GatherRows(residual, std::move(targets));
  return ag::SumAll(ag::RowSquaredDistance(ru, rv));
}

std::vector<double> ResidualRowNorms(const Variable& residual) {
  const Tensor norms = kernels::RowNorms(residual.value());
  std::vector<double> out(norms.rows());
  for (int i = 0; i < norms.rows(); ++i) out[i] = norms.At(i, 0);
  return out;
}

/// Runs Adam on `loss_fn` over `params`, normalizing loss terms by the
/// number of nodes to make the hyperparameters scale-free. Records one
/// EpochRecord per epoch into `stats` and returns the total wall time.
template <typename LossFn>
double Optimize(const std::string& detector,
                const ResidualAnalysisConfig& config, TrainStats* stats,
                std::vector<Variable> params, LossFn loss_fn) {
  obs::TrainingRun run(detector, config.epochs, config.monitor,
                       &stats->epoch_records);
  Adam optimizer(params, config.lr);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    VGOD_TRACE_SPAN("nondeep/epoch");
    Variable loss = loss_fn();
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.EndEpoch(epoch + 1, loss.value().ScalarValue(),
                 optimizer.GradNorm());
  }
  return run.TotalSeconds();
}

}  // namespace

Radar::Radar(ResidualAnalysisConfig config) : config_(config) {}

Status Radar::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("Radar requires node attributes");
  }
  const int n = graph.num_nodes();
  const float inv_n = 1.0f / static_cast<float>(n);
  Variable x = Variable::Constant(graph.attributes());
  Rng rng(config_.seed);
  // W starts near zero so the initial reconstruction is the residual
  // itself; R starts at X (fully unexplained), matching the alternating
  // scheme's initialization.
  Variable w = Variable::Parameter(
      Tensor::RandomNormal(n, n, 0.0f, 0.01f, &rng));
  Variable r = Variable::Parameter(graph.attributes().Clone());

  const double seconds = Optimize(name(), config_, &train_stats_, {w, r},
                                  [&]() {
    Variable reconstruction = ag::Add(ag::MatMul(w, x), r);
    Variable fit = ag::SumAll(ag::RowSquaredDistance(reconstruction, x));
    Variable loss = ag::Scale(fit, inv_n);
    loss = ag::Add(loss, ag::Scale(L21Norm(w), config_.alpha * inv_n));
    loss = ag::Add(loss, ag::Scale(L21Norm(r), config_.beta * inv_n));
    loss = ag::Add(loss, ag::Scale(LaplacianSmoothness(r, graph),
                                   config_.gamma * inv_n));
    return loss;
  });

  scores_ = ResidualRowNorms(r);
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = seconds;
  return Status::Ok();
}

DetectorOutput Radar::Score(const AttributedGraph& graph) const {
  VGOD_CHECK_EQ(graph.num_nodes(), static_cast<int>(scores_.size()))
      << "Radar's coefficient matrix is tied to its training graph "
         "(non-inductive)";
  DetectorOutput out;
  out.score = scores_;
  return out;
}

Anomalous::Anomalous(ResidualAnalysisConfig config) : config_(config) {}

Status Anomalous::Fit(const AttributedGraph& graph) {
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("ANOMALOUS requires node attributes");
  }
  const int n = graph.num_nodes();
  const int d = graph.attribute_dim();
  const float inv_n = 1.0f / static_cast<float>(n);
  Variable x = Variable::Constant(graph.attributes());
  Rng rng(config_.seed);
  Variable w = Variable::Parameter(
      Tensor::RandomNormal(d, d, 0.0f, 0.01f, &rng));
  Variable r = Variable::Parameter(graph.attributes().Clone());

  const double seconds = Optimize(name(), config_, &train_stats_, {w, r},
                                  [&]() {
    Variable reconstruction = ag::Add(ag::MatMul(x, w), r);
    Variable fit = ag::SumAll(ag::RowSquaredDistance(reconstruction, x));
    Variable loss = ag::Scale(fit, inv_n);
    // Column sparsity in attribute space = row sparsity of W here
    // (attribute selection).
    loss = ag::Add(loss, ag::Scale(L21Norm(w), config_.alpha));
    loss = ag::Add(loss, ag::Scale(L21Norm(r), config_.beta * inv_n));
    loss = ag::Add(loss, ag::Scale(LaplacianSmoothness(r, graph),
                                   config_.gamma * inv_n));
    return loss;
  });

  scores_ = ResidualRowNorms(r);
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = seconds;
  return Status::Ok();
}

DetectorOutput Anomalous::Score(const AttributedGraph& graph) const {
  VGOD_CHECK_EQ(graph.num_nodes(), static_cast<int>(scores_.size()))
      << "ANOMALOUS is tied to its training graph (non-inductive)";
  DetectorOutput out;
  out.score = scores_;
  return out;
}

}  // namespace vgod::detectors
