#ifndef VGOD_DETECTORS_NONDEEP_H_
#define VGOD_DETECTORS_NONDEEP_H_

#include <optional>

#include "detectors/detector.h"
#include "tensor/autograd.h"

namespace vgod::detectors {

// The non-deep residual-analysis baselines the paper's related work
// discusses (§II-B): Radar (Li et al., IJCAI 2017) and ANOMALOUS (Peng et
// al., IJCAI 2018). The originals solve their objectives by closed-form
// alternating updates with repeated n x n inversions — O(n^3) per step,
// infeasible on this repo's single-core budget — so both are optimized
// here by Adam on the same objectives with a smooth sqrt(.+eps) L2,1
// surrogate. The residual-based scoring mechanism (outlier score =
// ||r_i||_2) and the regularization structure are unchanged; this is the
// documented substitution of DESIGN.md §1.

/// Shared hyperparameters of the residual-analysis models.
struct ResidualAnalysisConfig {
  /// Weight of the L2,1 penalty on the reconstruction coefficients.
  float alpha = 0.03f;
  /// Weight of the L2,1 penalty on the residual matrix (row sparsity: only
  /// outliers should carry large residuals).
  float beta = 0.1f;
  /// Weight of the graph-Laplacian smoothness term tr(R^T L R), which ties
  /// residuals to the topology.
  float gamma = 0.1f;
  int epochs = 50;
  float lr = 0.01f;
  uint64_t seed = 9;
  /// Optional training telemetry sink. Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// Radar: attributes of each node are reconstructed from *other nodes'*
/// attributes, X ~= W X + R with a row-sparse coefficient matrix W (n x n)
/// and a row-sparse, Laplacian-smoothed residual R. Nodes whose attributes
/// cannot be explained by the rest of the network (large ||r_i||) are
/// outliers. Non-inductive: W is tied to the training graph's node set.
class Radar : public OutlierDetector {
 public:
  explicit Radar(ResidualAnalysisConfig config = {});

  std::string name() const override { return "Radar"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;
  bool supports_inductive() const override { return false; }

 private:
  ResidualAnalysisConfig config_;
  std::vector<double> scores_;
};

/// ANOMALOUS: joint attribute selection and outlier detection. Attributes
/// are reconstructed through a column-sparse attribute-space projection,
/// X ~= X W + R with W (d x d) under an L2,1 penalty (CUR-flavored
/// attribute selection), plus the same residual machinery as Radar.
class Anomalous : public OutlierDetector {
 public:
  explicit Anomalous(ResidualAnalysisConfig config = {});

  std::string name() const override { return "ANOMALOUS"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;
  bool supports_inductive() const override { return false; }

 private:
  ResidualAnalysisConfig config_;
  std::vector<double> scores_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_NONDEEP_H_
