#include "detectors/registry.h"

#include <algorithm>

#include "detectors/anomalydae.h"
#include "detectors/arm.h"
#include "detectors/cola.h"
#include "detectors/conad.h"
#include "detectors/dominant.h"
#include "detectors/guide.h"
#include "detectors/done.h"
#include "detectors/nondeep.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"

namespace vgod::detectors {
namespace {

int ScaledEpochs(int base, double scale) {
  return std::max(1, static_cast<int>(base * scale + 0.5));
}

}  // namespace

const std::vector<std::string>& ComparisonDetectorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Dominant", "AnomalyDAE", "DONE", "CoLA", "CONAD", "DegNorm", "VGOD"};
  return *names;
}

Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name, const DetectorOptions& options) {
  if (name == "DegNorm") {
    return std::unique_ptr<OutlierDetector>(new DegNorm());
  }
  if (name == "Deg") {
    return std::unique_ptr<OutlierDetector>(new Deg());
  }
  if (name == "L2Norm") {
    return std::unique_ptr<OutlierDetector>(new L2Norm());
  }
  if (name == "Random") {
    return std::unique_ptr<OutlierDetector>(new RandomDetector(options.seed));
  }
  if (name == "VBM") {
    VbmConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.self_loop = options.self_loop;
    config.row_normalize_attributes = options.row_normalize_attributes;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Vbm(config));
  }
  if (name == "ARM") {
    ArmConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.row_normalize_attributes = options.row_normalize_attributes;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Arm(config));
  }
  if (name == "VGOD") {
    VgodConfig config;
    config.vbm.seed = options.seed;
    config.arm.seed = options.seed + 1;
    config.vbm.monitor = options.monitor;
    config.arm.monitor = options.monitor;
    config.vbm.self_loop = options.self_loop;
    config.vbm.row_normalize_attributes = options.row_normalize_attributes;
    config.arm.row_normalize_attributes = options.row_normalize_attributes;
    config.vbm.epochs = ScaledEpochs(config.vbm.epochs, options.epoch_scale);
    config.arm.epochs = ScaledEpochs(config.arm.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Vgod(config));
  }
  if (name == "Dominant") {
    DominantConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Dominant(config));
  }
  if (name == "AnomalyDAE") {
    AnomalyDaeConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new AnomalyDae(config));
  }
  if (name == "DONE") {
    DoneConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Done(config));
  }
  if (name == "CoLA") {
    ColaConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Cola(config));
  }
  if (name == "CONAD") {
    ConadConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Conad(config));
  }
  if (name == "GUIDE") {
    GuideConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    return std::unique_ptr<OutlierDetector>(new Guide(config));
  }
  if (name == "Radar" || name == "ANOMALOUS") {
    ResidualAnalysisConfig config;
    config.seed = options.seed;
    config.monitor = options.monitor;
    config.epochs = ScaledEpochs(config.epochs, options.epoch_scale);
    if (name == "Radar") {
      return std::unique_ptr<OutlierDetector>(new Radar(config));
    }
    return std::unique_ptr<OutlierDetector>(new Anomalous(config));
  }
  return Status::NotFound("unknown detector: " + name);
}

}  // namespace vgod::detectors
