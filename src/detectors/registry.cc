#include "detectors/registry.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "detectors/anomalydae.h"
#include "detectors/arm.h"
#include "detectors/cola.h"
#include "detectors/conad.h"
#include "detectors/dominant.h"
#include "detectors/guide.h"
#include "detectors/done.h"
#include "detectors/nondeep.h"
#include "detectors/simple.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"

namespace vgod::detectors {
namespace {

int ScaledEpochs(int base, double scale) {
  return std::max(1, static_cast<int>(base * scale + 0.5));
}

// Name -> factory map behind a mutex. MakeDetector used to be a chain of
// string compares over stateless constructors; the serving thread pool
// made registration state and concurrent lookups real, so the map is now
// explicit and locked. Factories are copied out before invocation so a
// slow constructor never runs under the lock.
class FactoryRegistry {
 public:
  static FactoryRegistry& Global() {
    static FactoryRegistry* registry = new FactoryRegistry();
    return *registry;
  }

  void Register(const std::string& name, DetectorFactory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    factories_[name] = std::move(factory);
  }

  Result<DetectorFactory> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("unknown detector: " + name);
    }
    return it->second;
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;
  }

 private:
  FactoryRegistry() { RegisterBuiltins(); }
  void RegisterBuiltins();

  mutable std::mutex mu_;
  std::map<std::string, DetectorFactory> factories_;
};

template <typename D, typename C>
std::unique_ptr<OutlierDetector> MakeTrainable(C config,
                                               const DetectorOptions& o) {
  config.seed = o.seed;
  config.monitor = o.monitor;
  config.epochs = ScaledEpochs(config.epochs, o.epoch_scale);
  return std::make_unique<D>(std::move(config));
}

void FactoryRegistry::RegisterBuiltins() {
  // Callers hold no lock here (constructor), so assign directly.
  factories_["DegNorm"] = [](const DetectorOptions&) {
    return Result<std::unique_ptr<OutlierDetector>>(
        std::make_unique<DegNorm>());
  };
  factories_["Deg"] = [](const DetectorOptions&) {
    return Result<std::unique_ptr<OutlierDetector>>(std::make_unique<Deg>());
  };
  factories_["L2Norm"] = [](const DetectorOptions&) {
    return Result<std::unique_ptr<OutlierDetector>>(
        std::make_unique<L2Norm>());
  };
  factories_["Random"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        std::make_unique<RandomDetector>(o.seed));
  };
  factories_["VBM"] = [](const DetectorOptions& o) {
    VbmConfig config;
    config.self_loop = o.self_loop;
    config.row_normalize_attributes = o.row_normalize_attributes;
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Vbm>(config, o));
  };
  factories_["ARM"] = [](const DetectorOptions& o) {
    ArmConfig config;
    config.row_normalize_attributes = o.row_normalize_attributes;
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Arm>(config, o));
  };
  factories_["VGOD"] = [](const DetectorOptions& o) {
    VgodConfig config;
    config.vbm.seed = o.seed;
    config.arm.seed = o.seed + 1;
    config.vbm.monitor = o.monitor;
    config.arm.monitor = o.monitor;
    config.vbm.self_loop = o.self_loop;
    config.vbm.row_normalize_attributes = o.row_normalize_attributes;
    config.arm.row_normalize_attributes = o.row_normalize_attributes;
    config.vbm.epochs = ScaledEpochs(config.vbm.epochs, o.epoch_scale);
    config.arm.epochs = ScaledEpochs(config.arm.epochs, o.epoch_scale);
    return Result<std::unique_ptr<OutlierDetector>>(
        std::make_unique<Vgod>(config));
  };
  factories_["Dominant"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Dominant>(DominantConfig{}, o));
  };
  factories_["AnomalyDAE"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<AnomalyDae>(AnomalyDaeConfig{}, o));
  };
  factories_["DONE"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Done>(DoneConfig{}, o));
  };
  factories_["CoLA"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Cola>(ColaConfig{}, o));
  };
  factories_["CONAD"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Conad>(ConadConfig{}, o));
  };
  factories_["GUIDE"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Guide>(GuideConfig{}, o));
  };
  factories_["Radar"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Radar>(ResidualAnalysisConfig{}, o));
  };
  factories_["ANOMALOUS"] = [](const DetectorOptions& o) {
    return Result<std::unique_ptr<OutlierDetector>>(
        MakeTrainable<Anomalous>(ResidualAnalysisConfig{}, o));
  };
}

}  // namespace

const std::vector<std::string>& ComparisonDetectorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "Dominant", "AnomalyDAE", "DONE", "CoLA", "CONAD", "DegNorm", "VGOD"};
  return *names;
}

Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name, const DetectorOptions& options) {
  Result<DetectorFactory> factory = FactoryRegistry::Global().Find(name);
  if (!factory.ok()) return factory.status();
  return factory.value()(options);
}

Result<std::unique_ptr<OutlierDetector>> MakeDetectorFromBundle(
    const ModelBundle& bundle, const DetectorOptions& options) {
  if (bundle.detector.empty()) {
    return Status::InvalidArgument(
        "bundle does not name a detector (legacy parameter file? use the "
        "owning detector's Load instead)");
  }
  Result<std::unique_ptr<OutlierDetector>> detector =
      MakeDetector(bundle.detector, options);
  if (!detector.ok()) return detector.status();
  if (!detector.value()->supports_bundles()) {
    return Status::FailedPrecondition(bundle.detector +
                                      " does not support model bundles");
  }
  VGOD_RETURN_IF_ERROR(detector.value()->RestoreFromBundle(bundle));
  return detector;
}

void RegisterDetector(const std::string& name, DetectorFactory factory) {
  FactoryRegistry::Global().Register(name, std::move(factory));
}

std::vector<std::string> RegisteredDetectorNames() {
  return FactoryRegistry::Global().Names();
}

}  // namespace vgod::detectors
