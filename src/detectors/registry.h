#ifndef VGOD_DETECTORS_REGISTRY_H_
#define VGOD_DETECTORS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "detectors/detector.h"

namespace vgod::detectors {

/// Knobs the bench binaries need to vary when building a detector by name.
struct DetectorOptions {
  uint64_t seed = 1;
  /// Enable VGOD/VBM's self-loop technique (paper Eq. 13). The UNOD
  /// experiment enables it on the low-degree datasets.
  bool self_loop = false;
  /// Row-normalize attributes (paper: applied to Weibo).
  bool row_normalize_attributes = false;
  /// Scales every detector's epoch budget (1.0 = paper-like defaults).
  double epoch_scale = 1.0;
  /// Optional training telemetry sink threaded into every trainable
  /// detector's config. Not owned; must outlive the detector's Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// Detector names accepted by MakeDetector, in the order of the paper's
/// comparison tables: Dominant, AnomalyDAE, DONE, CoLA, CONAD, DegNorm,
/// VGOD (plus VBM, ARM, Deg, L2Norm, Random for component experiments).
const std::vector<std::string>& ComparisonDetectorNames();

/// Builds a detector by name with the paper-default configuration adjusted
/// by `options`.
Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name, const DetectorOptions& options = {});

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_REGISTRY_H_
