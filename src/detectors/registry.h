#ifndef VGOD_DETECTORS_REGISTRY_H_
#define VGOD_DETECTORS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "detectors/bundle.h"
#include "detectors/detector.h"

namespace vgod::detectors {

/// Knobs the bench binaries need to vary when building a detector by name.
struct DetectorOptions {
  uint64_t seed = 1;
  /// Enable VGOD/VBM's self-loop technique (paper Eq. 13). The UNOD
  /// experiment enables it on the low-degree datasets.
  bool self_loop = false;
  /// Row-normalize attributes (paper: applied to Weibo).
  bool row_normalize_attributes = false;
  /// Scales every detector's epoch budget (1.0 = paper-like defaults).
  double epoch_scale = 1.0;
  /// Optional training telemetry sink threaded into every trainable
  /// detector's config. Not owned; must outlive the detector's Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// Detector names accepted by MakeDetector, in the order of the paper's
/// comparison tables: Dominant, AnomalyDAE, DONE, CoLA, CONAD, DegNorm,
/// VGOD (plus VBM, ARM, Deg, L2Norm, Random for component experiments).
const std::vector<std::string>& ComparisonDetectorNames();

/// Builds a detector by name with the paper-default configuration adjusted
/// by `options`. Thread-safe: the serving worker pool constructs detectors
/// concurrently.
Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name, const DetectorOptions& options = {});

/// Builds the detector named by `bundle.detector` and restores its config
/// and parameters, yielding a model ready to Score without a Fit. Fails on
/// unknown detector names, bundles without bundle support, and config or
/// shape mismatches. Thread-safe.
Result<std::unique_ptr<OutlierDetector>> MakeDetectorFromBundle(
    const ModelBundle& bundle, const DetectorOptions& options = {});

/// Constructs a detector from `options`; registered under a name.
using DetectorFactory =
    std::function<Result<std::unique_ptr<OutlierDetector>>(
        const DetectorOptions& options)>;

/// Adds (or replaces) a detector factory under `name`. Thread-safe with
/// respect to concurrent MakeDetector calls; built-in names can be
/// overridden deliberately.
void RegisterDetector(const std::string& name, DetectorFactory factory);

/// Every registered detector name (built-ins plus RegisterDetector calls),
/// sorted. Thread-safe.
std::vector<std::string> RegisteredDetectorNames();

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_REGISTRY_H_
