#include "detectors/serialize.h"

#include <fstream>

namespace vgod::detectors {

Status SaveParameterList(const std::vector<Variable>& params,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "vgod-params " << params.size() << "\n";
  out.precision(9);
  for (const Variable& param : params) {
    const Tensor& value = param.value();
    out << value.rows() << " " << value.cols();
    for (int64_t i = 0; i < value.size(); ++i) out << " " << value.data()[i];
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<Tensor>> LoadParameterList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string magic;
  size_t count = 0;
  in >> magic >> count;
  if (magic != "vgod-params") {
    return Status::InvalidArgument("not a vgod-params file: " + path);
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (size_t p = 0; p < count; ++p) {
    int rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || rows < 0 || cols < 0) {
      return Status::InvalidArgument("corrupt tensor header in " + path);
    }
    Tensor tensor(rows, cols);
    for (int64_t i = 0; i < tensor.size(); ++i) {
      if (!(in >> tensor.data()[i])) {
        return Status::InvalidArgument("truncated tensor data in " + path);
      }
    }
    tensors.push_back(std::move(tensor));
  }
  return tensors;
}

Status AssignParameters(const std::vector<Tensor>& values,
                        std::vector<Variable>* params) {
  if (values.size() != params->size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(values.size()) + ", model expects " +
        std::to_string(params->size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i].SameShape((*params)[i].value())) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " shape mismatch: file " +
          values[i].ShapeString() + ", model " +
          (*params)[i].value().ShapeString());
    }
    (*params)[i].SetValue(values[i]);
  }
  return Status::Ok();
}

}  // namespace vgod::detectors
