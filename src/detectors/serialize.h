#ifndef VGOD_DETECTORS_SERIALIZE_H_
#define VGOD_DETECTORS_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "tensor/autograd.h"

namespace vgod::detectors {

// Plain-text parameter persistence for trained detectors. The format is a
// header line ("vgod-params <count>") followed by one "rows cols v0 v1 ..."
// line per tensor, in the module's Parameters() order. Detectors expose
// Save/Load on top of these (Vbm, Arm, Vgod) so a model trained once can
// score fresh graphs in a separate process — the inductive deployment the
// paper's Table II column is about.

/// Writes `params` (their current values) to `path`.
Status SaveParameterList(const std::vector<Variable>& params,
                         const std::string& path);

/// Reads a parameter file written by SaveParameterList.
Result<std::vector<Tensor>> LoadParameterList(const std::string& path);

/// Copies `values` into `params` in order. Fails on count or shape
/// mismatch (i.e. the file was written by a model with a different
/// architecture/config).
Status AssignParameters(const std::vector<Tensor>& values,
                        std::vector<Variable>* params);

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_SERIALIZE_H_
