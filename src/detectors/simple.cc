#include "detectors/simple.h"

#include "eval/metrics.h"
#include "tensor/kernels.h"

namespace vgod::detectors {
namespace {

std::vector<double> DegreeScores(const AttributedGraph& graph) {
  std::vector<double> out(graph.num_nodes());
  for (int i = 0; i < graph.num_nodes(); ++i) out[i] = graph.Degree(i);
  return out;
}

std::vector<double> NormScores(const AttributedGraph& graph) {
  const Tensor norms = kernels::RowNorms(graph.attributes());
  std::vector<double> out(graph.num_nodes());
  for (int i = 0; i < graph.num_nodes(); ++i) out[i] = norms.At(i, 0);
  return out;
}

}  // namespace

Status DegNorm::Fit(const AttributedGraph& graph) {
  (void)graph;  // Training-free by design.
  return Status::Ok();
}

DetectorOutput DegNorm::Score(const AttributedGraph& graph) const {
  DetectorOutput out;
  out.structural_score = DegreeScores(graph);
  out.contextual_score = NormScores(graph);
  out.score = eval::CombineScores(eval::MeanStdNormalize(out.structural_score),
                                  eval::MeanStdNormalize(out.contextual_score));
  return out;
}

Result<ModelBundle> DegNorm::ExportBundle() const {
  ModelBundle bundle;
  bundle.detector = name();
  bundle.config = obs::JsonValue(obs::JsonValue::Object{});
  return bundle;
}

Status DegNorm::RestoreFromBundle(const ModelBundle& bundle) {
  if (!bundle.detector.empty() && bundle.detector != name()) {
    return Status::InvalidArgument("bundle is for detector '" +
                                   bundle.detector + "', not " + name());
  }
  return Status::Ok();
}

Status Deg::Fit(const AttributedGraph& graph) {
  (void)graph;
  return Status::Ok();
}

DetectorOutput Deg::Score(const AttributedGraph& graph) const {
  DetectorOutput out;
  out.score = DegreeScores(graph);
  out.structural_score = out.score;
  return out;
}

Status L2Norm::Fit(const AttributedGraph& graph) {
  (void)graph;
  return Status::Ok();
}

DetectorOutput L2Norm::Score(const AttributedGraph& graph) const {
  DetectorOutput out;
  out.score = NormScores(graph);
  out.contextual_score = out.score;
  return out;
}

Status RandomDetector::Fit(const AttributedGraph& graph) {
  (void)graph;
  return Status::Ok();
}

DetectorOutput RandomDetector::Score(const AttributedGraph& graph) const {
  Rng rng(seed_);
  DetectorOutput out;
  out.score.resize(graph.num_nodes());
  for (double& s : out.score) s = rng.Uniform();
  return out;
}

}  // namespace vgod::detectors
