#ifndef VGOD_DETECTORS_SIMPLE_H_
#define VGOD_DETECTORS_SIMPLE_H_

#include "core/rng.h"
#include "detectors/detector.h"

namespace vgod::detectors {

// The paper's training-free probes. DegNorm (paper Eq. 20) exists to
// demonstrate the injection data leakage: it reads only node degree and the
// attribute L2 norm, yet matches deep baselines under the standard
// injection.

/// Structural score = node degree, contextual score = ||x_i||_2, final
/// score = sum of the mean-std normalized components (paper §VI-A2).
class DegNorm : public OutlierDetector {
 public:
  std::string name() const override { return "DegNorm"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

  /// Training-free, so a bundle is just the detector name — still useful
  /// as a deployable artifact (and as the fast path in serving tests).
  bool supports_bundles() const override { return true; }
  Result<ModelBundle> ExportBundle() const override;
  Status RestoreFromBundle(const ModelBundle& bundle) override;
};

/// Degree only (the "Deg" row of paper Table V).
class Deg : public OutlierDetector {
 public:
  std::string name() const override { return "Deg"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;
};

/// Attribute L2 norm only (the probe of paper Fig 2 / Fig 3).
class L2Norm : public OutlierDetector {
 public:
  std::string name() const override { return "L2Norm"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;
};

/// Uniform random scores — the AUC 0.5 reference line of paper Fig 2.
class RandomDetector : public OutlierDetector {
 public:
  explicit RandomDetector(uint64_t seed = 7) : seed_(seed) {}

  std::string name() const override { return "Random"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

 private:
  uint64_t seed_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_SIMPLE_H_
