#include "detectors/vbm.h"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "core/faultinject.h"
#include "detectors/divergence.h"
#include "detectors/serialize.h"
#include "gnn/graph_autograd.h"
#include "graph/graph_ops.h"
#include "graph/sampling.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/functional.h"

namespace vgod::detectors {
namespace {

Tensor PrepareAttributes(const AttributedGraph& graph, bool row_normalize) {
  VGOD_CHECK(graph.has_attributes()) << "VBM requires node attributes";
  return row_normalize
             ? graph_ops::RowNormalizeAttributes(graph.attributes())
             : graph.attributes();
}

}  // namespace

Vbm::Vbm(VbmConfig config) : config_(std::move(config)) {}

Variable Vbm::Embed(const Tensor& attributes) const {
  VGOD_CHECK(transform_.has_value()) << "Fit() before Score()";
  Variable x = Variable::Constant(attributes);
  return ag::RowL2Normalize(transform_->Forward(x));
}

Result<Tensor> Vbm::EmbedRows(const Tensor& attributes) const {
  if (!transform_.has_value()) {
    return Status::FailedPrecondition("VBM is not fitted");
  }
  if (attributes.cols() != transform_->in_features()) {
    return Status::InvalidArgument(
        "attribute dim " + std::to_string(attributes.cols()) +
        " does not match the fitted model's " +
        std::to_string(transform_->in_features()));
  }
  NoGradGuard no_grad;
  const Tensor prepared =
      config_.row_normalize_attributes
          ? graph_ops::RowNormalizeAttributes(attributes)
          : attributes;
  return Embed(prepared).value().Clone();
}

std::vector<double> Vbm::CurrentScores(const AttributedGraph& graph) const {
  NoGradGuard no_grad;
  auto scoring_graph = std::make_shared<const AttributedGraph>(
      config_.self_loop ? graph.WithSelfLoops() : graph);
  Variable h =
      Embed(PrepareAttributes(graph, config_.row_normalize_attributes));
  Variable variance = ag::NeighborVarianceScore(scoring_graph, h);
  std::vector<double> scores(graph.num_nodes());
  for (int i = 0; i < graph.num_nodes(); ++i) {
    scores[i] = variance.value().At(i, 0);
  }
  return scores;
}

double Vbm::RunMiniBatchEpoch(const AttributedGraph& graph,
                              const Tensor& attributes, Optimizer* optimizer,
                              Rng* rng) const {
  const int n = graph.num_nodes();
  double loss_sum = 0.0;
  int batches = 0;
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  for (int begin = 0; begin < n; begin += config_.batch_size) {
    const int end = std::min(n, begin + config_.batch_size);

    // Assemble the batch's support set: each seed node, its (sampled)
    // neighbors including the optional self loop, and freshly sampled
    // negative neighbors. Rows outside the support never enter the step.
    std::unordered_map<int, int> local_id;
    std::vector<int> support;
    auto localize = [&](int global) {
      auto [it, inserted] =
          local_id.emplace(global, static_cast<int>(support.size()));
      if (inserted) support.push_back(global);
      return it->second;
    };

    // Per-seed positive and negative neighbor lists in local ids.
    std::vector<std::vector<int>> positive_neighbors;
    std::vector<std::vector<int>> negative_neighbors;
    for (int b = begin; b < end; ++b) {
      const int seed_node = order[b];
      const int seed_local = localize(seed_node);
      auto neighbors = graph.Neighbors(seed_node);
      std::vector<int> pos;
      if (config_.max_neighbors_per_node > 0 &&
          static_cast<int>(neighbors.size()) >
              config_.max_neighbors_per_node) {
        // GraphSAGE-style neighbor sampling.
        std::vector<int> picks = rng->SampleWithoutReplacement(
            static_cast<int>(neighbors.size()),
            config_.max_neighbors_per_node);
        for (int pick : picks) pos.push_back(localize(neighbors[pick]));
      } else {
        for (int32_t v : neighbors) pos.push_back(localize(v));
      }
      if (config_.self_loop) pos.push_back(seed_local);
      // Negative neighbors: uniform non-neighbors, same count (Def. 3).
      std::unordered_set<int> forbidden(neighbors.begin(), neighbors.end());
      forbidden.insert(seed_node);
      std::vector<int> neg;
      const int want = std::min<int>(pos.size(),
                                     n - static_cast<int>(forbidden.size()));
      std::unordered_set<int> chosen;
      while (static_cast<int>(neg.size()) < want) {
        const int candidate = static_cast<int>(rng->UniformInt(n));
        if (forbidden.count(candidate) || !chosen.insert(candidate).second) {
          continue;
        }
        neg.push_back(localize(candidate));
      }
      positive_neighbors.push_back(std::move(pos));
      negative_neighbors.push_back(std::move(neg));
    }

    // Local graphs over the support rows (directed: seeds own neighbors).
    const int batch_nodes = end - begin;
    auto build_local = [&](const std::vector<std::vector<int>>& lists) {
      GraphBuilder builder(static_cast<int>(support.size()));
      builder.SetUndirected(false).SetKeepSelfLoops(true);
      for (int b = 0; b < batch_nodes; ++b) {
        // Seed b's local id is its first localize() call order; recompute:
        const int seed_local = local_id.at(order[begin + b]);
        for (int neighbor : lists[b]) builder.AddEdge(seed_local, neighbor);
      }
      Result<AttributedGraph> built = builder.Build();
      VGOD_CHECK(built.ok()) << built.status().ToString();
      return std::make_shared<const AttributedGraph>(
          std::move(built).value());
    };
    auto positive_graph = build_local(positive_neighbors);
    auto negative_graph = build_local(negative_neighbors);

    // Embed only the support rows.
    Variable x_sub = ag::GatherRows(Variable::Constant(attributes), support);
    Variable h = ag::RowL2Normalize(transform_->Forward(x_sub));
    Variable loss =
        ag::Sub(ag::MeanAll(ag::NeighborVarianceScore(positive_graph, h)),
                ag::MeanAll(ag::NeighborVarianceScore(negative_graph, h)));
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
    loss_sum += loss.value().ScalarValue();
    ++batches;
  }
  return batches > 0 ? loss_sum / batches : 0.0;
}

Status Vbm::Fit(const AttributedGraph& graph) {
  VGOD_PROFILE_MEMORY_PHASE("detector/vbm_fit");
  if (!graph.has_attributes()) {
    return Status::FailedPrecondition("VBM requires node attributes");
  }
  obs::TrainingRun run("VBM", config_.epochs, config_.monitor,
                       &train_stats_.epoch_records);
  Rng rng(config_.seed);
  const Tensor attributes =
      PrepareAttributes(graph, config_.row_normalize_attributes);
  transform_.emplace(attributes.cols(), config_.hidden_dim, &rng);

  // Positive graph: the real topology (optionally with self loops, Eq. 13).
  auto positive = std::make_shared<const AttributedGraph>(
      config_.self_loop ? graph.WithSelfLoops() : graph);

  Adam optimizer(transform_->Parameters(), config_.lr);
  DivergenceGuard guard(transform_->Parameters());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    VGOD_TRACE_SPAN("vbm/epoch");
    double epoch_loss = 0.0;
    if (config_.batch_size > 0) {
      epoch_loss = RunMiniBatchEpoch(graph, attributes, &optimizer, &rng);
    } else {
      // Fresh negative network each epoch (paper Algorithm 1, line 3).
      auto negative = std::make_shared<const AttributedGraph>(
          BuildNegativeGraph(graph, &rng));

      Variable h = Embed(attributes);
      Variable positive_loss =
          ag::MeanAll(ag::NeighborVarianceScore(positive, h));
      Variable negative_loss =
          ag::MeanAll(ag::NeighborVarianceScore(negative, h));
      // Eq. 11: contrast real neighborhoods (minimize variance) against
      // sampled ones (maximize variance).
      Variable loss = ag::Sub(positive_loss, negative_loss);

      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
      epoch_loss = loss.value().ScalarValue();
    }

    // "vbm.loss=nan" (faultinject.h) simulates the diverged fit the guard
    // below must absorb.
    epoch_loss = faults::MaybeNan("vbm.loss", epoch_loss);
    const obs::EpochRecord record =
        run.EndEpoch(epoch + 1, epoch_loss, optimizer.GradNorm());
    const Status healthy = guard.Check(record);
    if (!healthy.ok()) {
      // The guard already rolled the transform back to the last finite
      // epoch, so this model can still Score; report how far it got.
      train_stats_.epochs = guard.last_good_epoch();
      train_stats_.train_seconds = run.TotalSeconds();
      return healthy;
    }
    if (run.wants_scores()) {
      run.ProbeScores(epoch + 1, CurrentScores(graph));
    }
  }
  train_stats_.epochs = config_.epochs;
  train_stats_.train_seconds = run.TotalSeconds();
  return Status::Ok();
}

DetectorOutput Vbm::Score(const AttributedGraph& graph) const {
  VGOD_PROFILE_SCOPE("detector/vbm_score");
  DetectorOutput out;
  out.score = CurrentScores(graph);
  out.structural_score = out.score;
  return out;
}

Status Vbm::Save(const std::string& path) const {
  if (!transform_.has_value()) {
    return Status::FailedPrecondition("Fit() before Save()");
  }
  return SaveParameterList(transform_->Parameters(), path);
}

Status Vbm::Load(const std::string& path) {
  Result<std::vector<Tensor>> tensors = LoadParameterList(path);
  if (!tensors.ok()) return tensors.status();
  return RestoreParameters(tensors.value());
}

Status Vbm::RestoreParameters(const std::vector<Tensor>& tensors) {
  if (tensors.empty()) {
    return Status::InvalidArgument("VBM: empty parameter list");
  }
  const Tensor& weight = tensors[0];
  if (weight.cols() != config_.hidden_dim) {
    return Status::InvalidArgument(
        "stored hidden dim " + std::to_string(weight.cols()) +
        " != configured " + std::to_string(config_.hidden_dim));
  }
  Rng rng(config_.seed);
  transform_.emplace(weight.rows(), config_.hidden_dim, &rng);
  std::vector<Variable> params = transform_->Parameters();
  return AssignParameters(tensors, &params);
}

Result<ModelBundle> Vbm::ExportBundle() const {
  if (!transform_.has_value()) {
    return Status::FailedPrecondition("Fit() before ExportBundle()");
  }
  ModelBundle bundle;
  bundle.detector = name();
  obs::JsonValue::Object config;
  config["hidden_dim"] =
      obs::JsonValue(static_cast<int64_t>(config_.hidden_dim));
  config["self_loop"] = obs::JsonValue(config_.self_loop);
  config["row_normalize_attributes"] =
      obs::JsonValue(config_.row_normalize_attributes);
  bundle.config = obs::JsonValue(std::move(config));
  for (const Variable& param : transform_->Parameters()) {
    bundle.params.push_back(param.value().Clone());
  }
  return bundle;
}

Status Vbm::RestoreFromBundle(const ModelBundle& bundle) {
  if (!bundle.detector.empty() && bundle.detector != name()) {
    return Status::InvalidArgument("bundle is for detector '" +
                                   bundle.detector + "', not " + name());
  }
  if (bundle.config.is_object()) {
    // The config travels inside the (untrusted) bundle file: validate the
    // range before the double -> int cast, which is UB out of range, and
    // before any allocation sized by it.
    const double hidden =
        ConfigNumber(bundle.config, "hidden_dim", config_.hidden_dim);
    if (!(hidden >= 1.0 && hidden <= 65536.0)) {
      return Status::InvalidArgument(
          "bundle hidden_dim out of range [1, 65536]");
    }
    config_.hidden_dim = static_cast<int>(hidden);
    config_.self_loop =
        ConfigBool(bundle.config, "self_loop", config_.self_loop);
    config_.row_normalize_attributes =
        ConfigBool(bundle.config, "row_normalize_attributes",
                   config_.row_normalize_attributes);
  }
  return RestoreParameters(bundle.params);
}

}  // namespace vgod::detectors
