#ifndef VGOD_DETECTORS_VBM_H_
#define VGOD_DETECTORS_VBM_H_

#include <memory>
#include <optional>

#include "core/rng.h"
#include "detectors/detector.h"
#include "obs/monitor.h"
#include "tensor/nn.h"
#include "tensor/optimizer.h"

namespace vgod::detectors {

/// Configuration of the Variance-Based Model (paper §V-A).
struct VbmConfig {
  /// Hidden dimension of the learned representation (paper: 128).
  int hidden_dim = 128;
  /// Training epochs (paper: 10; Fig 8 shows convergence within a few).
  int epochs = 10;
  /// Adam learning rate (paper: 0.005).
  float lr = 0.005f;
  /// The self-loop edge technique of paper Eq. 13, which extends neighbor
  /// variance to contextual outliers. The paper enables it on the
  /// low-average-degree datasets.
  bool self_loop = false;
  /// Row-normalize attributes before use (the paper applies this on Weibo).
  bool row_normalize_attributes = false;
  /// Mini-batch training (paper §V-D: "we can make use of various
  /// mini-batch training techniques ... to extend our model to a
  /// large-scale network"). 0 = full-batch. When positive, each step
  /// embeds only a batch of seed nodes plus their (sampled) neighborhoods
  /// instead of the whole graph.
  int batch_size = 0;
  /// With mini-batching, caps the neighbors used per seed node
  /// (GraphSAGE-style neighbor sampling). 0 = use all neighbors.
  int max_neighbors_per_node = 0;
  uint64_t seed = 1;
  /// Optional training telemetry sink: receives one EpochRecord per epoch
  /// and, when a score probe is installed, the current structural scores
  /// after each epoch (drives the AUC-vs-epoch study of paper Fig 8).
  /// Not owned; must outlive Fit().
  obs::TrainingMonitor* monitor = nullptr;
};

/// The Variance-Based Model: learns a linear + row-L2-normalized feature
/// map (Eq. 6) such that neighbor variance (Eq. 7-9) is small for real
/// neighborhoods and large for negative-sampled ones (Eq. 10-12). The
/// resulting neighbor-variance score detects structural outliers without
/// the degree bias of reconstruction approaches.
class Vbm : public OutlierDetector {
 public:
  explicit Vbm(VbmConfig config = {});

  std::string name() const override { return "VBM"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

  const VbmConfig& config() const { return config_; }

  /// Embedding rows (Eq. 6) for arbitrary attribute rows under the fitted
  /// transform: h_i = L2Normalize(W x_i + b), applying the configured
  /// row-normalization first. Row-local (row i of the output reads only
  /// row i of the input), which is what makes the streaming path's
  /// single-row re-embedding on attribute events exact
  /// (stream::OnlineScorer). Fails when unfitted or on a width mismatch.
  Result<Tensor> EmbedRows(const Tensor& attributes) const;

  /// Persists the trained feature transform (requires a prior Fit).
  Status Save(const std::string& path) const;

  /// Restores a model saved by Save(). The stored hidden dimension must
  /// match config().hidden_dim. After Load the model can Score directly.
  Status Load(const std::string& path);

  /// Bundle persistence (bundle.h): the config JSON carries hidden_dim,
  /// self_loop, and row_normalize_attributes, so RestoreFromBundle
  /// reconstructs the exact scoring architecture without a prior Fit.
  bool supports_bundles() const override { return true; }
  Result<ModelBundle> ExportBundle() const override;
  Status RestoreFromBundle(const ModelBundle& bundle) override;

  int expected_attribute_dim() const override {
    return transform_.has_value() ? transform_->in_features() : -1;
  }

 private:
  /// Rebuilds the transform from the tensor shapes and installs `tensors`.
  Status RestoreParameters(const std::vector<Tensor>& tensors);

  /// Hidden representation H of Eq. 6 for `attributes`.
  Variable Embed(const Tensor& attributes) const;

  /// One optimization pass over all nodes in mini-batches (neighbor-sampled
  /// subgraphs); used when config_.batch_size > 0. Returns the mean
  /// per-batch loss of the epoch.
  double RunMiniBatchEpoch(const AttributedGraph& graph,
                           const Tensor& attributes, Optimizer* optimizer,
                           Rng* rng) const;

  /// Neighbor-variance scores for `graph` under the current parameters,
  /// applying the self-loop technique when configured.
  std::vector<double> CurrentScores(const AttributedGraph& graph) const;

  VbmConfig config_;
  std::optional<nn::Linear> transform_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_VBM_H_
