#include "detectors/vgod.h"

#include "core/stopwatch.h"
#include "eval/metrics.h"
#include "obs/trace.h"

namespace vgod::detectors {

const char* ScoreCombinationName(ScoreCombination combination) {
  switch (combination) {
    case ScoreCombination::kMeanStd:
      return "mean-std";
    case ScoreCombination::kSumToUnit:
      return "sum-to-unit";
    case ScoreCombination::kWeighted:
      return "weight";
    case ScoreCombination::kRank:
      return "rank";
  }
  return "?";
}

Vgod::Vgod(VgodConfig config)
    : config_(config), vbm_(config.vbm), arm_(config.arm) {}

Status Vgod::Fit(const AttributedGraph& graph) {
  VGOD_TRACE_SPAN("vgod/fit");
  Stopwatch watch;
  // Separate training with independent epoch budgets (paper Algorithm 1):
  // joint training over-trains one component before the other converges.
  VGOD_RETURN_IF_ERROR(vbm_.Fit(graph));
  VGOD_RETURN_IF_ERROR(arm_.Fit(graph));
  train_stats_.epochs = config_.vbm.epochs + config_.arm.epochs;
  train_stats_.train_seconds = watch.ElapsedSeconds();
  // Concatenate the components' per-epoch telemetry (records carry the
  // component name, so the phases stay distinguishable).
  train_stats_.epoch_records.clear();
  for (const auto* component_stats :
       {&vbm_.train_stats(), &arm_.train_stats()}) {
    train_stats_.epoch_records.insert(train_stats_.epoch_records.end(),
                                      component_stats->epoch_records.begin(),
                                      component_stats->epoch_records.end());
  }
  return Status::Ok();
}

DetectorOutput Vgod::Score(const AttributedGraph& graph) const {
  DetectorOutput out;
  out.structural_score = vbm_.Score(graph).score;
  out.contextual_score = arm_.Score(graph).score;
  switch (config_.combination) {
    case ScoreCombination::kMeanStd:
      out.score =
          eval::CombineScores(eval::MeanStdNormalize(out.structural_score),
                              eval::MeanStdNormalize(out.contextual_score));
      break;
    case ScoreCombination::kSumToUnit:
      out.score =
          eval::CombineScores(eval::SumToUnitNormalize(out.structural_score),
                              eval::SumToUnitNormalize(out.contextual_score));
      break;
    case ScoreCombination::kWeighted:
      out.score = eval::CombineScores(out.structural_score,
                                      out.contextual_score,
                                      config_.contextual_weight);
      break;
    case ScoreCombination::kRank:
      out.score =
          eval::CombineScores(eval::RankNormalize(out.structural_score),
                              eval::RankNormalize(out.contextual_score));
      break;
  }
  return out;
}

Status Vgod::Save(const std::string& path) const {
  VGOD_RETURN_IF_ERROR(vbm_.Save(path + ".vbm"));
  return arm_.Save(path + ".arm");
}

Status Vgod::Load(const std::string& path) {
  VGOD_RETURN_IF_ERROR(vbm_.Load(path + ".vbm"));
  return arm_.Load(path + ".arm");
}

}  // namespace vgod::detectors
