#include "detectors/vgod.h"

#include "core/stopwatch.h"
#include "eval/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace vgod::detectors {

const char* ScoreCombinationName(ScoreCombination combination) {
  switch (combination) {
    case ScoreCombination::kMeanStd:
      return "mean-std";
    case ScoreCombination::kSumToUnit:
      return "sum-to-unit";
    case ScoreCombination::kWeighted:
      return "weight";
    case ScoreCombination::kRank:
      return "rank";
  }
  return "?";
}

Result<ScoreCombination> ParseScoreCombination(const std::string& name) {
  for (ScoreCombination combination :
       {ScoreCombination::kMeanStd, ScoreCombination::kSumToUnit,
        ScoreCombination::kWeighted, ScoreCombination::kRank}) {
    if (name == ScoreCombinationName(combination)) return combination;
  }
  return Status::InvalidArgument("unknown score combination: " + name);
}

Vgod::Vgod(VgodConfig config)
    : config_(config), vbm_(config.vbm), arm_(config.arm) {}

Status Vgod::Fit(const AttributedGraph& graph) {
  VGOD_TRACE_SPAN("vgod/fit");
  VGOD_PROFILE_MEMORY_PHASE("detector/vgod_fit");
  Stopwatch watch;
  // Separate training with independent epoch budgets (paper Algorithm 1):
  // joint training over-trains one component before the other converges.
  VGOD_RETURN_IF_ERROR(vbm_.Fit(graph));
  VGOD_RETURN_IF_ERROR(arm_.Fit(graph));
  train_stats_.epochs = config_.vbm.epochs + config_.arm.epochs;
  train_stats_.train_seconds = watch.ElapsedSeconds();
  // Concatenate the components' per-epoch telemetry (records carry the
  // component name, so the phases stay distinguishable).
  train_stats_.epoch_records.clear();
  for (const auto* component_stats :
       {&vbm_.train_stats(), &arm_.train_stats()}) {
    train_stats_.epoch_records.insert(train_stats_.epoch_records.end(),
                                      component_stats->epoch_records.begin(),
                                      component_stats->epoch_records.end());
  }
  return Status::Ok();
}

DetectorOutput Vgod::Score(const AttributedGraph& graph) const {
  VGOD_PROFILE_SCOPE("detector/vgod_score");
  DetectorOutput out;
  out.structural_score = vbm_.Score(graph).score;
  out.contextual_score = arm_.Score(graph).score;
  // A diverged component can emit non-finite scores, which the rank
  // normalizer rejects (NaN breaks its sort) and mean-std would silently
  // smear over every node. Combine the raw vectors instead so the NaN
  // reaches the caller's NonFiniteCheck — the serving engine turns it into
  // an error response rather than a dead process or poisoned JSON.
  if (!eval::NonFiniteCheck(out.structural_score, "structural").ok() ||
      !eval::NonFiniteCheck(out.contextual_score, "contextual").ok()) {
    out.score =
        eval::CombineScores(out.structural_score, out.contextual_score);
    return out;
  }
  switch (config_.combination) {
    case ScoreCombination::kMeanStd:
      out.score =
          eval::CombineScores(eval::MeanStdNormalize(out.structural_score),
                              eval::MeanStdNormalize(out.contextual_score));
      break;
    case ScoreCombination::kSumToUnit:
      out.score =
          eval::CombineScores(eval::SumToUnitNormalize(out.structural_score),
                              eval::SumToUnitNormalize(out.contextual_score));
      break;
    case ScoreCombination::kWeighted:
      out.score = eval::CombineScores(out.structural_score,
                                      out.contextual_score,
                                      config_.contextual_weight);
      break;
    case ScoreCombination::kRank:
      out.score =
          eval::CombineScores(eval::RankNormalize(out.structural_score),
                              eval::RankNormalize(out.contextual_score));
      break;
  }
  return out;
}

Status Vgod::Save(const std::string& path) const {
  VGOD_RETURN_IF_ERROR(vbm_.Save(path + ".vbm"));
  return arm_.Save(path + ".arm");
}

Status Vgod::Load(const std::string& path) {
  VGOD_RETURN_IF_ERROR(vbm_.Load(path + ".vbm"));
  return arm_.Load(path + ".arm");
}

Result<ModelBundle> Vgod::ExportBundle() const {
  Result<ModelBundle> vbm_bundle = vbm_.ExportBundle();
  if (!vbm_bundle.ok()) return vbm_bundle.status();
  Result<ModelBundle> arm_bundle = arm_.ExportBundle();
  if (!arm_bundle.ok()) return arm_bundle.status();

  ModelBundle bundle;
  bundle.detector = name();
  obs::JsonValue::Object config;
  config["vbm"] = vbm_bundle.value().config;
  config["arm"] = arm_bundle.value().config;
  config["vbm_params"] = obs::JsonValue(
      static_cast<int64_t>(vbm_bundle.value().params.size()));
  config["combination"] = obs::JsonValue(
      std::string(ScoreCombinationName(config_.combination)));
  config["contextual_weight"] = obs::JsonValue(config_.contextual_weight);
  bundle.config = obs::JsonValue(std::move(config));

  bundle.params = std::move(vbm_bundle.value().params);
  for (Tensor& tensor : arm_bundle.value().params) {
    bundle.params.push_back(std::move(tensor));
  }
  return bundle;
}

Status Vgod::RestoreFromBundle(const ModelBundle& bundle) {
  if (bundle.detector != name()) {
    return Status::InvalidArgument("bundle is for detector '" +
                                   bundle.detector + "', not " + name());
  }
  if (!bundle.config.is_object()) {
    return Status::InvalidArgument("VGOD bundle is missing its config");
  }
  // Untrusted split point: validate as a double first — casting a NaN or
  // out-of-range value to size_t is UB, not just a wrong answer.
  const double split = ConfigNumber(bundle.config, "vbm_params", -1.0);
  if (!(split >= 0.0 &&
        split <= static_cast<double>(bundle.params.size()))) {
    return Status::InvalidArgument("VGOD bundle has a corrupt vbm_params "
                                   "split");
  }
  const auto vbm_params = static_cast<size_t>(split);
  Result<ScoreCombination> combination = ParseScoreCombination(ConfigString(
      bundle.config, "combination",
      ScoreCombinationName(config_.combination)));
  if (!combination.ok()) return combination.status();
  config_.combination = combination.value();
  config_.contextual_weight = ConfigNumber(
      bundle.config, "contextual_weight", config_.contextual_weight);

  ModelBundle vbm_bundle;
  vbm_bundle.detector = "VBM";
  vbm_bundle.config = bundle.config.at("vbm");
  vbm_bundle.params.assign(bundle.params.begin(),
                           bundle.params.begin() + vbm_params);
  VGOD_RETURN_IF_ERROR(vbm_.RestoreFromBundle(vbm_bundle));
  config_.vbm = vbm_.config();

  ModelBundle arm_bundle;
  arm_bundle.detector = "ARM";
  arm_bundle.config = bundle.config.at("arm");
  arm_bundle.params.assign(bundle.params.begin() + vbm_params,
                           bundle.params.end());
  VGOD_RETURN_IF_ERROR(arm_.RestoreFromBundle(arm_bundle));
  config_.arm = arm_.config();
  return Status::Ok();
}

}  // namespace vgod::detectors
