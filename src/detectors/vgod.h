#ifndef VGOD_DETECTORS_VGOD_H_
#define VGOD_DETECTORS_VGOD_H_

#include <memory>

#include "detectors/arm.h"
#include "detectors/detector.h"
#include "detectors/vbm.h"

namespace vgod::detectors {

/// How the structural and contextual scores are merged (paper Eq. 19 and
/// the Appendix A ablation).
enum class ScoreCombination {
  kMeanStd,     // Eq. 19: z-score both, then sum (the paper's choice).
  kSumToUnit,   // Eq. 23: divide by the score total, then sum.
  kWeighted,    // Raw weighted sum without normalization.
  kRank,        // Extension: fractional-rank normalize both, then sum.
};

const char* ScoreCombinationName(ScoreCombination combination);

/// Inverse of ScoreCombinationName (used by bundle configs and the CLI).
Result<ScoreCombination> ParseScoreCombination(const std::string& name);

/// Configuration of the full VGOD framework (paper Fig 4).
struct VgodConfig {
  VbmConfig vbm;
  ArmConfig arm;
  ScoreCombination combination = ScoreCombination::kMeanStd;
  /// Weight on the contextual score for kWeighted.
  double contextual_weight = 1.0;
};

/// Variance-based Graph Outlier Detection: a VBM for structural outliers
/// and an ARM for contextual outliers, trained *separately* (to avoid the
/// unbalanced optimization of jointly trained baselines, paper §V-C) and
/// combined by score normalization at inference.
class Vgod : public OutlierDetector {
 public:
  explicit Vgod(VgodConfig config = {});

  std::string name() const override { return "VGOD"; }
  Status Fit(const AttributedGraph& graph) override;
  DetectorOutput Score(const AttributedGraph& graph) const override;

  const Vbm& vbm() const { return vbm_; }
  const Arm& arm() const { return arm_; }
  const VgodConfig& config() const { return config_; }

  /// Persists both trained component models as <path>.vbm and <path>.arm.
  Status Save(const std::string& path) const;

  /// Restores a framework saved by Save(); configs must match.
  Status Load(const std::string& path);

  /// Bundle persistence (bundle.h): one bundle holds both component models
  /// (VBM parameters first, then ARM) plus the combination rule, so a
  /// single artifact restores the whole framework.
  bool supports_bundles() const override { return true; }
  Result<ModelBundle> ExportBundle() const override;
  Status RestoreFromBundle(const ModelBundle& bundle) override;

  /// Both components train on the same attribute schema; the VBM's is
  /// authoritative.
  int expected_attribute_dim() const override {
    return vbm_.expected_attribute_dim();
  }

 private:
  VgodConfig config_;
  Vbm vbm_;
  Arm arm_;
};

}  // namespace vgod::detectors

#endif  // VGOD_DETECTORS_VGOD_H_
