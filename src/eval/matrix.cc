#include "eval/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <numeric>

#include "core/check.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "datasets/registry.h"
#include "detectors/registry.h"
#include "eval/metrics.h"
#include "injection/injection.h"
#include "obs/json.h"
#include "obs/memory.h"

namespace vgod::eval {
namespace {

/// Structural-outlier fraction implied by paper Table I (half the total
/// outlier budget; the other half is contextual). The per-dataset
/// variations in bench_common::StandardParams stay within a few tenths of
/// a percent of this, so the matrix uses one fraction and lets a spec pin
/// num_cliques explicitly when the distinction matters.
constexpr double kStructuralFraction = 0.0275;

int AutoNumCliques(int num_nodes, int clique_size) {
  return std::max(
      1, static_cast<int>(num_nodes * kStructuralFraction / clique_size +
                          0.5));
}

/// One (dataset, regime, seed) case: the injected graph plus ground truth,
/// built once and shared by every detector cell that scores it. A non-OK
/// status fails all of the case's cells with the same message.
struct PreparedCase {
  Status status = Status::Ok();
  AttributedGraph graph;
  std::vector<uint8_t> labels;
  bool self_loop = false;
  bool row_normalize = false;
};

PreparedCase BuildCase(const MatrixSpec& spec, const std::string& dataset_name,
                       const std::string& regime, int regime_index,
                       uint64_t seed) {
  PreparedCase prepared;
  Result<datasets::Dataset> dataset =
      datasets::MakeDataset(dataset_name, spec.scale, seed);
  if (!dataset.ok()) {
    prepared.status = dataset.status();
    return prepared;
  }
  // Paper §VI-B2 per-dataset model settings (mirrors bench_common's
  // MakeUnodCase policy: self loops everywhere but flickr, row
  // normalization on weibo).
  prepared.self_loop = dataset_name != "flickr";
  prepared.row_normalize = dataset_name == "weibo";

  if (regime == "none") {
    if (!dataset.value().has_labeled_outliers) {
      prepared.status = Status::FailedPrecondition(
          "regime \"none\" needs a dataset with its own outlier labels; " +
          dataset_name + " has none");
      return prepared;
    }
    prepared.graph = std::move(dataset.value().graph);
    prepared.labels = prepared.graph.outlier_labels();
    return prepared;
  }

  const AttributedGraph& base = dataset.value().graph;
  const int q = spec.clique_size;
  const int p = spec.num_cliques > 0 ? spec.num_cliques
                                     : AutoNumCliques(base.num_nodes(), q);
  const int m = spec.joint_degree > 0 ? spec.joint_degree : q;
  // Decorrelate regimes without decoupling them from the cell seed: the
  // 0x1217 tweak matches bench_common, the regime index picks the stream.
  Rng rng(seed ^ 0x1217 ^
          (static_cast<uint64_t>(regime_index + 1) * 0x9e3779b97f4a7c15ULL));

  Result<injection::InjectionResult> injected =
      Status::Internal("unhandled regime " + regime);
  if (regime == "structural") {
    injected = injection::InjectStructuralOutliers(base, p, q, &rng);
  } else if (regime == "contextual") {
    injected = injection::InjectContextualOutliers(
        base, p * q, spec.candidate_set, injection::DistanceKind::kEuclidean,
        &rng);
  } else if (regime == "joint-structural") {
    injected = injection::InjectJointStructuralOutliers(base, p * q, m, &rng);
  } else if (regime == "standard") {
    injected =
        injection::InjectStandard(base, p, q, spec.candidate_set, &rng);
  }
  if (!injected.ok()) {
    prepared.status = injected.status();
    return prepared;
  }
  prepared.graph = std::move(injected.value().graph);
  prepared.labels = std::move(injected.value().combined);
  return prepared;
}

/// Executes one cell against its prepared case. Never aborts on detector
/// failure: every fallible step folds into status "failed".
CellResult RunCell(const MatrixSpec& spec, const PreparedCase& prepared,
                   CellResult cell) {
  if (!prepared.status.ok()) {
    cell.status = "failed";
    cell.error = prepared.status.ToString();
    return cell;
  }
  Stopwatch watch;
  obs::BeginThreadMemoryWindow();

  detectors::DetectorOptions options;
  options.seed = cell.seed;
  options.self_loop = prepared.self_loop;
  options.row_normalize_attributes = prepared.row_normalize;
  options.epoch_scale = spec.epoch_scale;
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetector(cell.detector, options);
  if (!detector.ok()) {
    cell.status = "failed";
    cell.error = detector.status().ToString();
    return cell;
  }

  const Status fit = detector.value()->Fit(prepared.graph);
  cell.train_seconds = detector.value()->train_stats().train_seconds;
  if (!fit.ok()) {
    cell.status = "failed";
    cell.error = fit.ToString();
    cell.wall_seconds = watch.ElapsedSeconds();
    return cell;
  }
  if (spec.cell_timeout_seconds > 0.0 &&
      watch.ElapsedSeconds() > spec.cell_timeout_seconds) {
    cell.status = "timeout";
    cell.error = "cell exceeded " + std::to_string(spec.cell_timeout_seconds) +
                 "s budget after Fit";
    cell.wall_seconds = watch.ElapsedSeconds();
    return cell;
  }

  const detectors::DetectorOutput out = detector.value()->Score(prepared.graph);
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.peak_tensor_bytes = obs::ThreadMemoryWindowPeak();
  if (spec.cell_timeout_seconds > 0.0 &&
      cell.wall_seconds > spec.cell_timeout_seconds) {
    cell.status = "timeout";
    cell.error = "cell exceeded " + std::to_string(spec.cell_timeout_seconds) +
                 "s budget after Score";
    return cell;
  }

  const Result<double> auc = TryAuc(out.score, prepared.labels);
  if (!auc.ok()) {
    cell.status = "failed";
    cell.error = auc.status().ToString();
    return cell;
  }
  const Result<double> ap = TryAveragePrecision(out.score, prepared.labels);
  if (!ap.ok()) {
    cell.status = "failed";
    cell.error = ap.status().ToString();
    return cell;
  }
  cell.auc = auc.value();
  cell.ap = ap.value();
  return cell;
}

void AppendCellJson(std::string* out, const CellResult& cell,
                    bool include_timing) {
  *out += "{\"detector\":";
  obs::AppendJsonString(out, cell.detector);
  *out += ",\"dataset\":";
  obs::AppendJsonString(out, cell.dataset);
  *out += ",\"regime\":";
  obs::AppendJsonString(out, cell.regime);
  *out += ",\"seed\":";
  obs::AppendJsonNumber(out, static_cast<double>(cell.seed));
  *out += ",\"status\":";
  obs::AppendJsonString(out, cell.status);
  if (cell.status == "ok") {
    *out += ",\"auc\":";
    obs::AppendJsonNumber(out, cell.auc);
    *out += ",\"ap\":";
    obs::AppendJsonNumber(out, cell.ap);
  } else {
    *out += ",\"error\":";
    obs::AppendJsonString(out, cell.error);
  }
  if (include_timing) {
    *out += ",\"wall_seconds\":";
    obs::AppendJsonNumber(out, cell.wall_seconds);
    *out += ",\"train_seconds\":";
    obs::AppendJsonNumber(out, cell.train_seconds);
    *out += ",\"peak_tensor_bytes\":";
    obs::AppendJsonNumber(out, static_cast<double>(cell.peak_tensor_bytes));
  }
  *out += "}";
}

void AppendStringArray(std::string* out, const std::vector<std::string>& v) {
  *out += "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ",";
    obs::AppendJsonString(out, v[i]);
  }
  *out += "]";
}

/// mean±std over `values`; population std to match MeanStdNormalize.
std::pair<double, double> MeanStd(const std::vector<double>& values) {
  if (values.empty()) return {0.0, 0.0};
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  double variance = 0.0;
  for (double v : values) variance += (v - mean) * (v - mean);
  return {mean, std::sqrt(variance / values.size())};
}

Result<std::vector<std::string>> ParseStringArray(const obs::JsonValue& value,
                                                  const std::string& key) {
  if (!value.is_array()) {
    return Status::InvalidArgument("spec." + key + " must be an array");
  }
  std::vector<std::string> out;
  for (const obs::JsonValue& item : value.array()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("spec." + key +
                                     " must hold only strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

}  // namespace

const std::vector<std::string>& KnownRegimes() {
  static const std::vector<std::string>* regimes = new std::vector<std::string>{
      "contextual", "structural", "joint-structural", "standard", "none"};
  return *regimes;
}

Status MatrixSpec::Validate() const {
  if (detectors.empty()) {
    return Status::InvalidArgument("spec.detectors is empty");
  }
  if (datasets.empty()) {
    return Status::InvalidArgument("spec.datasets is empty");
  }
  if (regimes.empty()) return Status::InvalidArgument("spec.regimes is empty");
  if (seeds.empty()) return Status::InvalidArgument("spec.seeds is empty");
  const std::vector<std::string>& known = KnownRegimes();
  for (const std::string& regime : regimes) {
    if (std::find(known.begin(), known.end(), regime) == known.end()) {
      return Status::InvalidArgument("unknown regime: " + regime);
    }
  }
  if (!(scale > 0.0)) {
    return Status::InvalidArgument("spec.scale must be > 0");
  }
  if (!(epoch_scale > 0.0)) {
    return Status::InvalidArgument("spec.epoch_scale must be > 0");
  }
  if (cell_timeout_seconds < 0.0 || !std::isfinite(cell_timeout_seconds)) {
    return Status::InvalidArgument(
        "spec.cell_timeout_seconds must be finite and >= 0");
  }
  if (clique_size < 2) {
    return Status::InvalidArgument("spec.injection.clique_size must be >= 2");
  }
  if (num_cliques < 0 || candidate_set <= 0 || joint_degree < 0) {
    return Status::InvalidArgument(
        "spec.injection counts must be non-negative (candidate_set > 0)");
  }
  return Status::Ok();
}

Result<MatrixSpec> MatrixSpec::FromJson(const std::string& text) {
  Result<obs::JsonValue> doc = obs::ParseJson(text);
  if (!doc.ok()) return doc.status();
  if (!doc.value().is_object()) {
    return Status::InvalidArgument("matrix spec must be a JSON object");
  }
  MatrixSpec spec;
  for (const auto& [key, value] : doc.value().object()) {
    if (key == "detectors" || key == "datasets" || key == "regimes") {
      Result<std::vector<std::string>> parsed = ParseStringArray(value, key);
      if (!parsed.ok()) return parsed.status();
      if (key == "detectors") spec.detectors = std::move(parsed).value();
      if (key == "datasets") spec.datasets = std::move(parsed).value();
      if (key == "regimes") spec.regimes = std::move(parsed).value();
    } else if (key == "seeds") {
      if (!value.is_array()) {
        return Status::InvalidArgument("spec.seeds must be an array");
      }
      for (const obs::JsonValue& item : value.array()) {
        if (!item.is_number() || item.number() < 0) {
          return Status::InvalidArgument(
              "spec.seeds must hold non-negative numbers");
        }
        spec.seeds.push_back(static_cast<uint64_t>(item.number()));
      }
    } else if (key == "scale") {
      if (!value.is_number()) {
        return Status::InvalidArgument("spec.scale must be a number");
      }
      spec.scale = value.number();
    } else if (key == "epoch_scale") {
      if (!value.is_number()) {
        return Status::InvalidArgument("spec.epoch_scale must be a number");
      }
      spec.epoch_scale = value.number();
    } else if (key == "cell_timeout_seconds") {
      if (!value.is_number()) {
        return Status::InvalidArgument(
            "spec.cell_timeout_seconds must be a number");
      }
      spec.cell_timeout_seconds = value.number();
    } else if (key == "injection") {
      if (!value.is_object()) {
        return Status::InvalidArgument("spec.injection must be an object");
      }
      for (const auto& [ikey, ivalue] : value.object()) {
        if (!ivalue.is_number()) {
          return Status::InvalidArgument("spec.injection." + ikey +
                                         " must be a number");
        }
        const int number = static_cast<int>(ivalue.number());
        if (ikey == "clique_size") {
          spec.clique_size = number;
        } else if (ikey == "num_cliques") {
          spec.num_cliques = number;
        } else if (ikey == "candidate_set") {
          spec.candidate_set = number;
        } else if (ikey == "joint_degree") {
          spec.joint_degree = number;
        } else {
          return Status::InvalidArgument("unknown spec key: injection." +
                                         ikey);
        }
      }
    } else {
      return Status::InvalidArgument("unknown spec key: " + key);
    }
  }
  VGOD_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

std::string MatrixSpec::ToJson() const {
  std::string out = "{\"detectors\":";
  AppendStringArray(&out, detectors);
  out += ",\"datasets\":";
  AppendStringArray(&out, datasets);
  out += ",\"regimes\":";
  AppendStringArray(&out, regimes);
  out += ",\"seeds\":[";
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (i > 0) out += ",";
    obs::AppendJsonNumber(&out, static_cast<double>(seeds[i]));
  }
  out += "],\"scale\":";
  obs::AppendJsonNumber(&out, scale);
  out += ",\"epoch_scale\":";
  obs::AppendJsonNumber(&out, epoch_scale);
  out += ",\"cell_timeout_seconds\":";
  obs::AppendJsonNumber(&out, cell_timeout_seconds);
  out += ",\"injection\":{\"clique_size\":";
  obs::AppendJsonNumber(&out, clique_size);
  out += ",\"num_cliques\":";
  obs::AppendJsonNumber(&out, num_cliques);
  out += ",\"candidate_set\":";
  obs::AppendJsonNumber(&out, candidate_set);
  out += ",\"joint_degree\":";
  obs::AppendJsonNumber(&out, joint_degree);
  out += "}}";
  return out;
}

Leaderboard RunMatrix(const MatrixSpec& spec, const CellObserver& observer) {
  const Status valid = spec.Validate();
  VGOD_CHECK(valid.ok()) << valid.ToString();

  // Cells in (dataset, regime, detector, seed) spec order — the canonical
  // leaderboard order. Each (dataset, regime, seed) case is shared by the
  // detector cells that score it and freed when the last one finishes.
  struct CaseSlot {
    std::once_flag once;
    std::shared_ptr<const PreparedCase> prepared;
    std::atomic<int64_t> remaining{0};
  };
  struct CellPlan {
    int64_t case_index;
    int regime_index;
    CellResult cell;
  };
  const int64_t num_cases = static_cast<int64_t>(spec.datasets.size()) *
                            spec.regimes.size() * spec.seeds.size();
  std::vector<CaseSlot> slots(num_cases);
  std::vector<CellPlan> plan;
  plan.reserve(spec.NumCells());
  for (size_t d = 0; d < spec.datasets.size(); ++d) {
    for (size_t r = 0; r < spec.regimes.size(); ++r) {
      for (const std::string& detector : spec.detectors) {
        for (size_t s = 0; s < spec.seeds.size(); ++s) {
          CellPlan entry;
          entry.case_index =
              (static_cast<int64_t>(d) * spec.regimes.size() + r) *
                  spec.seeds.size() +
              s;
          entry.regime_index = static_cast<int>(r);
          entry.cell.detector = detector;
          entry.cell.dataset = spec.datasets[d];
          entry.cell.regime = spec.regimes[r];
          entry.cell.seed = spec.seeds[s];
          plan.push_back(std::move(entry));
          slots[plan.back().case_index].remaining.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    }
  }

  Leaderboard board;
  board.spec = spec;
  board.cells.resize(plan.size());
  std::mutex observer_mutex;
  int64_t done = 0;
  par::ParallelFor(0, static_cast<int64_t>(plan.size()), 1,
                   [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      CellPlan& entry = plan[i];
      CaseSlot& slot = slots[entry.case_index];
      std::call_once(slot.once, [&] {
        slot.prepared = std::make_shared<const PreparedCase>(
            BuildCase(spec, entry.cell.dataset, entry.cell.regime,
                      entry.regime_index, entry.cell.seed));
      });
      // Keep the case alive for the duration of this cell; the last cell
      // of a case drops the slot's reference so the graph is freed before
      // the whole matrix finishes.
      std::shared_ptr<const PreparedCase> prepared = slot.prepared;
      board.cells[i] = RunCell(spec, *prepared, std::move(entry.cell));
      if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        slot.prepared.reset();
      }
      if (observer) {
        std::lock_guard<std::mutex> lock(observer_mutex);
        observer(board.cells[i], ++done, static_cast<int64_t>(plan.size()));
      }
    }
  });
  return board;
}

std::vector<CellSummary> Leaderboard::Summaries() const {
  // Aggregate seeds per (dataset, regime, detector) in cell order, which
  // is already grouped that way.
  std::vector<CellSummary> summaries;
  for (size_t d = 0; d < spec.datasets.size(); ++d) {
    for (size_t r = 0; r < spec.regimes.size(); ++r) {
      const size_t block_start = summaries.size();
      for (size_t m = 0; m < spec.detectors.size(); ++m) {
        CellSummary summary;
        summary.detector = spec.detectors[m];
        summary.dataset = spec.datasets[d];
        summary.regime = spec.regimes[r];
        std::vector<double> aucs, aps;
        for (size_t s = 0; s < spec.seeds.size(); ++s) {
          const size_t index =
              ((d * spec.regimes.size() + r) * spec.detectors.size() + m) *
                  spec.seeds.size() +
              s;
          const CellResult& cell = cells[index];
          if (cell.status == "ok") {
            aucs.push_back(cell.auc);
            aps.push_back(cell.ap);
          } else {
            ++summary.seeds_failed;
          }
        }
        summary.seeds_ok = static_cast<int>(aucs.size());
        std::tie(summary.auc_mean, summary.auc_std) = MeanStd(aucs);
        std::tie(summary.ap_mean, summary.ap_std) = MeanStd(aps);
        summaries.push_back(std::move(summary));
      }
      // Rank the (dataset, regime) block: best mean AUC first, name as the
      // deterministic tie break, fully-failed detectors unranked (0).
      std::vector<CellSummary*> block;
      for (size_t i = block_start; i < summaries.size(); ++i) {
        if (summaries[i].seeds_ok > 0) block.push_back(&summaries[i]);
      }
      std::sort(block.begin(), block.end(),
                [](const CellSummary* a, const CellSummary* b) {
        if (a->auc_mean != b->auc_mean) return a->auc_mean > b->auc_mean;
        return a->detector < b->detector;
      });
      for (size_t i = 0; i < block.size(); ++i) {
        block[i]->rank = static_cast<int>(i) + 1;
      }
    }
  }
  return summaries;
}

std::vector<std::pair<std::string, std::vector<RegimeRank>>>
Leaderboard::RegimeRanks() const {
  std::vector<std::pair<std::string, std::vector<RegimeRank>>> out;
  for (size_t r = 0; r < spec.regimes.size(); ++r) {
    std::vector<RegimeRank> ranks;
    for (size_t m = 0; m < spec.detectors.size(); ++m) {
      RegimeRank rank;
      rank.detector = spec.detectors[m];
      double total = 0.0;
      for (size_t d = 0; d < spec.datasets.size(); ++d) {
        for (size_t s = 0; s < spec.seeds.size(); ++s) {
          const size_t index =
              ((d * spec.regimes.size() + r) * spec.detectors.size() + m) *
                  spec.seeds.size() +
              s;
          if (cells[index].status == "ok") {
            total += cells[index].auc;
            ++rank.cells_ok;
          }
        }
      }
      if (rank.cells_ok > 0) rank.auc_mean = total / rank.cells_ok;
      ranks.push_back(std::move(rank));
    }
    std::vector<RegimeRank*> ranked;
    for (RegimeRank& rank : ranks) {
      if (rank.cells_ok > 0) ranked.push_back(&rank);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RegimeRank* a, const RegimeRank* b) {
      if (a->auc_mean != b->auc_mean) return a->auc_mean > b->auc_mean;
      return a->detector < b->detector;
    });
    for (size_t i = 0; i < ranked.size(); ++i) {
      ranked[i]->rank = static_cast<int>(i) + 1;
    }
    out.emplace_back(spec.regimes[r], std::move(ranks));
  }
  return out;
}

std::string Leaderboard::ToJson(bool include_timing) const {
  std::string out = "{\"schema_version\":1,\"timing_included\":";
  out += include_timing ? "true" : "false";
  out += ",\"spec\":";
  out += spec.ToJson();
  out += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ",";
    AppendCellJson(&out, cells[i], include_timing);
  }
  out += "],\"summary\":[";
  const std::vector<CellSummary> summaries = Summaries();
  for (size_t i = 0; i < summaries.size(); ++i) {
    const CellSummary& summary = summaries[i];
    if (i > 0) out += ",";
    out += "{\"detector\":";
    obs::AppendJsonString(&out, summary.detector);
    out += ",\"dataset\":";
    obs::AppendJsonString(&out, summary.dataset);
    out += ",\"regime\":";
    obs::AppendJsonString(&out, summary.regime);
    out += ",\"seeds_ok\":";
    obs::AppendJsonNumber(&out, summary.seeds_ok);
    out += ",\"seeds_failed\":";
    obs::AppendJsonNumber(&out, summary.seeds_failed);
    out += ",\"auc_mean\":";
    obs::AppendJsonNumber(&out, summary.auc_mean);
    out += ",\"auc_std\":";
    obs::AppendJsonNumber(&out, summary.auc_std);
    out += ",\"ap_mean\":";
    obs::AppendJsonNumber(&out, summary.ap_mean);
    out += ",\"ap_std\":";
    obs::AppendJsonNumber(&out, summary.ap_std);
    out += ",\"rank\":";
    obs::AppendJsonNumber(&out, summary.rank);
    out += "}";
  }
  out += "],\"ranks\":{";
  const auto regime_ranks = RegimeRanks();
  for (size_t r = 0; r < regime_ranks.size(); ++r) {
    if (r > 0) out += ",";
    obs::AppendJsonString(&out, regime_ranks[r].first);
    out += ":[";
    for (size_t i = 0; i < regime_ranks[r].second.size(); ++i) {
      const RegimeRank& rank = regime_ranks[r].second[i];
      if (i > 0) out += ",";
      out += "{\"detector\":";
      obs::AppendJsonString(&out, rank.detector);
      out += ",\"cells_ok\":";
      obs::AppendJsonNumber(&out, rank.cells_ok);
      out += ",\"auc_mean\":";
      obs::AppendJsonNumber(&out, rank.auc_mean);
      out += ",\"rank\":";
      obs::AppendJsonNumber(&out, rank.rank);
      out += "}";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

std::string Leaderboard::ToMarkdown() const {
  char buffer[64];
  const std::vector<CellSummary> summaries = Summaries();
  const auto regime_ranks = RegimeRanks();
  std::string out = "# Benchmark matrix leaderboard\n";
  for (size_t r = 0; r < spec.regimes.size(); ++r) {
    out += "\n## Regime: " + spec.regimes[r] + "\n\n| Detector |";
    for (const std::string& dataset : spec.datasets) {
      out += " " + dataset + " |";
    }
    out += " Regime AUC | Rank |\n|---|";
    for (size_t d = 0; d < spec.datasets.size(); ++d) out += "---|";
    out += "---|---|\n";
    for (size_t m = 0; m < spec.detectors.size(); ++m) {
      out += "| " + spec.detectors[m] + " |";
      for (size_t d = 0; d < spec.datasets.size(); ++d) {
        // summaries are ordered (dataset, regime, detector).
        const CellSummary& summary =
            summaries[(d * spec.regimes.size() + r) * spec.detectors.size() +
                      m];
        if (summary.seeds_ok == 0) {
          out += " failed |";
        } else {
          std::snprintf(buffer, sizeof(buffer), " %.4f±%.4f (%d) |",
                        summary.auc_mean, summary.auc_std, summary.rank);
          out += buffer;
        }
      }
      const RegimeRank& rank = regime_ranks[r].second[m];
      if (rank.cells_ok == 0) {
        out += " failed | - |\n";
      } else {
        std::snprintf(buffer, sizeof(buffer), " %.4f | %d |\n", rank.auc_mean,
                      rank.rank);
        out += buffer;
      }
    }
  }
  return out;
}

}  // namespace vgod::eval
