#ifndef VGOD_EVAL_MATRIX_H_
#define VGOD_EVAL_MATRIX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::eval {

// BOND-style benchmark matrix (docs/BENCHMARKS.md): one declarative spec
// enumerates (detector x dataset x injection regime x seed) cells, the
// runner executes every cell with per-cell failure isolation, and the
// result is a single deterministic leaderboard artifact that the
// check_matrix ctest gate (label `matrix`) validates against committed
// rank/AUC bands. Every new detector or dataset registered via
// detectors::RegisterDetector / datasets::RegisterDataset can ride the
// matrix by name with no new harness code.

/// Injection regimes accepted in MatrixSpec::regimes, in canonical order:
/// "contextual" (attribute replacement, paper §IV-B1), "structural"
/// (clique injection, §IV-A1), "joint-structural" (FAGAD scattered-hub
/// wiring, injection.h), "standard" (the paper's combined UNOD protocol),
/// and "none" (score the dataset's own outlier labels; the dataset must
/// carry them).
const std::vector<std::string>& KnownRegimes();

/// Declarative description of one benchmark matrix. Parsed from JSON:
///   {"detectors": ["VGOD", ...], "datasets": ["cora", ...],
///    "regimes": ["contextual", "structural", "joint-structural"],
///    "seeds": [7, 8, 9], "scale": 0.05, "epoch_scale": 0.05,
///    "cell_timeout_seconds": 0,
///    "injection": {"clique_size": 5, "num_cliques": 0,
///                  "candidate_set": 20, "joint_degree": 0}}
/// Unknown keys are rejected so a typoed spec fails loudly.
struct MatrixSpec {
  std::vector<std::string> detectors;
  std::vector<std::string> datasets;
  std::vector<std::string> regimes;
  std::vector<uint64_t> seeds;
  /// Dataset node-count multiplier and detector epoch multiplier, exactly
  /// the VGOD_BENCH_SCALE / VGOD_BENCH_EPOCH_SCALE semantics.
  double scale = 1.0;
  double epoch_scale = 1.0;
  /// Cooperative per-cell wall-clock budget. Checked between the Fit and
  /// Score phases (training cannot be preempted mid-epoch); a cell over
  /// budget records status "timeout" and no metrics. 0 disables.
  double cell_timeout_seconds = 0.0;
  /// Injection sizing. num_cliques == 0 derives p from the paper's Table I
  /// structural-outlier fraction (~2.75% of nodes / clique_size);
  /// joint_degree == 0 defaults to clique_size. The contextual and
  /// joint-structural regimes inject num_cliques * clique_size victims so
  /// every regime carries a comparable outlier budget.
  int clique_size = 15;
  int num_cliques = 0;
  int candidate_set = 50;
  int joint_degree = 0;

  /// Parses and validates a spec document. Errors on malformed JSON,
  /// unknown keys, unknown regimes, empty detector/dataset/regime/seed
  /// lists, and out-of-range numeric fields.
  static Result<MatrixSpec> FromJson(const std::string& text);

  /// Deterministic re-serialization (embedded in the leaderboard so an
  /// artifact is self-describing).
  std::string ToJson() const;

  /// The validation half of FromJson, callable on a hand-built spec.
  Status Validate() const;

  int64_t NumCells() const {
    return static_cast<int64_t>(detectors.size()) * datasets.size() *
           regimes.size() * seeds.size();
  }
};

/// Outcome of one (detector, dataset, regime, seed) cell. `status` is
/// "ok", "failed" (MakeDetector/Fit/metric error — message in `error`), or
/// "timeout"; metrics are only meaningful when "ok". Wall/peak-memory come
/// from the cell's thread allocation window (obs/memory.h).
struct CellResult {
  std::string detector;
  std::string dataset;
  std::string regime;
  uint64_t seed = 0;
  std::string status = "ok";
  std::string error;
  double auc = 0.0;
  double ap = 0.0;
  double wall_seconds = 0.0;
  double train_seconds = 0.0;
  int64_t peak_tensor_bytes = 0;
};

/// Per-(detector, dataset, regime) aggregate over seeds. `rank` orders
/// detectors within the (dataset, regime) block by auc_mean descending
/// (1 = best, ties broken by detector name); 0 when every seed failed.
struct CellSummary {
  std::string detector;
  std::string dataset;
  std::string regime;
  int seeds_ok = 0;
  int seeds_failed = 0;
  double auc_mean = 0.0;
  double auc_std = 0.0;
  double ap_mean = 0.0;
  double ap_std = 0.0;
  int rank = 0;
};

/// Per-regime detector ranking: auc averaged over every ok cell of the
/// regime (all datasets, all seeds), rank 1 = best.
struct RegimeRank {
  std::string detector;
  int cells_ok = 0;
  double auc_mean = 0.0;
  int rank = 0;
};

/// The complete result artifact. Cells are sorted by (dataset, regime,
/// detector, seed) and all derived tables use that order, so two runs of
/// the same spec produce byte-identical ToJson(false) output at any
/// thread count (docs/PARALLELISM.md determinism contract). Timing and
/// memory fields are machine-dependent; ToJson(true) includes them and
/// consumers schema-validate rather than byte-compare.
struct Leaderboard {
  MatrixSpec spec;
  std::vector<CellResult> cells;

  std::vector<CellSummary> Summaries() const;
  std::vector<std::pair<std::string, std::vector<RegimeRank>>> RegimeRanks()
      const;

  /// {"schema_version":1,"spec":{...},"timing_included":bool,
  ///  "cells":[...],"summary":[...],"ranks":{regime:[...]}}
  std::string ToJson(bool include_timing = true) const;

  /// One markdown table per regime (detectors x datasets, "mean±std (rank)"
  /// cells plus a regime-rank column) — the human-facing leaderboard.
  std::string ToMarkdown() const;
};

/// Progress callback: invoked once per finished cell with (result, number
/// of cells finished so far, total cells). Called under a lock; keep it
/// cheap. May be null.
using CellObserver =
    std::function<void(const CellResult&, int64_t done, int64_t total)>;

/// Executes every cell of `spec` on the vgod::par pool (cells are
/// independent; grain 1). Each (dataset, regime, seed) case graph is built
/// once, shared by the detectors that score it, and released as soon as
/// its last cell finishes. A cell whose detector construction, Fit, or
/// metric computation fails records status "failed" with the Status
/// message instead of aborting the run; a dataset/injection failure fails
/// all cells of that case the same way. The spec must Validate() — the
/// runner aborts on an invalid spec (parse via FromJson to get a Status).
Leaderboard RunMatrix(const MatrixSpec& spec,
                      const CellObserver& observer = nullptr);

}  // namespace vgod::eval

#endif  // VGOD_EVAL_MATRIX_H_
