#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace vgod::eval {

double Auc(const std::vector<double>& scores,
           const std::vector<uint8_t>& labels) {
  VGOD_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Sum of average ranks of positives (Mann-Whitney U).
  double positive_rank_sum = 0.0;
  int64_t num_positive = 0, num_negative = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i + 1) + j) / 2.0;
    for (size_t t = i; t < j; ++t) {
      if (labels[order[t]]) {
        positive_rank_sum += average_rank;
        ++num_positive;
      } else {
        ++num_negative;
      }
    }
    i = j;
  }
  VGOD_CHECK_GT(num_positive, 0) << "AUC needs at least one positive";
  VGOD_CHECK_GT(num_negative, 0) << "AUC needs at least one negative";
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) * (num_positive + 1) / 2.0;
  return u / (static_cast<double>(num_positive) * num_negative);
}

double AucSubset(const std::vector<double>& scores,
                 const std::vector<uint8_t>& all_outliers,
                 const std::vector<uint8_t>& subset) {
  VGOD_CHECK_EQ(scores.size(), all_outliers.size());
  VGOD_CHECK_EQ(scores.size(), subset.size());
  std::vector<double> kept_scores;
  std::vector<uint8_t> kept_labels;
  kept_scores.reserve(scores.size());
  kept_labels.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (subset[i]) {
      kept_scores.push_back(scores[i]);
      kept_labels.push_back(1);
    } else if (!all_outliers[i]) {
      kept_scores.push_back(scores[i]);
      kept_labels.push_back(0);
    }
  }
  return Auc(kept_scores, kept_labels);
}

double AucGap(double structural_auc, double contextual_auc) {
  VGOD_CHECK_GT(structural_auc, 0.0);
  VGOD_CHECK_GT(contextual_auc, 0.0);
  return std::max(structural_auc / contextual_auc,
                  contextual_auc / structural_auc);
}

std::vector<double> MeanStdNormalize(const std::vector<double>& scores) {
  VGOD_CHECK(!scores.empty());
  const double mean =
      std::accumulate(scores.begin(), scores.end(), 0.0) / scores.size();
  double variance = 0.0;
  for (double s : scores) variance += (s - mean) * (s - mean);
  const double stddev = std::sqrt(variance / scores.size());
  std::vector<double> out(scores.size());
  if (stddev <= 0.0) return out;  // Constant scores carry no signal.
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - mean) / stddev;
  }
  return out;
}

std::vector<double> SumToUnitNormalize(const std::vector<double>& scores) {
  VGOD_CHECK(!scores.empty());
  double total = 0.0;
  for (double s : scores) {
    VGOD_CHECK_GE(s, 0.0) << "sum-to-unit requires non-negative scores";
    total += s;
  }
  std::vector<double> out = scores;
  if (total <= 0.0) return out;
  for (double& s : out) s /= total;
  return out;
}

std::vector<double> RankNormalize(const std::vector<double>& scores) {
  VGOD_CHECK(!scores.empty());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> out(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i + 1) + j) / 2.0;
    for (size_t t = i; t < j; ++t) out[order[t]] = average_rank / n;
    i = j;
  }
  return out;
}

std::vector<double> CombineScores(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double weight) {
  VGOD_CHECK_EQ(a.size(), b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + weight * b[i];
  return out;
}

}  // namespace vgod::eval
