#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.h"

namespace vgod::eval {

Status NonFiniteCheck(const std::vector<double>& scores,
                      const std::string& context) {
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument(
          context + ": non-finite score " + std::to_string(scores[i]) +
          " at index " + std::to_string(i));
    }
  }
  return Status::Ok();
}

Result<double> TryAuc(const std::vector<double>& scores,
                      const std::vector<uint8_t>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument(
        "AUC needs one label per score: " + std::to_string(scores.size()) +
        " scores vs " + std::to_string(labels.size()) + " labels");
  }
  VGOD_RETURN_IF_ERROR(NonFiniteCheck(scores, "AUC"));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Sum of average ranks of positives (Mann-Whitney U).
  double positive_rank_sum = 0.0;
  int64_t num_positive = 0, num_negative = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i + 1) + j) / 2.0;
    for (size_t t = i; t < j; ++t) {
      if (labels[order[t]]) {
        positive_rank_sum += average_rank;
        ++num_positive;
      } else {
        ++num_negative;
      }
    }
    i = j;
  }
  if (num_positive == 0) {
    return Status::InvalidArgument("AUC needs at least one positive");
  }
  if (num_negative == 0) {
    return Status::InvalidArgument("AUC needs at least one negative");
  }
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) * (num_positive + 1) / 2.0;
  return u / (static_cast<double>(num_positive) * num_negative);
}

double Auc(const std::vector<double>& scores,
           const std::vector<uint8_t>& labels) {
  Result<double> auc = TryAuc(scores, labels);
  VGOD_CHECK(auc.ok()) << auc.status().message();
  return auc.value();
}

Result<double> TryAveragePrecision(const std::vector<double>& scores,
                                   const std::vector<uint8_t>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument(
        "AP needs one label per score: " + std::to_string(scores.size()) +
        " scores vs " + std::to_string(labels.size()) + " labels");
  }
  VGOD_RETURN_IF_ERROR(NonFiniteCheck(scores, "AP"));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Descending by score, ties broken by index: deterministic ranking.
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  double sum_precision = 0.0;
  int64_t positives_seen = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[order[k]]) {
      ++positives_seen;
      sum_precision += static_cast<double>(positives_seen) / (k + 1);
    }
  }
  if (positives_seen == 0) {
    return Status::InvalidArgument("AP needs at least one positive");
  }
  return sum_precision / positives_seen;
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<uint8_t>& labels) {
  Result<double> ap = TryAveragePrecision(scores, labels);
  VGOD_CHECK(ap.ok()) << ap.status().message();
  return ap.value();
}

double AucSubset(const std::vector<double>& scores,
                 const std::vector<uint8_t>& all_outliers,
                 const std::vector<uint8_t>& subset) {
  VGOD_CHECK_EQ(scores.size(), all_outliers.size());
  VGOD_CHECK_EQ(scores.size(), subset.size());
  std::vector<double> kept_scores;
  std::vector<uint8_t> kept_labels;
  kept_scores.reserve(scores.size());
  kept_labels.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (subset[i]) {
      kept_scores.push_back(scores[i]);
      kept_labels.push_back(1);
    } else if (!all_outliers[i]) {
      kept_scores.push_back(scores[i]);
      kept_labels.push_back(0);
    }
  }
  return Auc(kept_scores, kept_labels);
}

double AucGap(double structural_auc, double contextual_auc) {
  // Total over the whole domain (a degenerate AUC of exactly 0 is rare but
  // legitimate and must not kill a bench run): invalid inputs poison the
  // gap with NaN, a single zero AUC is infinitely unbalanced, and two zero
  // AUCs are (vacuously) balanced.
  if (!std::isfinite(structural_auc) || !std::isfinite(contextual_auc) ||
      structural_auc < 0.0 || contextual_auc < 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (structural_auc == 0.0 && contextual_auc == 0.0) return 1.0;
  if (structural_auc == 0.0 || contextual_auc == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(structural_auc / contextual_auc,
                  contextual_auc / structural_auc);
}

std::vector<double> MeanStdNormalize(const std::vector<double>& scores) {
  VGOD_CHECK(!scores.empty());
  const double mean =
      std::accumulate(scores.begin(), scores.end(), 0.0) / scores.size();
  double variance = 0.0;
  for (double s : scores) variance += (s - mean) * (s - mean);
  const double stddev = std::sqrt(variance / scores.size());
  std::vector<double> out(scores.size());
  if (stddev <= 0.0) return out;  // Constant scores carry no signal.
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - mean) / stddev;
  }
  return out;
}

std::vector<double> SumToUnitNormalize(const std::vector<double>& scores) {
  VGOD_CHECK(!scores.empty());
  double total = 0.0;
  for (double s : scores) {
    VGOD_CHECK_GE(s, 0.0) << "sum-to-unit requires non-negative scores";
    total += s;
  }
  std::vector<double> out = scores;
  if (total <= 0.0) return out;
  for (double& s : out) s /= total;
  return out;
}

Result<std::vector<double>> TryRankNormalize(
    const std::vector<double>& scores) {
  if (scores.empty()) {
    return Status::InvalidArgument("rank-normalize needs a non-empty vector");
  }
  VGOD_RETURN_IF_ERROR(NonFiniteCheck(scores, "rank-normalize"));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> out(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i + 1) + j) / 2.0;
    for (size_t t = i; t < j; ++t) out[order[t]] = average_rank / n;
    i = j;
  }
  return out;
}

std::vector<double> RankNormalize(const std::vector<double>& scores) {
  Result<std::vector<double>> ranked = TryRankNormalize(scores);
  VGOD_CHECK(ranked.ok()) << ranked.status().message();
  return std::move(ranked).value();
}

std::vector<double> CombineScores(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double weight) {
  VGOD_CHECK_EQ(a.size(), b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + weight * b[i];
  return out;
}

}  // namespace vgod::eval
