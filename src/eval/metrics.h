#ifndef VGOD_EVAL_METRICS_H_
#define VGOD_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::eval {

/// OK when every score is finite; InvalidArgument naming the first
/// offending index and value otherwise. Rank-based code here (Auc,
/// RankNormalize) sorts scores, and a NaN breaks std::sort's strict weak
/// ordering — undefined behavior — so callers holding untrusted or
/// detector-produced scores must gate on this (or use the Try* variants,
/// which do it for them). `context` prefixes the error message.
Status NonFiniteCheck(const std::vector<double>& scores,
                      const std::string& context);

/// Area under the ROC curve (paper Eq. 21) computed by the rank statistic;
/// tied scores contribute 0.5 per pair (average-rank handling). Requires at
/// least one positive (label 1) and one negative (label 0).
/// Aborts on non-finite scores, size mismatch, or a single-class label
/// vector — trusted-input convenience over TryAuc.
double Auc(const std::vector<double>& scores,
           const std::vector<uint8_t>& labels);

/// Auc for untrusted inputs: InvalidArgument on size mismatch, non-finite
/// scores, or labels lacking a positive or a negative; never aborts.
Result<double> TryAuc(const std::vector<double>& scores,
                      const std::vector<uint8_t>& labels);

/// Average precision (area under the precision-recall curve by the
/// step-function convention): mean of precision@k over the ranks k of the
/// positives, scores sorted descending. Tied scores are ordered by node
/// index so the value is deterministic, matching the benchmark-matrix
/// reproducibility contract (docs/BENCHMARKS.md). Aborts on bad input —
/// trusted-input convenience over TryAveragePrecision.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<uint8_t>& labels);

/// AveragePrecision for untrusted inputs: InvalidArgument on size
/// mismatch, non-finite scores, or labels without a positive.
Result<double> TryAveragePrecision(const std::vector<double>& scores,
                                   const std::vector<uint8_t>& labels);

/// The paper's AUC(V_L, O) (§VI-A3): AUC with positives = nodes marked in
/// `subset`, negatives = nodes that are normal under `all_outliers`
/// (outliers outside the subset are excluded from both sides).
double AucSubset(const std::vector<double>& scores,
                 const std::vector<uint8_t>& all_outliers,
                 const std::vector<uint8_t>& subset);

/// AucGap (paper Eq. 22): max of the two ratios of the per-type AUCs.
/// >= 1 for valid inputs; 1 means perfectly balanced detection. Total over
/// its domain so degenerate runs never kill a bench binary: both AUCs zero
/// -> 1.0 (equally absent detection is balanced), exactly one zero ->
/// +infinity (maximally unbalanced), any negative or non-finite input ->
/// quiet NaN.
double AucGap(double structural_auc, double contextual_auc);

/// Mean-std (z-score) normalization (paper Eq. 19). Constant score vectors
/// normalize to all-zeros.
std::vector<double> MeanStdNormalize(const std::vector<double>& scores);

/// Sum-to-unit normalization (paper Eq. 23). Scores must be >= 0; an
/// all-zero vector is returned unchanged.
std::vector<double> SumToUnitNormalize(const std::vector<double>& scores);

/// Fractional-rank normalization (extension beyond the paper's Appendix A
/// combiners): each score maps to its average rank divided by n, in
/// (0, 1]. Fully scale-free — immune to heavy-tailed score distributions
/// that stretch mean-std z-scores. Aborts on empty or non-finite input;
/// TryRankNormalize is the untrusted-input variant.
std::vector<double> RankNormalize(const std::vector<double>& scores);

/// RankNormalize for untrusted inputs: InvalidArgument on an empty vector
/// or non-finite scores; never aborts.
Result<std::vector<double>> TryRankNormalize(
    const std::vector<double>& scores);

/// Elementwise a + weight * b (the paper's score combinations: weight=1
/// after normalization for mean-std and sum-to-unit, or a raw fixed weight
/// for the "weighted" ablation of Table XIII).
std::vector<double> CombineScores(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double weight = 1.0);

}  // namespace vgod::eval

#endif  // VGOD_EVAL_METRICS_H_
