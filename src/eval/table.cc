#include "eval/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "core/check.h"

namespace vgod::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::AddCell(const std::string& text) {
  VGOD_CHECK(!rows_.empty()) << "AddRow() before AddCell()";
  rows_.back().push_back(text);
  return *this;
}

Table& Table::AddCell(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return AddCell(out.str());
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace vgod::eval
