#ifndef VGOD_EVAL_TABLE_H_
#define VGOD_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace vgod::eval {

/// Minimal aligned-column table printer shared by the bench binaries, so
/// every reproduced paper table renders the same way. Cells are strings;
/// numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Returns *this for chaining AddCell calls.
  Table& AddRow();
  Table& AddCell(const std::string& text);
  Table& AddCell(double value, int precision = 4);

  /// Renders with a separator line under the header.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vgod::eval

#endif  // VGOD_EVAL_TABLE_H_
