#include "gnn/graph_autograd.h"

#include <cmath>
#include <utility>

#include "graph/graph_ops.h"
#include "obs/metrics.h"
#include "tensor/kernels.h"

namespace vgod::ag {

using ::vgod::internal::AutogradNode;

Variable Spmm(std::shared_ptr<const AttributedGraph> graph,
              std::vector<float> edge_weights, const Variable& h) {
  VGOD_COUNTER_INC("gnn.spmm.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor out = graph_ops::Spmm(*graph, edge_weights, h.value());
  const int d = h.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), weights = std::move(edge_weights),
       d](AutogradNode& self) {
        // Backward of out[i] += w * h[j] is gh[j] += w * g[i].
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const auto& row_ptr = graph->row_ptr();
        const auto& col_idx = graph->col_idx();
        const float* g = self.grad.data();
        float* dst = gh.data();
        for (int i = 0; i < n; ++i) {
          const float* grow = g + static_cast<size_t>(i) * d;
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const float w = weights.empty() ? 1.0f : weights[e];
            float* hrow = dst + static_cast<size_t>(col_idx[e]) * d;
            for (int c = 0; c < d; ++c) hrow[c] += w * grow[c];
          }
        }
        self.inputs[0]->AccumulateGrad(gh);
      },
      "Spmm");
}

Variable NeighborMean(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& h) {
  VGOD_COUNTER_INC("gnn.neighbor_mean.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor out = graph_ops::NeighborMean(*graph, h.value());
  const int d = h.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), d](AutogradNode& self) {
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const auto& row_ptr = graph->row_ptr();
        const auto& col_idx = graph->col_idx();
        const float* g = self.grad.data();
        float* dst = gh.data();
        for (int i = 0; i < n; ++i) {
          const int deg = graph->Degree(i);
          if (deg == 0) continue;
          const float inv = 1.0f / static_cast<float>(deg);
          const float* grow = g + static_cast<size_t>(i) * d;
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            float* hrow = dst + static_cast<size_t>(col_idx[e]) * d;
            for (int c = 0; c < d; ++c) hrow[c] += inv * grow[c];
          }
        }
        self.inputs[0]->AccumulateGrad(gh);
      },
      "NeighborMean");
}

Variable NeighborVarianceScore(std::shared_ptr<const AttributedGraph> graph,
                               const Variable& h) {
  VGOD_COUNTER_INC("gnn.neighbor_variance.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor hv = h.value();
  Tensor mean = graph_ops::NeighborMean(*graph, hv);
  Tensor out = graph_ops::NeighborVarianceScore(*graph, hv);
  const int d = hv.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), hv, mean, d](AutogradNode& self) {
        // o_i = (1/|N_i|) sum_{j in N_i} ||h_j - mean_i||^2. The dependence
        // of mean_i on h_j folds into d o_i / d h_j = (2/|N_i|)(h_j - mean_i)
        // (the cross term through the mean cancels).
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const auto& row_ptr = graph->row_ptr();
        const auto& col_idx = graph->col_idx();
        const float* g = self.grad.data();
        const float* src = hv.data();
        const float* mu = mean.data();
        float* dst = gh.data();
        for (int i = 0; i < n; ++i) {
          const int deg = graph->Degree(i);
          if (deg == 0) continue;
          const float coeff = 2.0f * g[i] / static_cast<float>(deg);
          const float* mrow = mu + static_cast<size_t>(i) * d;
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const float* hrow = src + static_cast<size_t>(col_idx[e]) * d;
            float* grow = dst + static_cast<size_t>(col_idx[e]) * d;
            for (int c = 0; c < d; ++c) {
              grow[c] += coeff * (hrow[c] - mrow[c]);
            }
          }
        }
        self.inputs[0]->AccumulateGrad(gh);
      },
      "NeighborVarianceScore");
}

namespace {

/// Everything the GAT backward needs from the forward pass.
struct GatForwardState {
  std::vector<float> attention;  // alpha per CSR edge slot.
  std::vector<float> pre_activation;  // z = p_i + q_j per edge slot.
};

}  // namespace

Variable GatAggregate(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& s, const Variable& p, const Variable& q,
                      float negative_slope) {
  const int n = graph->num_nodes();
  const int d = s.cols();
  VGOD_COUNTER_INC("gnn.gat_aggregate.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  VGOD_CHECK_EQ(s.rows(), n);
  VGOD_CHECK_EQ(p.rows(), n);
  VGOD_CHECK_EQ(p.cols(), 1);
  VGOD_CHECK_EQ(q.rows(), n);
  VGOD_CHECK_EQ(q.cols(), 1);

  Tensor sv = s.value();
  const Tensor& pv = p.value();
  const Tensor& qv = q.value();
  const auto& row_ptr = graph->row_ptr();
  const auto& col_idx = graph->col_idx();

  auto state = std::make_shared<GatForwardState>();
  state->attention.resize(graph->num_directed_edges());
  state->pre_activation.resize(graph->num_directed_edges());

  Tensor out = Tensor::Zeros(n, d);
  for (int i = 0; i < n; ++i) {
    const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
    if (begin == end) continue;
    // Edge scores with a per-group max shift for a stable softmax.
    float max_score = -std::numeric_limits<float>::infinity();
    for (int64_t e = begin; e < end; ++e) {
      const float z = pv.At(i, 0) + qv.At(col_idx[e], 0);
      state->pre_activation[e] = z;
      const float activated = z > 0.0f ? z : negative_slope * z;
      state->attention[e] = activated;
      max_score = std::max(max_score, activated);
    }
    float denom = 0.0f;
    for (int64_t e = begin; e < end; ++e) {
      state->attention[e] = std::exp(state->attention[e] - max_score);
      denom += state->attention[e];
    }
    float* orow = out.data() + static_cast<size_t>(i) * d;
    for (int64_t e = begin; e < end; ++e) {
      state->attention[e] /= denom;
      const float alpha = state->attention[e];
      const float* srow = sv.data() + static_cast<size_t>(col_idx[e]) * d;
      for (int c = 0; c < d; ++c) orow[c] += alpha * srow[c];
    }
  }

  return Variable::FromOp(
      std::move(out), {s, p, q},
      [graph = std::move(graph), state, sv, negative_slope,
       d](AutogradNode& self) {
        const int num_nodes = graph->num_nodes();
        const auto& rows = graph->row_ptr();
        const auto& cols = graph->col_idx();
        const float* g = self.grad.data();
        const bool need_s = self.inputs[0]->requires_grad;
        const bool need_p = self.inputs[1]->requires_grad;
        const bool need_q = self.inputs[2]->requires_grad;
        Tensor gs = Tensor::Zeros(num_nodes, d);
        Tensor gp = Tensor::Zeros(num_nodes, 1);
        Tensor gq = Tensor::Zeros(num_nodes, 1);
        std::vector<float> dalpha(state->attention.size());
        for (int i = 0; i < num_nodes; ++i) {
          const int64_t begin = rows[i], end = rows[i + 1];
          if (begin == end) continue;
          const float* grow = g + static_cast<size_t>(i) * d;
          // d out_i / d alpha_ij = g_i . s_j; d out_i / d s_j = alpha g_i.
          double weighted_sum = 0.0;  // sum_k alpha_ik * dalpha_ik
          for (int64_t e = begin; e < end; ++e) {
            const float* srow =
                sv.data() + static_cast<size_t>(cols[e]) * d;
            double dot = 0.0;
            for (int c = 0; c < d; ++c) dot += grow[c] * srow[c];
            dalpha[e] = static_cast<float>(dot);
            weighted_sum += state->attention[e] * dot;
            if (need_s) {
              float* srcg = gs.data() + static_cast<size_t>(cols[e]) * d;
              const float alpha = state->attention[e];
              for (int c = 0; c < d; ++c) srcg[c] += alpha * grow[c];
            }
          }
          if (!need_p && !need_q) continue;
          for (int64_t e = begin; e < end; ++e) {
            // Softmax backward within group i, then LeakyReLU backward.
            const float de = state->attention[e] *
                             (dalpha[e] - static_cast<float>(weighted_sum));
            const float slope =
                state->pre_activation[e] > 0.0f ? 1.0f : negative_slope;
            const float dz = de * slope;
            if (need_p) gp.data()[i] += dz;
            if (need_q) gq.data()[cols[e]] += dz;
          }
        }
        if (need_s) self.inputs[0]->AccumulateGrad(gs);
        if (need_p) self.inputs[1]->AccumulateGrad(gp);
        if (need_q) self.inputs[2]->AccumulateGrad(gq);
      },
      "GatAggregate");
}

}  // namespace vgod::ag
