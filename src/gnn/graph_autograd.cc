#include "gnn/graph_autograd.h"

#include <cmath>
#include <utility>

#include "core/parallel.h"
#include "graph/graph_ops.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "tensor/kernels.h"

namespace vgod::ag {

using ::vgod::internal::AutogradNode;

namespace {

// Parallelism in this file follows the determinism contract of
// core/parallel.h. Forward passes are destination-row-parallel over the
// forward CSR (each output row is one serial iteration). Backward passes
// of the scatter form "gh[col(e)] += ..." are rewritten as gathers over
// the transpose CSR: each destination row accumulates its incoming edges
// in ascending forward-slot order — exactly the order the serial scatter
// used — so gradients are bit-identical for every thread count. A
// per-thread-scratch merge would instead group partial sums by thread,
// making the result depend on how many threads ran.

/// Node grain sized so a chunk covers ~16k scalar ops when each node costs
/// about `row_work`.
int64_t NodeGrain(int64_t row_work) {
  return std::max<int64_t>(1, (int64_t{1} << 14) /
                                  std::max<int64_t>(1, row_work));
}

int64_t AvgRowWork(const AttributedGraph& graph, int d) {
  const int n = graph.num_nodes();
  if (n == 0) return 1;
  return graph.num_directed_edges() * d / n;
}

}  // namespace

Variable Spmm(std::shared_ptr<const AttributedGraph> graph,
              std::vector<float> edge_weights, const Variable& h) {
  VGOD_COUNTER_INC("gnn.spmm.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor out = graph_ops::Spmm(*graph, edge_weights, h.value());
  const int d = h.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), weights = std::move(edge_weights),
       d](AutogradNode& self) {
        VGOD_PROFILE_SCOPE("gnn/spmm_backward");
        // Backward of out[i] += w * h[j] is gh[j] += w * g[i]: a scatter
        // over destinations j, executed as a transpose-CSR gather so each
        // gh row sums its contributions in forward-slot order.
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const graph_ops::CsrTranspose t =
            graph_ops::BuildCsrTranspose(*graph);
        const float* g = self.grad.data();
        float* dst = gh.data();
        par::ParallelFor(
            0, n, NodeGrain(AvgRowWork(*graph, d)),
            [&](int64_t lo, int64_t hi) {
              for (int64_t j = lo; j < hi; ++j) {
                float* hrow = dst + static_cast<size_t>(j) * d;
                for (int64_t s = t.row_ptr[j]; s < t.row_ptr[j + 1]; ++s) {
                  const float w =
                      weights.empty() ? 1.0f : weights[t.edge[s]];
                  const float* grow =
                      g + static_cast<size_t>(t.src[s]) * d;
                  for (int c = 0; c < d; ++c) hrow[c] += w * grow[c];
                }
              }
            });
        self.inputs[0]->AccumulateGrad(gh);
      },
      "Spmm");
}

Variable NeighborMean(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& h) {
  VGOD_COUNTER_INC("gnn.neighbor_mean.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor out = graph_ops::NeighborMean(*graph, h.value());
  const int d = h.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), d](AutogradNode& self) {
        VGOD_PROFILE_SCOPE("gnn/neighbor_mean_backward");
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const graph_ops::CsrTranspose t =
            graph_ops::BuildCsrTranspose(*graph);
        const float* g = self.grad.data();
        float* dst = gh.data();
        par::ParallelFor(
            0, n, NodeGrain(AvgRowWork(*graph, d)),
            [&](int64_t lo, int64_t hi) {
              for (int64_t j = lo; j < hi; ++j) {
                float* hrow = dst + static_cast<size_t>(j) * d;
                for (int64_t s = t.row_ptr[j]; s < t.row_ptr[j + 1]; ++s) {
                  const int i = t.src[s];
                  const float inv =
                      1.0f / static_cast<float>(graph->Degree(i));
                  const float* grow = g + static_cast<size_t>(i) * d;
                  for (int c = 0; c < d; ++c) hrow[c] += inv * grow[c];
                }
              }
            });
        self.inputs[0]->AccumulateGrad(gh);
      },
      "NeighborMean");
}

Variable NeighborVarianceScore(std::shared_ptr<const AttributedGraph> graph,
                               const Variable& h) {
  VGOD_COUNTER_INC("gnn.neighbor_variance.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  Tensor hv = h.value();
  Tensor mean = graph_ops::NeighborMean(*graph, hv);
  Tensor out = graph_ops::NeighborVarianceScore(*graph, hv);
  const int d = hv.cols();
  return Variable::FromOp(
      std::move(out), {h},
      [graph = std::move(graph), hv, mean, d](AutogradNode& self) {
        VGOD_PROFILE_SCOPE("gnn/neighbor_variance_backward");
        // o_i = (1/|N_i|) sum_{j in N_i} ||h_j - mean_i||^2. The dependence
        // of mean_i on h_j folds into d o_i / d h_j = (2/|N_i|)(h_j - mean_i)
        // (the cross term through the mean cancels). Scatter over j,
        // executed as a transpose gather (see file comment).
        const int n = graph->num_nodes();
        Tensor gh = Tensor::Zeros(n, d);
        const graph_ops::CsrTranspose t =
            graph_ops::BuildCsrTranspose(*graph);
        const float* g = self.grad.data();
        const float* src = hv.data();
        const float* mu = mean.data();
        float* dst = gh.data();
        par::ParallelFor(
            0, n, NodeGrain(AvgRowWork(*graph, d)),
            [&](int64_t lo, int64_t hi) {
              for (int64_t j = lo; j < hi; ++j) {
                float* grow = dst + static_cast<size_t>(j) * d;
                const float* hrow = src + static_cast<size_t>(j) * d;
                for (int64_t s = t.row_ptr[j]; s < t.row_ptr[j + 1]; ++s) {
                  const int i = t.src[s];
                  const float coeff =
                      2.0f * g[i] / static_cast<float>(graph->Degree(i));
                  const float* mrow = mu + static_cast<size_t>(i) * d;
                  for (int c = 0; c < d; ++c) {
                    grow[c] += coeff * (hrow[c] - mrow[c]);
                  }
                }
              }
            });
        self.inputs[0]->AccumulateGrad(gh);
      },
      "NeighborVarianceScore");
}

namespace {

/// Everything the GAT backward needs from the forward pass.
struct GatForwardState {
  std::vector<float> attention;  // alpha per CSR edge slot.
  std::vector<float> pre_activation;  // z = p_i + q_j per edge slot.
};

}  // namespace

Variable GatAggregate(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& s, const Variable& p, const Variable& q,
                      float negative_slope) {
  const int n = graph->num_nodes();
  const int d = s.cols();
  VGOD_COUNTER_INC("gnn.gat_aggregate.calls");
  VGOD_COUNTER_ADD("gnn.spmm.edges", graph->num_directed_edges());
  VGOD_CHECK_EQ(s.rows(), n);
  VGOD_CHECK_EQ(p.rows(), n);
  VGOD_CHECK_EQ(p.cols(), 1);
  VGOD_CHECK_EQ(q.rows(), n);
  VGOD_CHECK_EQ(q.cols(), 1);

  Tensor sv = s.value();
  const Tensor& pv = p.value();
  const Tensor& qv = q.value();
  const auto& row_ptr = graph->row_ptr();
  const auto& col_idx = graph->col_idx();

  auto state = std::make_shared<GatForwardState>();
  state->attention.resize(graph->num_directed_edges());
  state->pre_activation.resize(graph->num_directed_edges());

  // Row-parallel: each destination i owns its edge slots [row_ptr[i],
  // row_ptr[i+1]) exclusively, so the softmax groups never overlap.
  Tensor out = Tensor::Zeros(n, d);
  VGOD_PROFILE_SCOPE("gnn/gat_aggregate");
  par::ParallelFor(
      0, n, NodeGrain(AvgRowWork(*graph, d)),
      [&](int64_t lo_i, int64_t hi_i) {
        for (int64_t i = lo_i; i < hi_i; ++i) {
          const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
          if (begin == end) continue;
          // Edge scores with a per-group max shift for a stable softmax.
          float max_score = -std::numeric_limits<float>::infinity();
          for (int64_t e = begin; e < end; ++e) {
            const float z =
                pv.At(static_cast<int>(i), 0) + qv.At(col_idx[e], 0);
            state->pre_activation[e] = z;
            const float activated = z > 0.0f ? z : negative_slope * z;
            state->attention[e] = activated;
            max_score = std::max(max_score, activated);
          }
          float denom = 0.0f;
          for (int64_t e = begin; e < end; ++e) {
            state->attention[e] = std::exp(state->attention[e] - max_score);
            denom += state->attention[e];
          }
          float* orow = out.data() + static_cast<size_t>(i) * d;
          for (int64_t e = begin; e < end; ++e) {
            state->attention[e] /= denom;
            const float alpha = state->attention[e];
            const float* srow =
                sv.data() + static_cast<size_t>(col_idx[e]) * d;
            for (int c = 0; c < d; ++c) orow[c] += alpha * srow[c];
          }
        }
      });

  return Variable::FromOp(
      std::move(out), {s, p, q},
      [graph = std::move(graph), state, sv, negative_slope,
       d](AutogradNode& self) {
        VGOD_PROFILE_SCOPE("gnn/gat_aggregate_backward");
        const int num_nodes = graph->num_nodes();
        const auto& rows = graph->row_ptr();
        const auto& cols = graph->col_idx();
        const float* g = self.grad.data();
        const bool need_s = self.inputs[0]->requires_grad;
        const bool need_p = self.inputs[1]->requires_grad;
        const bool need_q = self.inputs[2]->requires_grad;
        Tensor gs = Tensor::Zeros(num_nodes, d);
        Tensor gp = Tensor::Zeros(num_nodes, 1);
        Tensor gq = Tensor::Zeros(num_nodes, 1);
        // Pass 1 (row-parallel over destinations i): softmax + LeakyReLU
        // backward per attention group. dz[e] lives on edge slots owned by
        // exactly one i; gp[i] is row-local.
        std::vector<float> dz(state->attention.size(), 0.0f);
        par::ParallelFor(
            0, num_nodes, NodeGrain(AvgRowWork(*graph, d)),
            [&](int64_t lo_i, int64_t hi_i) {
              std::vector<float> dalpha;
              for (int64_t i = lo_i; i < hi_i; ++i) {
                const int64_t begin = rows[i], end = rows[i + 1];
                if (begin == end) continue;
                const float* grow = g + static_cast<size_t>(i) * d;
                // d out_i / d alpha_ij = g_i . s_j.
                dalpha.assign(end - begin, 0.0f);
                double weighted_sum = 0.0;  // sum_k alpha_ik * dalpha_ik
                for (int64_t e = begin; e < end; ++e) {
                  const float* srow =
                      sv.data() + static_cast<size_t>(cols[e]) * d;
                  double dot = 0.0;
                  for (int c = 0; c < d; ++c) dot += grow[c] * srow[c];
                  dalpha[e - begin] = static_cast<float>(dot);
                  weighted_sum += state->attention[e] * dot;
                }
                if (!need_p && !need_q) continue;
                for (int64_t e = begin; e < end; ++e) {
                  // Softmax backward within group i, then LeakyReLU.
                  const float de =
                      state->attention[e] *
                      (dalpha[e - begin] -
                       static_cast<float>(weighted_sum));
                  const float slope = state->pre_activation[e] > 0.0f
                                          ? 1.0f
                                          : negative_slope;
                  dz[e] = de * slope;
                  if (need_p) gp.data()[i] += dz[e];
                }
              }
            });
        // Pass 2 (transpose gather over sources j): d out_i / d s_j =
        // alpha_ij g_i and d z_ij / d q_j = 1, both scatters over j in the
        // forward CSR, gathered here in forward-slot order per j.
        if (need_s || need_q) {
          const graph_ops::CsrTranspose t =
              graph_ops::BuildCsrTranspose(*graph);
          par::ParallelFor(
              0, num_nodes, NodeGrain(AvgRowWork(*graph, d)),
              [&](int64_t lo_j, int64_t hi_j) {
                for (int64_t j = lo_j; j < hi_j; ++j) {
                  float* srcg = gs.data() + static_cast<size_t>(j) * d;
                  for (int64_t slot = t.row_ptr[j]; slot < t.row_ptr[j + 1];
                       ++slot) {
                    const int64_t e = t.edge[slot];
                    const int i = t.src[slot];
                    if (need_s) {
                      const float alpha = state->attention[e];
                      const float* grow = g + static_cast<size_t>(i) * d;
                      for (int c = 0; c < d; ++c) {
                        srcg[c] += alpha * grow[c];
                      }
                    }
                    if (need_q) gq.data()[j] += dz[e];
                  }
                }
              });
        }
        if (need_s) self.inputs[0]->AccumulateGrad(gs);
        if (need_p) self.inputs[1]->AccumulateGrad(gp);
        if (need_q) self.inputs[2]->AccumulateGrad(gq);
      },
      "GatAggregate");
}

}  // namespace vgod::ag
