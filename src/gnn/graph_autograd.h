#ifndef VGOD_GNN_GRAPH_AUTOGRAD_H_
#define VGOD_GNN_GRAPH_AUTOGRAD_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "tensor/autograd.h"

namespace vgod::ag {

// Differentiable message-passing primitives. Backward passes are fused
// edge-scatter kernels (no transpose materialization), so they work for
// directed graphs such as the negative networks of paper Definition 4.
// Each op holds a shared_ptr to the graph so the autograd tape keeps the
// topology alive until Backward() runs.

/// out[i] = sum_{j in N(i)} w(i->j) * h[j]. `edge_weights` aligned with the
/// graph's CSR order; empty means all-ones. Gradient flows to h only (the
/// weights are structural constants, e.g. GCN normalization).
Variable Spmm(std::shared_ptr<const AttributedGraph> graph,
              std::vector<float> edge_weights, const Variable& h);

/// Mean over neighbors (paper Eq. 7 / MeanConv). Zero row for isolated
/// nodes.
Variable NeighborMean(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& h);

/// n x 1 neighbor-variance score (paper Eq. 7-9): the structural outlier
/// score of VBM. o_i = sum_c Var_{j in N_i}(h_jc); zero for isolated nodes.
Variable NeighborVarianceScore(std::shared_ptr<const AttributedGraph> graph,
                               const Variable& h);

/// GAT aggregation (paper Eq. 3). Per node i the incoming messages from
/// its neighbor list are combined with attention
///   alpha_ij = softmax_{j in N_i}( LeakyReLU(p_i + q_j) ),
///   out_i = sum_j alpha_ij s_j,
/// where s = X W (n x d), p = s a_src and q = s a_dst are n x 1 projections.
/// Gradients flow to s, p and q. Pass a self-looped graph for standard GAT
/// semantics; isolated nodes yield zero rows.
Variable GatAggregate(std::shared_ptr<const AttributedGraph> graph,
                      const Variable& s, const Variable& p, const Variable& q,
                      float negative_slope = 0.2f);

}  // namespace vgod::ag

#endif  // VGOD_GNN_GRAPH_AUTOGRAD_H_
