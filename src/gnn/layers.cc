#include "gnn/layers.h"

#include "graph/graph_ops.h"
#include "obs/profile.h"
#include "tensor/init.h"

namespace vgod::gnn {

const char* GnnKindName(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn:
      return "GCN";
    case GnnKind::kGat:
      return "GAT";
    case GnnKind::kGin:
      return "GIN";
    case GnnKind::kSage:
      return "SAGE";
  }
  return "?";
}

GcnConv::GcnConv(int in_features, int out_features, Rng* rng)
    : linear_(in_features, out_features, rng, /*use_bias=*/false) {}

Variable GcnConv::Forward(std::shared_ptr<const AttributedGraph> graph,
                          const Variable& x) const {
  VGOD_PROFILE_SCOPE("gnn/gcn_forward");
  Variable h = linear_.Forward(x);
  return ag::Spmm(graph, graph_ops::GcnNormWeights(*graph), h);
}

std::vector<Variable> GcnConv::Parameters() const {
  return linear_.Parameters();
}

GatConv::GatConv(int in_features, int out_features, Rng* rng, int heads,
                 float negative_slope)
    : negative_slope_(negative_slope) {
  VGOD_CHECK_GT(heads, 0);
  VGOD_CHECK_EQ(out_features % heads, 0)
      << "out_features must divide evenly across heads";
  const int head_dim = out_features / heads;
  heads_.reserve(heads);
  for (int h = 0; h < heads; ++h) {
    heads_.push_back(Head{
        nn::Linear(in_features, head_dim, rng, /*use_bias=*/false),
        Variable::Parameter(init::XavierUniform(head_dim, 1, rng)),
        Variable::Parameter(init::XavierUniform(head_dim, 1, rng)),
    });
  }
}

Variable GatConv::Forward(std::shared_ptr<const AttributedGraph> graph,
                          const Variable& x) const {
  VGOD_PROFILE_SCOPE("gnn/gat_forward");
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  for (const Head& head : heads_) {
    Variable s = head.linear.Forward(x);
    Variable p = ag::MatMul(s, head.attn_src);
    Variable q = ag::MatMul(s, head.attn_dst);
    outputs.push_back(ag::GatAggregate(graph, s, p, q, negative_slope_));
  }
  return outputs.size() == 1 ? outputs[0] : ag::ConcatCols(outputs);
}

std::vector<Variable> GatConv::Parameters() const {
  std::vector<Variable> params;
  for (const Head& head : heads_) {
    for (Variable& p : head.linear.Parameters()) params.push_back(p);
    params.push_back(head.attn_src);
    params.push_back(head.attn_dst);
  }
  return params;
}

GinConv::GinConv(int in_features, int out_features, Rng* rng, float eps)
    : mlp_({in_features, out_features, out_features}, rng), eps_(eps) {}

Variable GinConv::Forward(std::shared_ptr<const AttributedGraph> graph,
                          const Variable& x) const {
  VGOD_PROFILE_SCOPE("gnn/gin_forward");
  Variable aggregated = ag::Spmm(graph, {}, x);
  Variable combined = ag::Add(ag::Scale(x, 1.0f + eps_), aggregated);
  return mlp_.Forward(combined);
}

std::vector<Variable> GinConv::Parameters() const { return mlp_.Parameters(); }

SageConv::SageConv(int in_features, int out_features, Rng* rng)
    : self_linear_(in_features, out_features, rng),
      neighbor_linear_(in_features, out_features, rng, /*use_bias=*/false) {}

Variable SageConv::Forward(std::shared_ptr<const AttributedGraph> graph,
                           const Variable& x) const {
  VGOD_PROFILE_SCOPE("gnn/sage_forward");
  Variable neighbor = ag::NeighborMean(graph, x);
  return ag::Add(self_linear_.Forward(x), neighbor_linear_.Forward(neighbor));
}

std::vector<Variable> SageConv::Parameters() const {
  std::vector<Variable> params = self_linear_.Parameters();
  for (Variable& p : neighbor_linear_.Parameters()) {
    params.push_back(std::move(p));
  }
  return params;
}

std::unique_ptr<GnnLayer> MakeConv(GnnKind kind, int in_features,
                                   int out_features, Rng* rng) {
  switch (kind) {
    case GnnKind::kGcn:
      return std::make_unique<GcnConv>(in_features, out_features, rng);
    case GnnKind::kGat:
      return std::make_unique<GatConv>(in_features, out_features, rng);
    case GnnKind::kGin:
      return std::make_unique<GinConv>(in_features, out_features, rng);
    case GnnKind::kSage:
      return std::make_unique<SageConv>(in_features, out_features, rng);
  }
  VGOD_CHECK(false) << "unknown GnnKind";
  return nullptr;
}

}  // namespace vgod::gnn
