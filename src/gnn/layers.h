#ifndef VGOD_GNN_LAYERS_H_
#define VGOD_GNN_LAYERS_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "gnn/graph_autograd.h"
#include "graph/graph.h"
#include "tensor/nn.h"

namespace vgod::gnn {

/// Which message-passing layer an encoder stack uses. ARM (paper §V-B) is
/// parameterized over this; Tables VIII-IX ablate it.
enum class GnnKind { kGcn, kGat, kGin, kSage };

const char* GnnKindName(GnnKind kind);

/// A message-passing layer (paper Eq. 1). Forward takes the graph and the
/// current node representations. Layers do not add self loops themselves;
/// pass `graph.WithSelfLoops()` for GCN/GAT semantics that include the node
/// itself in its own aggregation.
class GnnLayer : public nn::Module {
 public:
  virtual Variable Forward(std::shared_ptr<const AttributedGraph> graph,
                           const Variable& x) const = 0;
};

/// GCN layer (paper Eq. 2): H' = Â H W with Â the symmetric-normalized
/// adjacency of the given graph.
class GcnConv : public GnnLayer {
 public:
  GcnConv(int in_features, int out_features, Rng* rng);

  Variable Forward(std::shared_ptr<const AttributedGraph> graph,
                   const Variable& x) const override;
  std::vector<Variable> Parameters() const override;

 private:
  nn::Linear linear_;
};

/// GAT layer (paper Eq. 3) with `heads` attention heads concatenated, each
/// of width out_features / heads (out_features must divide evenly).
class GatConv : public GnnLayer {
 public:
  GatConv(int in_features, int out_features, Rng* rng, int heads = 1,
          float negative_slope = 0.2f);

  Variable Forward(std::shared_ptr<const AttributedGraph> graph,
                   const Variable& x) const override;
  std::vector<Variable> Parameters() const override;

 private:
  struct Head {
    nn::Linear linear;
    Variable attn_src;  // (out/heads) x 1
    Variable attn_dst;  // (out/heads) x 1
  };
  std::vector<Head> heads_;
  float negative_slope_;
};

/// GIN layer (paper Eq. 4): H' = MLP((1 + eps) H + sum_{j in N} H_j) with a
/// fixed eps (paper allows fixed or learnable; fixed matches its default).
class GinConv : public GnnLayer {
 public:
  GinConv(int in_features, int out_features, Rng* rng, float eps = 0.0f);

  Variable Forward(std::shared_ptr<const AttributedGraph> graph,
                   const Variable& x) const override;
  std::vector<Variable> Parameters() const override;

 private:
  nn::Mlp mlp_;
  float eps_;
};

/// GraphSAGE layer with mean aggregator:
/// H' = H W_self + mean_{j in N}(H_j) W_neigh.
class SageConv : public GnnLayer {
 public:
  SageConv(int in_features, int out_features, Rng* rng);

  Variable Forward(std::shared_ptr<const AttributedGraph> graph,
                   const Variable& x) const override;
  std::vector<Variable> Parameters() const override;

 private:
  nn::Linear self_linear_;
  nn::Linear neighbor_linear_;
};

/// Builds a layer of the requested kind.
std::unique_ptr<GnnLayer> MakeConv(GnnKind kind, int in_features,
                                   int out_features, Rng* rng);

}  // namespace vgod::gnn

#endif  // VGOD_GNN_LAYERS_H_
