#include "gnn/parameter_free.h"

#include "core/check.h"
#include "graph/graph_ops.h"

namespace vgod::gnn {

Tensor MeanConv(const AttributedGraph& graph, const Tensor& h) {
  return graph_ops::NeighborMean(graph, h);
}

Tensor MinusConv(const AttributedGraph& graph, const Tensor& h,
                 const Tensor& neighbor_mean) {
  VGOD_CHECK_EQ(h.rows(), graph.num_nodes());
  VGOD_CHECK(neighbor_mean.SameShape(h));
  const int n = graph.num_nodes();
  const int d = h.cols();
  Tensor out = Tensor::Zeros(n, 1);
  for (int i = 0; i < n; ++i) {
    const auto neighbors = graph.Neighbors(i);
    if (neighbors.empty()) continue;
    const float* mean_row =
        neighbor_mean.data() + static_cast<size_t>(i) * d;
    double acc = 0.0;
    for (int32_t j : neighbors) {
      const float* hrow = h.data() + static_cast<size_t>(j) * d;
      for (int c = 0; c < d; ++c) {
        const double diff = static_cast<double>(hrow[c]) - mean_row[c];
        acc += diff * diff;
      }
    }
    out.SetAt(i, 0, static_cast<float>(acc / neighbors.size()));
  }
  return out;
}

}  // namespace vgod::gnn
