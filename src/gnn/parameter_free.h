#ifndef VGOD_GNN_PARAMETER_FREE_H_
#define VGOD_GNN_PARAMETER_FREE_H_

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace vgod::gnn {

// The two parameter-free message-passing layers of paper Fig 5. VBM's
// training path uses the fused autograd op ag::NeighborVarianceScore; these
// explicit layers implement the same computation step by step and are used
// to cross-validate the fused kernel in tests and to mirror the paper's
// presentation.

/// MeanConv (Fig 5a): out_i = (1/|N_i|) sum_{j in N_i} h_j (Eq. 7).
Tensor MeanConv(const AttributedGraph& graph, const Tensor& h);

/// MinusConv (Fig 5b): given h and the MeanConv output, computes the
/// per-node variance vector var(v_i) (Eq. 8) and returns its L1 norm per
/// node as an n x 1 score (Eq. 9).
Tensor MinusConv(const AttributedGraph& graph, const Tensor& h,
                 const Tensor& neighbor_mean);

}  // namespace vgod::gnn

#endif  // VGOD_GNN_PARAMETER_FREE_H_
