#include "graph/algorithms.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/check.h"

namespace vgod::graph_algorithms {

std::vector<int> ConnectedComponents(const AttributedGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> component(n, -1);
  int next_component = 0;
  std::deque<int> frontier;
  for (int start = 0; start < n; ++start) {
    if (component[start] != -1) continue;
    component[start] = next_component;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const int node = frontier.front();
      frontier.pop_front();
      for (int32_t neighbor : graph.Neighbors(node)) {
        if (component[neighbor] == -1) {
          component[neighbor] = next_component;
          frontier.push_back(neighbor);
        }
      }
    }
    ++next_component;
  }
  return component;
}

int NumConnectedComponents(const AttributedGraph& graph) {
  const std::vector<int> component = ConnectedComponents(graph);
  int max_id = -1;
  for (int id : component) max_id = std::max(max_id, id);
  return max_id + 1;
}

std::vector<int64_t> TriangleCounts(const AttributedGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int64_t> triangles(n, 0);
  // For each edge (u, v) with u < v, intersect sorted neighbor lists and
  // count common neighbors w > v to count each triangle exactly once.
  for (int u = 0; u < n; ++u) {
    const auto neighbors_u = graph.Neighbors(u);
    for (int32_t v : neighbors_u) {
      if (v <= u) continue;
      const auto neighbors_v = graph.Neighbors(v);
      size_t i = 0, j = 0;
      while (i < neighbors_u.size() && j < neighbors_v.size()) {
        const int32_t a = neighbors_u[i], b = neighbors_v[j];
        if (a < b) {
          ++i;
        } else if (b < a) {
          ++j;
        } else {
          if (a > v) {
            ++triangles[u];
            ++triangles[v];
            ++triangles[a];
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

std::vector<double> LocalClusteringCoefficients(
    const AttributedGraph& graph) {
  const std::vector<int64_t> triangles = TriangleCounts(graph);
  std::vector<double> coefficients(graph.num_nodes(), 0.0);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const int64_t degree = graph.Degree(i);
    if (degree < 2) continue;
    coefficients[i] =
        2.0 * triangles[i] / (static_cast<double>(degree) * (degree - 1));
  }
  return coefficients;
}

double GlobalClusteringCoefficient(const AttributedGraph& graph) {
  const std::vector<int64_t> triangles = TriangleCounts(graph);
  int64_t closed = 0;
  int64_t wedges = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    closed += triangles[i];  // Sum over nodes = 3 * #triangles already.
    const int64_t degree = graph.Degree(i);
    wedges += degree * (degree - 1) / 2;
  }
  return wedges == 0 ? 0.0 : static_cast<double>(closed) / wedges;
}

std::vector<int> CoreNumbers(const AttributedGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (int i = 0; i < n; ++i) {
    degree[i] = graph.Degree(i);
    max_degree = std::max(max_degree, degree[i]);
  }
  // Bucket sort nodes by degree (Batagelj-Zaversnik peeling).
  std::vector<int> bucket_start(max_degree + 2, 0);
  for (int i = 0; i < n; ++i) ++bucket_start[degree[i] + 1];
  for (int d = 1; d <= max_degree + 1; ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<int> sorted(n), position(n);
  std::vector<int> cursor(bucket_start.begin(), bucket_start.end() - 1);
  for (int i = 0; i < n; ++i) {
    position[i] = cursor[degree[i]]++;
    sorted[position[i]] = i;
  }
  std::vector<int> core = degree;
  std::vector<int> bin_ptr(bucket_start.begin(), bucket_start.end() - 1);
  for (int idx = 0; idx < n; ++idx) {
    const int node = sorted[idx];
    for (int32_t neighbor : graph.Neighbors(node)) {
      if (core[neighbor] <= core[node]) continue;
      // Move the neighbor one bucket down: swap it with the first node of
      // its current bucket, then shrink the bucket.
      const int deg_v = core[neighbor];
      const int first_pos = bin_ptr[deg_v];
      const int first_node = sorted[first_pos];
      if (first_node != neighbor) {
        std::swap(sorted[position[neighbor]], sorted[first_pos]);
        std::swap(position[neighbor], position[first_node]);
      }
      ++bin_ptr[deg_v];
      --core[neighbor];
    }
  }
  return core;
}

Tensor StructuralFeatureMatrix(const AttributedGraph& graph) {
  const int n = graph.num_nodes();
  const std::vector<int64_t> triangles = TriangleCounts(graph);
  const std::vector<double> clustering =
      LocalClusteringCoefficients(graph);
  const std::vector<int> cores = CoreNumbers(graph);

  Tensor features(n, 5);
  for (int i = 0; i < n; ++i) {
    const double degree = graph.Degree(i);
    features.SetAt(i, 0, static_cast<float>(degree));
    features.SetAt(i, 1, static_cast<float>(triangles[i]));
    features.SetAt(i, 2, static_cast<float>(degree * (degree - 1) / 2.0));
    features.SetAt(i, 3, static_cast<float>(clustering[i]));
    features.SetAt(i, 4, static_cast<float>(cores[i]));
  }
  // Column z-scoring keeps the AE loss from being dominated by the
  // heavy-tailed triangle/wedge counts.
  for (int c = 0; c < features.cols(); ++c) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += features.At(i, c);
    mean /= std::max(1, n);
    double variance = 0.0;
    for (int i = 0; i < n; ++i) {
      const double diff = features.At(i, c) - mean;
      variance += diff * diff;
    }
    const double stddev = std::sqrt(variance / std::max(1, n));
    for (int i = 0; i < n; ++i) {
      const float value =
          stddev > 0 ? static_cast<float>((features.At(i, c) - mean) / stddev)
                     : 0.0f;
      features.SetAt(i, c, value);
    }
  }
  return features;
}

}  // namespace vgod::graph_algorithms
