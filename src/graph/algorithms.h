#ifndef VGOD_GRAPH_ALGORITHMS_H_
#define VGOD_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace vgod::graph_algorithms {

/// Component id (0-based, dense) per node via BFS over the undirected
/// structure. Isolated nodes get their own components.
std::vector<int> ConnectedComponents(const AttributedGraph& graph);

int NumConnectedComponents(const AttributedGraph& graph);

/// Number of triangles through each node (each triangle counted once per
/// member). Uses sorted-adjacency intersection; O(sum_deg^2 / ...) — fine
/// for the sparse graphs this library targets.
std::vector<int64_t> TriangleCounts(const AttributedGraph& graph);

/// Local clustering coefficient per node: triangles / (deg choose 2);
/// zero for degree < 2.
std::vector<double> LocalClusteringCoefficients(const AttributedGraph& graph);

/// Transitivity: 3 * triangles / wedges over the whole graph.
double GlobalClusteringCoefficient(const AttributedGraph& graph);

/// Core number per node (largest k such that the node is in the k-core),
/// by the standard O(V + E) peeling algorithm.
std::vector<int> CoreNumbers(const AttributedGraph& graph);

/// Per-node higher-order structural feature matrix used by the GUIDE
/// baseline in place of raw adjacency rows: columns are
///   [degree, triangle count, wedge count, local clustering, core number],
/// each column z-scored across nodes. Injected cliques light up the
/// triangle/clustering columns far more than organic neighborhoods do.
Tensor StructuralFeatureMatrix(const AttributedGraph& graph);

}  // namespace vgod::graph_algorithms

#endif  // VGOD_GRAPH_ALGORITHMS_H_
