#include "graph/graph.h"

#include <algorithm>
#include <set>

#include "core/check.h"

namespace vgod {

Result<AttributedGraph> AttributedGraph::FromEdgeList(
    int num_nodes, const std::vector<std::pair<int, int>>& edges,
    Tensor attributes, bool make_undirected) {
  GraphBuilder builder(num_nodes);
  builder.SetUndirected(make_undirected);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  if (attributes.defined()) builder.SetAttributes(std::move(attributes));
  return builder.Build();
}

Result<AttributedGraph> AttributedGraph::FromCsr(int num_nodes,
                                                 std::vector<int64_t> row_ptr,
                                                 std::vector<int32_t> col_idx,
                                                 Tensor attributes) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  if (static_cast<int>(row_ptr.size()) != num_nodes + 1 || row_ptr[0] != 0 ||
      row_ptr[num_nodes] != static_cast<int64_t>(col_idx.size())) {
    return Status::InvalidArgument("row_ptr does not frame col_idx");
  }
  for (int i = 0; i < num_nodes; ++i) {
    if (row_ptr[i] > row_ptr[i + 1]) {
      return Status::InvalidArgument("row_ptr must be monotone");
    }
    int32_t prev = -1;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const int32_t v = col_idx[k];
      if (v < 0 || v >= num_nodes) {
        return Status::OutOfRange("col_idx entry " + std::to_string(v) +
                                  " out of range [0," +
                                  std::to_string(num_nodes) + ")");
      }
      if (v <= prev) {
        return Status::InvalidArgument(
            "row " + std::to_string(i) +
            " is not sorted / contains duplicates");
      }
      prev = v;
    }
  }
  if (attributes.defined() && attributes.rows() != num_nodes) {
    return Status::InvalidArgument(
        "attribute rows (" + std::to_string(attributes.rows()) +
        ") != num_nodes (" + std::to_string(num_nodes) + ")");
  }
  AttributedGraph graph;
  graph.num_nodes_ = num_nodes;
  graph.row_ptr_ = std::move(row_ptr);
  graph.col_idx_ = std::move(col_idx);
  graph.attributes_ = std::move(attributes);
  return graph;
}

double AttributedGraph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(num_directed_edges()) / num_nodes_;
}

bool AttributedGraph::HasEdge(int u, int v) const {
  VGOD_CHECK(u >= 0 && u < num_nodes_);
  VGOD_CHECK(v >= 0 && v < num_nodes_);
  const auto neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

void AttributedGraph::SetAttributes(Tensor attributes) {
  VGOD_CHECK_EQ(attributes.rows(), num_nodes_);
  attributes_ = std::move(attributes);
}

void AttributedGraph::SetCommunities(std::vector<int> communities) {
  VGOD_CHECK_EQ(static_cast<int>(communities.size()), num_nodes_);
  communities_ = std::move(communities);
}

int AttributedGraph::NumCommunities() const {
  int max_label = -1;
  for (int label : communities_) max_label = std::max(max_label, label);
  return max_label + 1;
}

void AttributedGraph::SetOutlierLabels(std::vector<uint8_t> labels) {
  VGOD_CHECK_EQ(static_cast<int>(labels.size()), num_nodes_);
  outlier_labels_ = std::move(labels);
}

AttributedGraph AttributedGraph::WithSelfLoops() const {
  AttributedGraph out;
  out.num_nodes_ = num_nodes_;
  out.attributes_ = attributes_;
  out.communities_ = communities_;
  out.outlier_labels_ = outlier_labels_;
  out.row_ptr_.assign(num_nodes_ + 1, 0);
  out.col_idx_.reserve(col_idx_.size() + num_nodes_);
  for (int i = 0; i < num_nodes_; ++i) {
    const auto neighbors = Neighbors(i);
    bool inserted = false;
    for (int32_t j : neighbors) {
      if (!inserted && j >= i) {
        if (j != i) out.col_idx_.push_back(i);
        inserted = true;
      }
      out.col_idx_.push_back(j);
    }
    if (!inserted) out.col_idx_.push_back(i);
    out.row_ptr_[i + 1] = static_cast<int64_t>(out.col_idx_.size());
  }
  return out;
}

std::vector<std::pair<int, int>> AttributedGraph::UndirectedEdgeList() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(col_idx_.size() / 2);
  for (int u = 0; u < num_nodes_; ++u) {
    for (int32_t v : Neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

GraphBuilder& GraphBuilder::AddEdge(int u, int v) {
  edges_.emplace_back(u, v);
  return *this;
}

GraphBuilder& GraphBuilder::SetAttributes(Tensor attributes) {
  attributes_ = std::move(attributes);
  return *this;
}

GraphBuilder& GraphBuilder::SetCommunities(std::vector<int> communities) {
  communities_ = std::move(communities);
  return *this;
}

GraphBuilder& GraphBuilder::SetOutlierLabels(std::vector<uint8_t> labels) {
  outlier_labels_ = std::move(labels);
  return *this;
}

GraphBuilder& GraphBuilder::SetUndirected(bool undirected) {
  undirected_ = undirected;
  return *this;
}

GraphBuilder& GraphBuilder::SetKeepSelfLoops(bool keep) {
  keep_self_loops_ = keep;
  return *this;
}

Result<AttributedGraph> GraphBuilder::Build() {
  if (num_nodes_ < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  if (attributes_.defined() && attributes_.rows() != num_nodes_) {
    return Status::InvalidArgument(
        "attribute rows (" + std::to_string(attributes_.rows()) +
        ") != num_nodes (" + std::to_string(num_nodes_) + ")");
  }
  if (!communities_.empty() &&
      static_cast<int>(communities_.size()) != num_nodes_) {
    return Status::InvalidArgument("community label size != num_nodes");
  }
  if (!outlier_labels_.empty() &&
      static_cast<int>(outlier_labels_.size()) != num_nodes_) {
    return Status::InvalidArgument("outlier label size != num_nodes");
  }

  std::vector<std::pair<int, int>> directed;
  directed.reserve(edges_.size() * (undirected_ ? 2 : 1));
  for (const auto& [u, v] : edges_) {
    if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
      return Status::OutOfRange("edge (" + std::to_string(u) + "," +
                                std::to_string(v) + ") out of range [0," +
                                std::to_string(num_nodes_) + ")");
    }
    if (u == v && !keep_self_loops_) continue;
    directed.emplace_back(u, v);
    if (undirected_ && u != v) directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  AttributedGraph graph;
  graph.num_nodes_ = num_nodes_;
  graph.row_ptr_.assign(num_nodes_ + 1, 0);
  graph.col_idx_.reserve(directed.size());
  for (const auto& [u, v] : directed) {
    graph.row_ptr_[u + 1]++;
    graph.col_idx_.push_back(v);
  }
  for (int i = 0; i < num_nodes_; ++i) {
    graph.row_ptr_[i + 1] += graph.row_ptr_[i];
  }
  graph.attributes_ = std::move(attributes_);
  graph.communities_ = std::move(communities_);
  graph.outlier_labels_ = std::move(outlier_labels_);
  return graph;
}

}  // namespace vgod
