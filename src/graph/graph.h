#ifndef VGOD_GRAPH_GRAPH_H_
#define VGOD_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace vgod {

/// An attributed network G = (V, E, X) (paper Definition 1) stored in CSR.
///
/// Edges are stored *directed*: an undirected graph stores both (u,v) and
/// (v,u). Column indices within each row are sorted, enabling binary-search
/// HasEdge. Attributes are an n x d dense matrix; community labels (for the
/// node-classification-based injection of paper §VI-D) and outlier labels
/// (ground truth for evaluation) are optional per-node vectors.
///
/// Construction goes through GraphBuilder or FromEdgeList, which validate
/// indices, deduplicate, sort, and optionally symmetrize.
class AttributedGraph {
 public:
  AttributedGraph() = default;

  /// Validated construction. `edges` may contain duplicates; they are
  /// removed. Self loops in the input are dropped (use WithSelfLoops() to
  /// add the paper's Eq. 13 self-loop technique explicitly). When
  /// `make_undirected` is true each edge is mirrored.
  static Result<AttributedGraph> FromEdgeList(
      int num_nodes, const std::vector<std::pair<int, int>>& edges,
      Tensor attributes, bool make_undirected = true);

  /// Adopts pre-built CSR arrays in O(E): `row_ptr` must be monotone with
  /// row_ptr[0] == 0 and row_ptr[n] == col_idx.size(), and each row of
  /// `col_idx` must be sorted, duplicate-free, and in range. Used by the
  /// streaming delta store, whose overlay merge already produces valid
  /// rows; everything else should go through GraphBuilder.
  static Result<AttributedGraph> FromCsr(int num_nodes,
                                         std::vector<int64_t> row_ptr,
                                         std::vector<int32_t> col_idx,
                                         Tensor attributes);

  int num_nodes() const { return num_nodes_; }

  /// Number of stored (directed) edges. For an undirected graph this is
  /// twice the edge count usually reported in dataset tables.
  int64_t num_directed_edges() const {
    return static_cast<int64_t>(col_idx_.size());
  }

  /// Out-degree of `node` (== degree for undirected graphs).
  int Degree(int node) const {
    return static_cast<int>(row_ptr_[node + 1] - row_ptr_[node]);
  }

  double AverageDegree() const;

  /// Sorted neighbor list of `node`.
  std::span<const int32_t> Neighbors(int node) const {
    return {col_idx_.data() + row_ptr_[node],
            static_cast<size_t>(row_ptr_[node + 1] - row_ptr_[node])};
  }

  /// True if the directed edge (u, v) is present (binary search).
  bool HasEdge(int u, int v) const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }

  bool has_attributes() const { return attributes_.defined(); }
  const Tensor& attributes() const { return attributes_; }
  int attribute_dim() const {
    return attributes_.defined() ? attributes_.cols() : 0;
  }

  /// Replaces the attribute matrix (rows must equal num_nodes).
  void SetAttributes(Tensor attributes);

  bool has_communities() const { return !communities_.empty(); }
  const std::vector<int>& communities() const { return communities_; }
  void SetCommunities(std::vector<int> communities);
  int NumCommunities() const;

  bool has_outlier_labels() const { return !outlier_labels_.empty(); }
  /// 1 = outlier, 0 = normal. Size num_nodes when present.
  const std::vector<uint8_t>& outlier_labels() const {
    return outlier_labels_;
  }
  void SetOutlierLabels(std::vector<uint8_t> labels);

  /// Copy of this graph with a self-loop added to every node (Eq. 13).
  /// Idempotent: existing self loops are not duplicated.
  AttributedGraph WithSelfLoops() const;

  /// Unique undirected edges as (u, v) with u < v. Self loops excluded.
  std::vector<std::pair<int, int>> UndirectedEdgeList() const;

 private:
  int num_nodes_ = 0;
  std::vector<int64_t> row_ptr_ = {0};
  std::vector<int32_t> col_idx_;
  Tensor attributes_;
  std::vector<int> communities_;
  std::vector<uint8_t> outlier_labels_;

  friend class GraphBuilder;
};

/// Incremental construction of an AttributedGraph. Collects edges (with
/// duplicates allowed), then Build() validates and assembles CSR.
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_nodes) : num_nodes_(num_nodes) {}

  /// Adds edge (u, v); mirrored at Build() time if undirected.
  GraphBuilder& AddEdge(int u, int v);

  GraphBuilder& SetAttributes(Tensor attributes);
  GraphBuilder& SetCommunities(std::vector<int> communities);
  GraphBuilder& SetOutlierLabels(std::vector<uint8_t> labels);

  /// When false, edges are stored exactly as added (used for negative
  /// networks where each node owns its own sampled neighbor set). Default
  /// true.
  GraphBuilder& SetUndirected(bool undirected);

  /// When true, self loops in the input are kept. Default false.
  GraphBuilder& SetKeepSelfLoops(bool keep);

  Result<AttributedGraph> Build();

 private:
  int num_nodes_;
  bool undirected_ = true;
  bool keep_self_loops_ = false;
  std::vector<std::pair<int, int>> edges_;
  Tensor attributes_;
  std::vector<int> communities_;
  std::vector<uint8_t> outlier_labels_;
};

}  // namespace vgod

#endif  // VGOD_GRAPH_GRAPH_H_
