#include "graph/graph_ops.h"

#include <cmath>

#include "core/check.h"
#include "core/parallel.h"
#include "obs/profile.h"

namespace vgod::graph_ops {
namespace {

/// Row grain for per-node parallel loops: enough nodes per chunk that one
/// chunk covers ~16k scalar ops given `row_work` per node. Pure function
/// of the shape (see core/parallel.h determinism contract).
int64_t NodeGrain(int64_t row_work) {
  return std::max<int64_t>(1, (int64_t{1} << 14) /
                                  std::max<int64_t>(1, row_work));
}

}  // namespace

Tensor DegreeVector(const AttributedGraph& graph) {
  Tensor out(graph.num_nodes(), 1);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    out.SetAt(i, 0, static_cast<float>(graph.Degree(i)));
  }
  return out;
}

std::vector<float> GcnNormWeights(const AttributedGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<float> inv_sqrt_deg(n);
  for (int i = 0; i < n; ++i) {
    const int deg = graph.Degree(i);
    inv_sqrt_deg[i] =
        deg > 0 ? 1.0f / std::sqrt(static_cast<float>(deg)) : 0.0f;
  }
  std::vector<float> weights(graph.num_directed_edges());
  int64_t e = 0;
  for (int u = 0; u < n; ++u) {
    for (int32_t v : graph.Neighbors(u)) {
      weights[e++] = inv_sqrt_deg[u] * inv_sqrt_deg[v];
    }
  }
  return weights;
}

Tensor Spmm(const AttributedGraph& graph,
            const std::vector<float>& edge_weights, const Tensor& h) {
  VGOD_CHECK_EQ(h.rows(), graph.num_nodes());
  if (!edge_weights.empty()) {
    VGOD_CHECK_EQ(static_cast<int64_t>(edge_weights.size()),
                  graph.num_directed_edges());
  }
  const int n = graph.num_nodes();
  const int d = h.cols();
  VGOD_PROFILE_SCOPE("graph/spmm");
  obs::ProfileAddBytes(
      (2 * static_cast<int64_t>(n) * d +
       graph.num_directed_edges() * (d + 3)) *
      static_cast<int64_t>(sizeof(float)));
  Tensor out = Tensor::Zeros(n, d);
  const float* src = h.data();
  float* dst = out.data();
  const auto& row_ptr = graph.row_ptr();
  const auto& col_idx = graph.col_idx();
  // Row-parallel gather: each destination row is produced by one chunk in
  // the serial edge order, so results match the serial kernel bit for bit.
  const int64_t avg_work =
      n == 0 ? 1 : (graph.num_directed_edges() * d) / std::max(n, 1);
  par::ParallelFor(0, n, NodeGrain(avg_work), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* orow = dst + static_cast<size_t>(i) * d;
      for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
        const float w = edge_weights.empty() ? 1.0f : edge_weights[e];
        const float* hrow = src + static_cast<size_t>(col_idx[e]) * d;
        for (int j = 0; j < d; ++j) orow[j] += w * hrow[j];
      }
    }
  });
  return out;
}

CsrTranspose BuildCsrTranspose(const AttributedGraph& graph) {
  VGOD_PROFILE_SCOPE("graph/build_csr_transpose");
  const int n = graph.num_nodes();
  const auto& row_ptr = graph.row_ptr();
  const auto& col_idx = graph.col_idx();
  const int64_t num_edges = graph.num_directed_edges();
  CsrTranspose t;
  t.row_ptr.assign(n + 1, 0);
  t.src.resize(num_edges);
  t.edge.resize(num_edges);
  for (int64_t e = 0; e < num_edges; ++e) ++t.row_ptr[col_idx[e] + 1];
  for (int i = 0; i < n; ++i) t.row_ptr[i + 1] += t.row_ptr[i];
  std::vector<int64_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (int i = 0; i < n; ++i) {
    for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const int64_t pos = cursor[col_idx[e]]++;
      t.src[pos] = static_cast<int32_t>(i);
      t.edge[pos] = e;
    }
  }
  return t;
}

Tensor NeighborMean(const AttributedGraph& graph, const Tensor& h) {
  VGOD_PROFILE_SCOPE("graph/neighbor_mean");
  Tensor sum = Spmm(graph, {}, h);
  const int n = graph.num_nodes();
  const int d = h.cols();
  float* data = sum.data();
  par::ParallelFor(0, n, NodeGrain(d), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int deg = graph.Degree(static_cast<int>(i));
      if (deg == 0) continue;
      const float inv = 1.0f / static_cast<float>(deg);
      float* row = data + static_cast<size_t>(i) * d;
      for (int j = 0; j < d; ++j) row[j] *= inv;
    }
  });
  return sum;
}

Tensor NeighborVarianceScore(const AttributedGraph& graph, const Tensor& h) {
  VGOD_CHECK_EQ(h.rows(), graph.num_nodes());
  const int n = graph.num_nodes();
  const int d = h.cols();
  VGOD_PROFILE_SCOPE("graph/neighbor_variance_score");
  const Tensor mean = NeighborMean(graph, h);
  Tensor out = Tensor::Zeros(n, 1);
  const float* src = h.data();
  const float* mu = mean.data();
  float* dst = out.data();
  const int64_t avg_work =
      n == 0 ? 1 : (graph.num_directed_edges() * d) / std::max(n, 1);
  par::ParallelFor(0, n, NodeGrain(avg_work), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const auto neighbors = graph.Neighbors(static_cast<int>(i));
      if (neighbors.empty()) continue;
      const float* mrow = mu + static_cast<size_t>(i) * d;
      double acc = 0.0;
      for (int32_t j : neighbors) {
        const float* hrow = src + static_cast<size_t>(j) * d;
        for (int c = 0; c < d; ++c) {
          const double diff = static_cast<double>(hrow[c]) - mrow[c];
          acc += diff * diff;
        }
      }
      dst[i] = static_cast<float>(acc / neighbors.size());
    }
  });
  return out;
}

double EdgeHomophily(const AttributedGraph& graph) {
  VGOD_PROFILE_SCOPE("graph/edge_homophily");
  VGOD_CHECK(graph.has_communities());
  const auto& labels = graph.communities();
  int64_t same = 0;
  int64_t total = 0;
  for (int u = 0; u < graph.num_nodes(); ++u) {
    for (int32_t v : graph.Neighbors(u)) {
      ++total;
      if (labels[u] == labels[v]) ++same;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / total;
}

Tensor DenseAdjacency(const AttributedGraph& graph) {
  VGOD_PROFILE_SCOPE("graph/dense_adjacency");
  const int n = graph.num_nodes();
  Tensor out = Tensor::Zeros(n, n);
  for (int u = 0; u < n; ++u) {
    float* row = out.data() + static_cast<size_t>(u) * n;
    for (int32_t v : graph.Neighbors(u)) row[v] = 1.0f;
  }
  return out;
}

Tensor RowNormalizeAttributes(const Tensor& attributes, float eps) {
  VGOD_PROFILE_SCOPE("graph/row_normalize_attributes");
  Tensor out = attributes.Clone();
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.data() + static_cast<size_t>(i) * out.cols();
    double sum = 0.0;
    for (int j = 0; j < out.cols(); ++j) sum += std::fabs(row[j]);
    if (sum <= eps) continue;
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < out.cols(); ++j) row[j] *= inv;
  }
  return out;
}

}  // namespace vgod::graph_ops
