#ifndef VGOD_GRAPH_GRAPH_OPS_H_
#define VGOD_GRAPH_GRAPH_OPS_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace vgod::graph_ops {

/// n x 1 tensor of node degrees. The structural leakage probe of the
/// paper's DegNorm baseline (Eq. 20).
Tensor DegreeVector(const AttributedGraph& graph);

/// Per-directed-edge weights for the GCN propagation rule (Eq. 2):
/// w(u->v) = 1 / sqrt(deg(u) * deg(v)), aligned with the graph's CSR order.
/// Call on a graph that already includes self loops for the standard
/// "renormalization trick".
std::vector<float> GcnNormWeights(const AttributedGraph& graph);

/// Sparse-dense product: out[i] = sum_{j in N(i)} w(i->j) * h[j].
/// `edge_weights` aligned with CSR order, or empty for all-ones.
Tensor Spmm(const AttributedGraph& graph,
            const std::vector<float>& edge_weights, const Tensor& h);

/// CSR of the reversed edges, remembering where each incoming edge lives
/// in the forward CSR. For destination j, slots [row_ptr[j], row_ptr[j+1])
/// list its incoming edges ordered by *forward* edge slot — i.e. by
/// ascending source row, the exact order a serial scatter over the forward
/// CSR would touch j. The parallel backward kernels in gnn/graph_autograd
/// gather over this structure so per-destination float accumulation order
/// (and therefore every gradient bit) is independent of the thread count
/// (docs/PARALLELISM.md).
struct CsrTranspose {
  std::vector<int64_t> row_ptr;  // Size num_nodes + 1.
  std::vector<int32_t> src;      // Source node of each incoming edge.
  std::vector<int64_t> edge;     // Forward-CSR slot of that edge.
};

/// Builds the transpose index in O(V + E) (counting sort by destination,
/// filled in ascending forward-slot order).
CsrTranspose BuildCsrTranspose(const AttributedGraph& graph);

/// Mean of neighbor rows (paper Eq. 7, the MeanConv layer). Nodes with no
/// neighbors get a zero row.
Tensor NeighborMean(const AttributedGraph& graph, const Tensor& h);

/// n x 1 neighbor-variance score (paper Eq. 7-9, the MeanConv+MinusConv
/// composition): o_i = || (1/|N_i|) sum_{j in N_i} (h_j - mean_i)^2 ||_1.
/// Nodes with no neighbors score 0.
Tensor NeighborVarianceScore(const AttributedGraph& graph, const Tensor& h);

/// Fraction of directed edges whose endpoints share a community label
/// (edge homophily, as reported for Weibo in paper §VI-E4). Requires
/// community labels.
double EdgeHomophily(const AttributedGraph& graph);

/// Dense adjacency matrix (n x n, 1.0 where a directed edge exists). Used
/// by reconstruction baselines; intended for the bench-scale graphs only.
Tensor DenseAdjacency(const AttributedGraph& graph);

/// Attributes divided by their row sums (the paper's row normalization for
/// Weibo). Rows summing to <= eps are left unchanged.
Tensor RowNormalizeAttributes(const Tensor& attributes, float eps = 1e-12f);

}  // namespace vgod::graph_ops

#endif  // VGOD_GRAPH_GRAPH_OPS_H_
