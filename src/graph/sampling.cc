#include "graph/sampling.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"

namespace vgod {

AttributedGraph BuildNegativeGraph(const AttributedGraph& graph, Rng* rng) {
  const int n = graph.num_nodes();
  GraphBuilder builder(n);
  builder.SetUndirected(false);
  for (int i = 0; i < n; ++i) {
    const auto neighbors = graph.Neighbors(i);
    const int degree = static_cast<int>(neighbors.size());
    if (degree == 0) continue;
    // Forbidden set: existing neighbors plus the node itself.
    std::unordered_set<int> forbidden(neighbors.begin(), neighbors.end());
    forbidden.insert(i);
    // Degenerate case: nearly-complete neighborhoods leave nothing to
    // sample. Cap at the number of available non-neighbors.
    const int available = n - static_cast<int>(forbidden.size());
    const int want = std::min(degree, available);
    int added = 0;
    // Rejection sampling; neighbor sets are tiny relative to n in the
    // sparse graphs this library targets, so rejections are rare.
    std::unordered_set<int> chosen;
    while (added < want) {
      const int candidate = static_cast<int>(rng->UniformInt(n));
      if (forbidden.count(candidate) || !chosen.insert(candidate).second) {
        continue;
      }
      builder.AddEdge(i, candidate);
      ++added;
    }
  }
  builder.SetAttributes(graph.attributes());
  Result<AttributedGraph> result = builder.Build();
  VGOD_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<int> RandomWalk(const AttributedGraph& graph, int start,
                            int length, Rng* rng) {
  VGOD_CHECK(start >= 0 && start < graph.num_nodes());
  std::vector<int> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  int current = start;
  for (int step = 0; step < length; ++step) {
    const auto neighbors = graph.Neighbors(current);
    if (!neighbors.empty()) {
      current = neighbors[rng->UniformInt(neighbors.size())];
    }
    walk.push_back(current);
  }
  return walk;
}

BlockDiagonalBatch MakeBlockDiagonalBatch(
    const AttributedGraph& source, const std::vector<std::vector<int>>& groups) {
  int total_nodes = 0;
  std::vector<int> offsets;
  offsets.reserve(groups.size());
  for (const auto& group : groups) {
    offsets.push_back(total_nodes);
    total_nodes += static_cast<int>(group.size());
  }

  GraphBuilder builder(total_nodes);
  const int d = source.attribute_dim();
  Tensor attrs = Tensor::Zeros(total_nodes, d);
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    const int base = offsets[g];
    for (size_t a = 0; a < group.size(); ++a) {
      VGOD_CHECK(group[a] >= 0 && group[a] < source.num_nodes());
      if (d > 0) {
        const float* src = source.attributes().data() +
                           static_cast<size_t>(group[a]) * d;
        float* dst = attrs.data() + static_cast<size_t>(base + a) * d;
        std::copy(src, src + d, dst);
      }
      // Induced edges within the group (upper triangle; builder mirrors).
      for (size_t b = a + 1; b < group.size(); ++b) {
        if (source.HasEdge(group[a], group[b])) {
          builder.AddEdge(base + static_cast<int>(a),
                          base + static_cast<int>(b));
        }
      }
    }
  }
  builder.SetAttributes(std::move(attrs));
  Result<AttributedGraph> built = builder.Build();
  VGOD_CHECK(built.ok()) << built.status().ToString();
  return BlockDiagonalBatch{std::move(built).value(), std::move(offsets)};
}

}  // namespace vgod
