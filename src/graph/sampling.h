#ifndef VGOD_GRAPH_SAMPLING_H_
#define VGOD_GRAPH_SAMPLING_H_

#include <vector>

#include "core/rng.h"
#include "graph/graph.h"

namespace vgod {

/// Builds the negative network G(-) of paper Definitions 3-4: for every
/// node i, samples Degree(i) "negative neighbors" uniformly from
/// V \ (N_i + {i}). The result is a *directed* graph (each node owns its own
/// sampled neighbor set) carrying the same attributes. Regenerated every
/// training epoch by VBM.
AttributedGraph BuildNegativeGraph(const AttributedGraph& graph, Rng* rng);

/// Uniform random walk of `length` steps starting at `start` (start
/// included in the result; the walk stays at the current node when it has
/// no neighbors). Used by the CoLA baseline's subgraph sampler.
std::vector<int> RandomWalk(const AttributedGraph& graph, int start,
                            int length, Rng* rng);

/// A batch of node groups packed into one block-diagonal graph: edges are
/// the induced subgraph edges within each group, node r of group g becomes
/// row `group_offsets[g] + r`. Lets per-subgraph GNNs (CoLA) run as a
/// single SpMM over the batch.
struct BlockDiagonalBatch {
  AttributedGraph graph;
  /// Row offset of each group's first node in the batched graph.
  std::vector<int> group_offsets;
};

/// Packs `groups` (lists of node ids in `source`) into one batched graph,
/// copying each node's attribute row. Duplicate nodes across groups get
/// independent rows.
BlockDiagonalBatch MakeBlockDiagonalBatch(
    const AttributedGraph& source, const std::vector<std::vector<int>>& groups);

}  // namespace vgod

#endif  // VGOD_GRAPH_SAMPLING_H_
