#include "injection/injection.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "core/check.h"

namespace vgod::injection {
namespace {

/// Distance between attribute rows `a` and `b` of `attrs`.
double RowDistance(const Tensor& attrs, int a, int b, DistanceKind kind) {
  const int d = attrs.cols();
  const float* ra = attrs.data() + static_cast<size_t>(a) * d;
  const float* rb = attrs.data() + static_cast<size_t>(b) * d;
  if (kind == DistanceKind::kEuclidean) {
    double acc = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = static_cast<double>(ra[j]) - rb[j];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  }
  // Cosine distance: 1 - cos(a, b); zero vectors treated as orthogonal.
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int j = 0; j < d; ++j) {
    dot += static_cast<double>(ra[j]) * rb[j];
    na += static_cast<double>(ra[j]) * ra[j];
    nb += static_cast<double>(rb[j]) * rb[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / std::sqrt(na * nb);
}

/// Uniformly samples `count` nodes that are not already marked in `taken`,
/// marking them. Returns empty status error if not enough nodes remain.
Result<std::vector<int>> TakeVictims(int num_nodes, int count,
                                     std::vector<uint8_t>* taken, Rng* rng) {
  std::vector<int> available;
  available.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    if (!(*taken)[i]) available.push_back(i);
  }
  if (static_cast<int>(available.size()) < count) {
    return Status::InvalidArgument(
        "not enough normal nodes to inject: need " + std::to_string(count) +
        ", have " + std::to_string(available.size()));
  }
  rng->Shuffle(&available);
  available.resize(count);
  for (int id : available) (*taken)[id] = 1;
  return available;
}

std::vector<uint8_t> ExistingLabels(const AttributedGraph& graph) {
  return graph.has_outlier_labels()
             ? graph.outlier_labels()
             : std::vector<uint8_t>(graph.num_nodes(), 0);
}

Result<AttributedGraph> Rebuild(const AttributedGraph& original,
                                const std::vector<std::pair<int, int>>& edges,
                                Tensor attrs,
                                std::vector<uint8_t> combined_labels) {
  GraphBuilder builder(original.num_nodes());
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  builder.SetAttributes(std::move(attrs));
  if (original.has_communities()) {
    builder.SetCommunities(original.communities());
  }
  builder.SetOutlierLabels(std::move(combined_labels));
  return builder.Build();
}

std::vector<uint8_t> Or(const std::vector<uint8_t>& a,
                        const std::vector<uint8_t>& b) {
  std::vector<uint8_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] | b[i];
  return out;
}

}  // namespace

Result<InjectionResult> InjectStructuralOutliers(const AttributedGraph& graph,
                                                 int num_cliques,
                                                 int clique_size, Rng* rng) {
  if (num_cliques <= 0 || clique_size < 2) {
    return Status::InvalidArgument("need num_cliques > 0 and clique_size >= 2");
  }
  const int n = graph.num_nodes();
  std::vector<uint8_t> taken = ExistingLabels(graph);
  Result<std::vector<int>> victims =
      TakeVictims(n, num_cliques * clique_size, &taken, rng);
  if (!victims.ok()) return victims.status();

  std::vector<std::pair<int, int>> edges = graph.UndirectedEdgeList();
  std::vector<uint8_t> structural(n, 0);
  for (int c = 0; c < num_cliques; ++c) {
    const int base = c * clique_size;
    for (int a = 0; a < clique_size; ++a) {
      structural[victims.value()[base + a]] = 1;
      for (int b = a + 1; b < clique_size; ++b) {
        edges.emplace_back(victims.value()[base + a],
                           victims.value()[base + b]);
      }
    }
  }

  InjectionResult result;
  result.structural = structural;
  result.contextual.assign(n, 0);
  result.combined = Or(structural, ExistingLabels(graph));
  Result<AttributedGraph> rebuilt = Rebuild(
      graph, edges, graph.attributes().Clone(), result.combined);
  if (!rebuilt.ok()) return rebuilt.status();
  result.graph = std::move(rebuilt).value();
  return result;
}

Result<InjectionResult> InjectContextualOutliers(const AttributedGraph& graph,
                                                 int count,
                                                 int candidate_set_size,
                                                 DistanceKind distance,
                                                 Rng* rng) {
  if (count <= 0 || candidate_set_size <= 0) {
    return Status::InvalidArgument("need count > 0 and candidate_set_size > 0");
  }
  const int n = graph.num_nodes();
  if (candidate_set_size >= n) {
    return Status::InvalidArgument("candidate set must be smaller than |V|");
  }
  std::vector<uint8_t> taken = ExistingLabels(graph);
  Result<std::vector<int>> victims = TakeVictims(n, count, &taken, rng);
  if (!victims.ok()) return victims.status();

  // Replacements are computed against the *original* attributes (all
  // victims are chosen up front in the standard protocol), then applied.
  const Tensor& original = graph.attributes();
  Tensor attrs = original.Clone();
  std::vector<uint8_t> contextual(n, 0);
  for (int victim : victims.value()) {
    contextual[victim] = 1;
    int best = -1;
    double best_distance = -1.0;
    for (int t = 0; t < candidate_set_size; ++t) {
      int candidate = static_cast<int>(rng->UniformInt(n));
      while (candidate == victim) {
        candidate = static_cast<int>(rng->UniformInt(n));
      }
      const double dist = RowDistance(original, candidate, victim, distance);
      if (dist > best_distance) {
        best_distance = dist;
        best = candidate;
      }
    }
    const int d = original.cols();
    const float* src = original.data() + static_cast<size_t>(best) * d;
    float* dst = attrs.data() + static_cast<size_t>(victim) * d;
    std::copy(src, src + d, dst);
  }

  InjectionResult result;
  result.structural.assign(n, 0);
  result.contextual = contextual;
  result.combined = Or(contextual, ExistingLabels(graph));
  Result<AttributedGraph> rebuilt = Rebuild(graph, graph.UndirectedEdgeList(),
                                            std::move(attrs), result.combined);
  if (!rebuilt.ok()) return rebuilt.status();
  result.graph = std::move(rebuilt).value();
  return result;
}

Result<InjectionResult> InjectJointStructuralOutliers(
    const AttributedGraph& graph, int count, int neighbors_per_outlier,
    Rng* rng) {
  const int n = graph.num_nodes();
  if (count <= 0 || neighbors_per_outlier <= 0) {
    return Status::InvalidArgument(
        "need count > 0 and neighbors_per_outlier > 0");
  }
  if (neighbors_per_outlier > n - 1) {
    return Status::InvalidArgument(
        "neighbors_per_outlier " + std::to_string(neighbors_per_outlier) +
        " exceeds the " + std::to_string(std::max(0, n - 1)) +
        " available non-self targets");
  }
  std::vector<uint8_t> taken = ExistingLabels(graph);
  Result<std::vector<int>> victims = TakeVictims(n, count, &taken, rng);
  if (!victims.ok()) return victims.status();

  std::vector<std::pair<int, int>> edges = graph.UndirectedEdgeList();
  std::vector<uint8_t> structural(n, 0);
  for (int victim : victims.value()) {
    structural[victim] = 1;
    // m distinct targets drawn uniformly from every node but the victim;
    // targets may be normal nodes or other victims (FAGAD semantics), and
    // an already-existing edge is simply deduplicated at Build() time.
    std::set<int> targets;
    while (static_cast<int>(targets.size()) < neighbors_per_outlier) {
      const int target = static_cast<int>(rng->UniformInt(n));
      if (target == victim) continue;
      if (targets.insert(target).second) edges.emplace_back(victim, target);
    }
  }

  InjectionResult result;
  result.structural = structural;
  result.contextual.assign(n, 0);
  result.combined = Or(structural, ExistingLabels(graph));
  Result<AttributedGraph> rebuilt = Rebuild(
      graph, edges, graph.attributes().Clone(), result.combined);
  if (!rebuilt.ok()) return rebuilt.status();
  result.graph = std::move(rebuilt).value();
  return result;
}

Result<InjectionResult> InjectStandard(const AttributedGraph& graph,
                                       int num_cliques, int clique_size,
                                       int candidate_set_size, Rng* rng) {
  Result<InjectionResult> structural =
      InjectStructuralOutliers(graph, num_cliques, clique_size, rng);
  if (!structural.ok()) return structural.status();
  Result<InjectionResult> contextual = InjectContextualOutliers(
      structural.value().graph, num_cliques * clique_size, candidate_set_size,
      DistanceKind::kEuclidean, rng);
  if (!contextual.ok()) return contextual.status();

  InjectionResult result = std::move(contextual).value();
  result.structural = structural.value().structural;
  return result;
}

Result<InjectionResult> InjectStructuralByEdgeReplacement(
    const AttributedGraph& graph, int count, Rng* rng) {
  if (!graph.has_communities()) {
    return Status::FailedPrecondition(
        "edge-replacement injection requires community labels");
  }
  const int n = graph.num_nodes();
  std::vector<uint8_t> taken = ExistingLabels(graph);
  Result<std::vector<int>> victims = TakeVictims(n, count, &taken, rng);
  if (!victims.ok()) return victims.status();
  std::vector<uint8_t> structural(n, 0);
  for (int v : victims.value()) structural[v] = 1;

  const auto& communities = graph.communities();
  // Per-community membership lists for uniform other-community sampling.
  // Victims are excluded as targets so each victim's final degree equals
  // its original degree exactly (the property this injection exists for).
  const int num_communities = graph.NumCommunities();
  std::vector<std::vector<int>> members(num_communities);
  for (int i = 0; i < n; ++i) {
    if (!structural[i]) members[communities[i]].push_back(i);
  }

  // Keep only edges with no victim endpoint, then rewire each victim with
  // its original degree toward other communities.
  std::vector<std::pair<int, int>> edges;
  for (const auto& [u, v] : graph.UndirectedEdgeList()) {
    if (!structural[u] && !structural[v]) edges.emplace_back(u, v);
  }
  for (int victim : victims.value()) {
    const int degree = graph.Degree(victim);
    const int own = communities[victim];
    std::set<int> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < degree && guard++ < degree * 200) {
      int community = static_cast<int>(rng->UniformInt(num_communities));
      if (community == own || members[community].empty()) continue;
      const int target = members[community][rng->UniformInt(
          static_cast<int64_t>(members[community].size()))];
      if (target == victim) continue;
      if (chosen.insert(target).second) edges.emplace_back(victim, target);
    }
  }

  InjectionResult result;
  result.structural = structural;
  result.contextual.assign(n, 0);
  result.combined = Or(structural, ExistingLabels(graph));
  Result<AttributedGraph> rebuilt = Rebuild(
      graph, edges, graph.attributes().Clone(), result.combined);
  if (!rebuilt.ok()) return rebuilt.status();
  result.graph = std::move(rebuilt).value();
  return result;
}

Result<GroupedInjectionResult> InjectCliqueSizeGroups(
    const AttributedGraph& graph, const std::vector<int>& clique_sizes,
    int group_size, Rng* rng) {
  const int n = graph.num_nodes();
  std::vector<uint8_t> taken = ExistingLabels(graph);
  std::vector<std::pair<int, int>> edges = graph.UndirectedEdgeList();

  GroupedInjectionResult result;
  result.combined = ExistingLabels(graph);
  for (int q : clique_sizes) {
    if (q < 2) return Status::InvalidArgument("clique size must be >= 2");
    // Round the group to whole cliques covering >= group_size outliers.
    const int cliques = (group_size + q - 1) / q;
    Result<std::vector<int>> victims =
        TakeVictims(n, cliques * q, &taken, rng);
    if (!victims.ok()) return victims.status();
    for (int c = 0; c < cliques; ++c) {
      for (int a = 0; a < q; ++a) {
        const int u = victims.value()[c * q + a];
        result.combined[u] = 1;
        for (int b = a + 1; b < q; ++b) {
          edges.emplace_back(u, victims.value()[c * q + b]);
        }
      }
    }
    result.groups.push_back(std::move(victims).value());
  }

  Result<AttributedGraph> rebuilt = Rebuild(
      graph, edges, graph.attributes().Clone(), result.combined);
  if (!rebuilt.ok()) return rebuilt.status();
  result.graph = std::move(rebuilt).value();
  return result;
}

}  // namespace vgod::injection
