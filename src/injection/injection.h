#ifndef VGOD_INJECTION_INJECTION_H_
#define VGOD_INJECTION_INJECTION_H_

#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "graph/graph.h"

namespace vgod::injection {

/// Distance used when selecting the replacement attribute vector for a
/// contextual outlier. The paper shows Euclidean distance is a key cause of
/// the L2-norm data leakage (Theorem 1) and suggests cosine as a
/// mitigation (Fig 3).
enum class DistanceKind { kEuclidean, kCosine };

/// Outcome of an injection: the perturbed graph plus per-type ground-truth
/// labels. `graph.outlier_labels()` is set to `combined`.
struct InjectionResult {
  AttributedGraph graph;
  std::vector<uint8_t> structural;  // 1 where the node is a structural outlier
  std::vector<uint8_t> contextual;  // 1 where the node is a contextual outlier
  std::vector<uint8_t> combined;    // structural OR contextual
};

/// Structural outlier injection of paper §IV-A1: `num_cliques` (p) cliques
/// of `clique_size` (q) nodes each, chosen uniformly from nodes that are
/// not already outliers, made fully connected. The chosen nodes keep their
/// attributes; their degree jumps to >= q-1 — the leakage the paper
/// analyzes.
Result<InjectionResult> InjectStructuralOutliers(const AttributedGraph& graph,
                                                 int num_cliques,
                                                 int clique_size, Rng* rng);

/// Contextual outlier injection of paper §IV-B1: for each of `count`
/// victims, sample `candidate_set_size` (k) other nodes and replace the
/// victim's attribute vector by the candidate's vector farthest away under
/// `distance`. Large k + Euclidean distance biases replacements toward
/// large L2 norms (Theorem 1).
Result<InjectionResult> InjectContextualOutliers(const AttributedGraph& graph,
                                                 int count,
                                                 int candidate_set_size,
                                                 DistanceKind distance,
                                                 Rng* rng);

/// Joint-structural outlier injection (FAGAD's gen_joint_structural_outliers,
/// the third regime of the benchmark matrix next to contextual/structural):
/// `count` victims are sampled from the non-outlier nodes and each is wired
/// to `neighbors_per_outlier` (m) distinct other nodes sampled uniformly
/// from the whole graph. Unlike the clique injection, the victims do not
/// form a dense block among themselves — each one *joins* m scattered,
/// otherwise-unrelated regions, so community-aware detectors see a node
/// whose neighborhood is structurally incoherent while pure degree probes
/// see a much weaker signal than a q-clique. Only the victims are labeled.
/// Requires 0 < neighbors_per_outlier <= |V| - 1.
Result<InjectionResult> InjectJointStructuralOutliers(
    const AttributedGraph& graph, int count, int neighbors_per_outlier,
    Rng* rng);

/// The standard combined protocol used by the paper's UNOD experiment
/// (§VI-B1): p*q structural outliers, then an equal number of contextual
/// outliers on disjoint victims, with k=candidate_set_size and Euclidean
/// distance.
Result<InjectionResult> InjectStandard(const AttributedGraph& graph,
                                       int num_cliques, int clique_size,
                                       int candidate_set_size, Rng* rng);

/// The paper's new leakage-free structural injection (§VI-D1): each
/// victim's neighbors are replaced by nodes sampled uniformly from *other*
/// communities; the victim's degree is unchanged. Requires community
/// labels. `count` victims (the paper uses 10% of nodes).
Result<InjectionResult> InjectStructuralByEdgeReplacement(
    const AttributedGraph& graph, int count, Rng* rng);

/// Multi-group structural injection for the clique-size sweep of paper
/// §VI-C1: one group of structural outliers per entry of `clique_sizes`,
/// each group holding `group_size` outliers (the paper uses 2% of |V|).
struct GroupedInjectionResult {
  AttributedGraph graph;
  /// groups[g] lists the outlier node ids injected with clique size
  /// clique_sizes[g].
  std::vector<std::vector<int>> groups;
  std::vector<uint8_t> combined;
};

Result<GroupedInjectionResult> InjectCliqueSizeGroups(
    const AttributedGraph& graph, const std::vector<int>& clique_sizes,
    int group_size, Rng* rng);

}  // namespace vgod::injection

#endif  // VGOD_INJECTION_INJECTION_H_
