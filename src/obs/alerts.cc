#include "obs/alerts.h"

#include <cmath>
#include <set>

#include "obs/metrics.h"

namespace vgod::obs {
namespace {

bool ValidRuleName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<AlertRule::Comparator> ParseComparator(const std::string& text) {
  if (text == ">") return AlertRule::Comparator::kGreater;
  if (text == ">=") return AlertRule::Comparator::kGreaterEqual;
  if (text == "<") return AlertRule::Comparator::kLess;
  if (text == "<=") return AlertRule::Comparator::kLessEqual;
  return Status::InvalidArgument("alert rule op must be one of > >= < <= (got '" +
                                 text + "')");
}

}  // namespace

bool AlertRule::Breached(double value) const {
  switch (comparator) {
    case Comparator::kGreater: return value > threshold;
    case Comparator::kGreaterEqual: return value >= threshold;
    case Comparator::kLess: return value < threshold;
    case Comparator::kLessEqual: return value <= threshold;
  }
  return false;
}

const char* AlertRule::ComparatorText() const {
  switch (comparator) {
    case Comparator::kGreater: return ">";
    case Comparator::kGreaterEqual: return ">=";
    case Comparator::kLess: return "<";
    case Comparator::kLessEqual: return "<=";
  }
  return "?";
}

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

Result<std::vector<AlertRule>> ParseAlertRules(const std::string& json_text) {
  Result<JsonValue> parsed = ParseJson(json_text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("alert rules are not valid JSON: " +
                                   parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object() || !root.at("rules").is_array()) {
    return Status::InvalidArgument(
        "alert rules must be an object with a 'rules' array");
  }
  std::vector<AlertRule> rules;
  std::set<std::string> names;
  for (const JsonValue& node : root.at("rules").array()) {
    if (!node.is_object()) {
      return Status::InvalidArgument("alert rule entries must be objects");
    }
    AlertRule rule;
    if (!node.at("name").is_string() ||
        !ValidRuleName(node.at("name").string_value())) {
      return Status::InvalidArgument(
          "alert rule name must match [A-Za-z0-9_.-]{1,64}");
    }
    rule.name = node.at("name").string_value();
    if (!names.insert(rule.name).second) {
      return Status::InvalidArgument("duplicate alert rule name '" +
                                     rule.name + "'");
    }
    if (!node.at("metric").is_string() ||
        node.at("metric").string_value().empty() ||
        node.at("metric").string_value().size() > 256) {
      return Status::InvalidArgument("alert rule '" + rule.name +
                                     "' needs a non-empty metric name");
    }
    rule.metric = node.at("metric").string_value();
    if (!node.at("op").is_string()) {
      return Status::InvalidArgument("alert rule '" + rule.name +
                                     "' needs a comparator string 'op'");
    }
    Result<AlertRule::Comparator> comparator =
        ParseComparator(node.at("op").string_value());
    if (!comparator.ok()) return comparator.status();
    rule.comparator = comparator.value();
    if (!node.at("threshold").is_number() ||
        !std::isfinite(node.at("threshold").number())) {
      return Status::InvalidArgument("alert rule '" + rule.name +
                                     "' needs a finite numeric threshold");
    }
    rule.threshold = node.at("threshold").number();
    if (node.at("for_seconds").is_null()) {
      rule.for_seconds = 0.0;
    } else if (node.at("for_seconds").is_number() &&
               std::isfinite(node.at("for_seconds").number()) &&
               node.at("for_seconds").number() >= 0.0 &&
               node.at("for_seconds").number() <= 86400.0) {
      rule.for_seconds = node.at("for_seconds").number();
    } else {
      return Status::InvalidArgument(
          "alert rule '" + rule.name +
          "' for_seconds must be a number in [0, 86400]");
    }
    rules.push_back(std::move(rule));
  }
  if (rules.size() > 256) {
    return Status::InvalidArgument("too many alert rules (max 256)");
  }
  return rules;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), runtime_(rules_.size()) {}

std::vector<AlertTransition> AlertEngine::Evaluate(
    const std::function<double(const std::string&)>& value_of,
    double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertTransition> transitions;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    RuleRuntime& rt = runtime_[i];
    const double value = value_of(rule.metric);
    const bool available = std::isfinite(value);
    rt.has_value = available;
    if (available) rt.last_value = value;
    const bool breached = available && rule.Breached(value);

    const auto emit = [&](const char* type) {
      AlertTransition transition;
      transition.rule = rule.name;
      transition.metric = rule.metric;
      transition.type = type;
      transition.value = rt.last_value;
      transition.threshold = rule.threshold;
      transition.at_seconds = now_seconds;
      transitions.push_back(std::move(transition));
    };

    switch (rt.state) {
      case AlertState::kInactive:
        if (breached) {
          rt.pending_since = now_seconds;
          rt.state = AlertState::kPending;
          // Zero hold time fires immediately — fall through the pending
          // check below on this same tick.
        }
        if (rt.state != AlertState::kPending) break;
        [[fallthrough]];
      case AlertState::kPending:
        if (!breached) {
          rt.state = AlertState::kInactive;
          break;
        }
        if (now_seconds - rt.pending_since >= rule.for_seconds) {
          rt.state = AlertState::kFiring;
          rt.firing_since = now_seconds;
          ++rt.fired_total;
          ++transitions_firing_;
          emit("firing");
        }
        break;
      case AlertState::kFiring:
        if (!breached) {
          rt.state = AlertState::kInactive;
          ++rt.resolved_total;
          ++transitions_resolved_;
          emit("resolved");
        }
        break;
    }
  }
  return transitions;
}

void AlertEngine::PublishMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t firing = 0;
  int64_t pending = 0;
  for (const RuleRuntime& rt : runtime_) {
    if (rt.state == AlertState::kFiring) ++firing;
    if (rt.state == AlertState::kPending) ++pending;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("alerts.rules")
      ->Set(static_cast<double>(rules_.size()));
  registry.GetGauge("alerts.firing")->Set(static_cast<double>(firing));
  registry.GetGauge("alerts.pending")->Set(static_cast<double>(pending));
  registry.GetGauge("alerts.transitions.firing.total")
      ->Set(static_cast<double>(transitions_firing_));
  registry.GetGauge("alerts.transitions.resolved.total")
      ->Set(static_cast<double>(transitions_resolved_));
}

JsonValue AlertTransition::ToJson() const {
  JsonValue::Object out;
  out["rule"] = JsonValue(rule);
  out["metric"] = JsonValue(metric);
  out["type"] = JsonValue(type);
  out["value"] = JsonValue(value);
  out["threshold"] = JsonValue(threshold);
  out["at_seconds"] = JsonValue(at_seconds);
  return JsonValue(std::move(out));
}

JsonValue AlertEngine::StateJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue::Array rules;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    const RuleRuntime& rt = runtime_[i];
    JsonValue::Object entry;
    entry["name"] = JsonValue(rule.name);
    entry["metric"] = JsonValue(rule.metric);
    entry["op"] = JsonValue(std::string(rule.ComparatorText()));
    entry["threshold"] = JsonValue(rule.threshold);
    entry["for_seconds"] = JsonValue(rule.for_seconds);
    entry["state"] = JsonValue(std::string(AlertStateName(rt.state)));
    entry["metric_available"] = JsonValue(rt.has_value);
    entry["last_value"] = JsonValue(rt.last_value);
    if (rt.state == AlertState::kPending) {
      entry["pending_since_seconds"] = JsonValue(rt.pending_since);
    }
    if (rt.state == AlertState::kFiring) {
      entry["firing_since_seconds"] = JsonValue(rt.firing_since);
    }
    entry["fired_total"] = JsonValue(static_cast<double>(rt.fired_total));
    entry["resolved_total"] =
        JsonValue(static_cast<double>(rt.resolved_total));
    rules.push_back(JsonValue(std::move(entry)));
  }
  JsonValue::Object out;
  out["rules"] = JsonValue(std::move(rules));
  out["transitions_firing_total"] =
      JsonValue(static_cast<double>(transitions_firing_));
  out["transitions_resolved_total"] =
      JsonValue(static_cast<double>(transitions_resolved_));
  return JsonValue(std::move(out));
}

}  // namespace vgod::obs
