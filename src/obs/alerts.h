#ifndef VGOD_OBS_ALERTS_H_
#define VGOD_OBS_ALERTS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/json.h"

namespace vgod::obs {

/// One declarative alert rule: fire when `metric` compares true against
/// `threshold` continuously for `for_seconds`.
struct AlertRule {
  enum class Comparator { kGreater, kGreaterEqual, kLess, kLessEqual };

  std::string name;    ///< [A-Za-z0-9_.-]{1,64}; unique within a rule set.
  std::string metric;  ///< Registry counter/gauge name, e.g. "drift.score.psi".
  Comparator comparator = Comparator::kGreater;
  double threshold = 0.0;
  double for_seconds = 0.0;  ///< 0 = fire on first breach.

  bool Breached(double value) const;
  const char* ComparatorText() const;
};

/// Parses {"rules":[{"name":...,"metric":...,"op":">","threshold":0.25,
/// "for_seconds":5},...]} with full validation: unknown comparators,
/// non-finite thresholds, negative durations, duplicate or malformed
/// names, and non-object rules all return InvalidArgument — hostile
/// configs become a Status, never a crash.
Result<std::vector<AlertRule>> ParseAlertRules(const std::string& json_text);

/// Firing/resolved lifecycle of one rule.
enum class AlertState { kInactive, kPending, kFiring };
const char* AlertStateName(AlertState state);

/// An observable state-machine edge: a rule started firing or resolved.
/// Pending entry/exit is visible in /debug/alerts but does not notify.
struct AlertTransition {
  std::string rule;
  std::string metric;
  std::string type;  ///< "firing" | "resolved"
  double value = 0.0;
  double threshold = 0.0;
  double at_seconds = 0.0;

  JsonValue ToJson() const;
};

/// Evaluates a rule set against sampled metric values. Time is injected
/// (`now_seconds`) so the `for`-duration logic is deterministic under
/// test; the serving monitor loop passes wall-clock seconds. All state
/// transitions happen inside Evaluate() under one mutex — safe to call
/// from the monitor thread while /debug/alerts renders from dispatch
/// threads.
class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  /// Samples every rule's metric through `value_of` (NaN = metric
  /// unavailable → rule goes inactive), advances the state machines, and
  /// returns the firing/resolved edges crossed at this instant.
  std::vector<AlertTransition> Evaluate(
      const std::function<double(const std::string&)>& value_of,
      double now_seconds);

  /// Publishes alerts.* gauges/counters for the current states.
  void PublishMetrics() const;

  /// /debug/alerts payload: per-rule state, last value, pending-since /
  /// firing-since timestamps, and lifetime transition counts.
  JsonValue StateJson() const;

  size_t rule_count() const { return rules_.size(); }

 private:
  struct RuleRuntime {
    AlertState state = AlertState::kInactive;
    double pending_since = 0.0;
    double firing_since = 0.0;
    double last_value = 0.0;
    bool has_value = false;
    int64_t fired_total = 0;
    int64_t resolved_total = 0;
  };

  std::vector<AlertRule> rules_;

  mutable std::mutex mu_;
  std::vector<RuleRuntime> runtime_;
  int64_t transitions_firing_ = 0;
  int64_t transitions_resolved_ = 0;
};

}  // namespace vgod::obs

#endif  // VGOD_OBS_ALERTS_H_
