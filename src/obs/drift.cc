#include "obs/drift.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace vgod::obs {
namespace {

std::vector<double> NormalizeCounts(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += std::max<int64_t>(0, c);
  std::vector<double> mix(counts.size(), 0.0);
  if (total <= 0) return mix;
  for (size_t i = 0; i < counts.size(); ++i) {
    mix[i] = static_cast<double>(std::max<int64_t>(0, counts[i])) /
             static_cast<double>(total);
  }
  return mix;
}

}  // namespace

DriftMonitor::DriftMonitor(const DriftConfig& config) : config_(config) {
  config_.window_buckets = std::max(1, config_.window_buckets);
  config_.rotate_seconds = std::max(0.001, config_.rotate_seconds);
  config_.min_window_count = std::max<int64_t>(1, config_.min_window_count);
  window_.reserve(static_cast<size_t>(config_.window_buckets));
  for (int i = 0; i < config_.window_buckets; ++i) {
    window_.emplace_back(config_.sketch_alpha);
  }
}

void DriftMonitor::SetBaseline(ModelFingerprint fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  baseline_ = std::move(fingerprint);
  has_baseline_ = true;
}

bool DriftMonitor::has_baseline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_baseline_;
}

void DriftMonitor::RecordScore(double value) {
  if (!std::isfinite(value)) return;
  std::lock_guard<std::mutex> lock(mu_);
  window_[current_bucket_].Insert(value);
  ++total_scores_;
}

bool DriftMonitor::MaybeRotate(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_rotation_seconds_ < 0.0) {
    last_rotation_seconds_ = now_seconds;
    return false;
  }
  if (now_seconds - last_rotation_seconds_ < config_.rotate_seconds) {
    return false;
  }
  last_rotation_seconds_ = now_seconds;
  current_bucket_ = (current_bucket_ + 1) % window_.size();
  window_[current_bucket_].Clear();
  window_start_events_ = lifetime_events_;
  return true;
}

void DriftMonitor::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  current_bucket_ = (current_bucket_ + 1) % window_.size();
  window_[current_bucket_].Clear();
  window_start_events_ = lifetime_events_;
}

void DriftMonitor::SetLiveDegreeHistogram(std::vector<double> histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  live_degree_hist_ = std::move(histogram);
}

void DriftMonitor::RecordEventCounts(std::vector<int64_t> cumulative) {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_start_events_.size() < cumulative.size()) {
    window_start_events_.resize(cumulative.size(), 0);
  }
  lifetime_events_ = std::move(cumulative);
}

QuantileSketch DriftMonitor::MergedWindowLocked() const {
  QuantileSketch merged(config_.sketch_alpha);
  for (const QuantileSketch& bucket : window_) {
    merged.Merge(bucket);  // Same alpha throughout: cannot fail.
  }
  return merged;
}

DriftReport DriftMonitor::EvaluateLocked() const {
  DriftReport report;
  report.baseline_present = has_baseline_;
  report.total_scores = total_scores_;
  const QuantileSketch merged = MergedWindowLocked();
  report.window_count = merged.Count();
  if (has_baseline_ && report.window_count >= config_.min_window_count &&
      baseline_.scores.Count() > 0) {
    report.score_psi = PopulationStabilityIndex(baseline_.scores, merged);
    report.score_ks = KolmogorovSmirnovDistance(baseline_.scores, merged);
  }
  if (has_baseline_ && !baseline_.degree_hist.empty() &&
      !live_degree_hist_.empty()) {
    report.degree_distance =
        HistogramDistance(baseline_.degree_hist, live_degree_hist_);
  }
  if (!lifetime_events_.empty()) {
    int64_t lifetime_total = 0;
    for (int64_t c : lifetime_events_) lifetime_total += std::max<int64_t>(0, c);
    if (lifetime_total > 0) {
      std::vector<int64_t> window_events(lifetime_events_.size(), 0);
      for (size_t i = 0; i < lifetime_events_.size(); ++i) {
        const int64_t start = i < window_start_events_.size()
                                  ? window_start_events_[i]
                                  : 0;
        window_events[i] = lifetime_events_[i] - start;
      }
      int64_t window_total = 0;
      for (int64_t c : window_events) window_total += std::max<int64_t>(0, c);
      if (window_total > 0) {
        report.event_mix_distance = HistogramDistance(
            NormalizeCounts(lifetime_events_), NormalizeCounts(window_events));
      }
    }
  }
  return report;
}

DriftReport DriftMonitor::Evaluate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateLocked();
}

DriftReport DriftMonitor::EvaluateAndPublish() const {
  const DriftReport report = Evaluate();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("drift.baseline.present")
      ->Set(report.baseline_present ? 1.0 : 0.0);
  registry.GetGauge("drift.window.count")
      ->Set(static_cast<double>(report.window_count));
  registry.GetGauge("drift.score.psi")->Set(report.score_psi);
  registry.GetGauge("drift.score.ks")->Set(report.score_ks);
  registry.GetGauge("drift.degree.distance")
      ->Set(std::max(0.0, report.degree_distance));
  registry.GetGauge("drift.event_mix.distance")
      ->Set(std::max(0.0, report.event_mix_distance));
  registry.GetCounter("drift.evaluations.total")->Increment();
  return report;
}

JsonValue DriftMonitor::ReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const DriftReport report = EvaluateLocked();
  JsonValue::Object out;
  out["status"] = JsonValue(
      std::string(report.baseline_present ? "ok" : "baseline_missing"));
  out["baseline_present"] = JsonValue(report.baseline_present);
  out["window_count"] = JsonValue(static_cast<double>(report.window_count));
  out["total_scores"] = JsonValue(static_cast<double>(report.total_scores));
  out["score_psi"] = JsonValue(report.score_psi);
  out["score_ks"] = JsonValue(report.score_ks);
  out["degree_distance"] = JsonValue(report.degree_distance);
  out["event_mix_distance"] = JsonValue(report.event_mix_distance);
  out["window_buckets"] =
      JsonValue(static_cast<double>(config_.window_buckets));
  out["rotate_seconds"] = JsonValue(config_.rotate_seconds);
  out["min_window_count"] =
      JsonValue(static_cast<double>(config_.min_window_count));
  out["live"] = MergedWindowLocked().SummaryJson();
  if (has_baseline_) {
    JsonValue::Object baseline;
    baseline["scores"] = baseline_.scores.SummaryJson();
    baseline["num_nodes"] =
        JsonValue(static_cast<double>(baseline_.num_nodes));
    baseline["num_edges"] =
        JsonValue(static_cast<double>(baseline_.num_edges));
    baseline["attribute_dim"] =
        JsonValue(static_cast<double>(baseline_.attr_mean.size()));
    out["baseline"] = JsonValue(std::move(baseline));
  }
  return JsonValue(std::move(out));
}

}  // namespace vgod::obs
