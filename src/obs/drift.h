#ifndef VGOD_OBS_DRIFT_H_
#define VGOD_OBS_DRIFT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fingerprint.h"
#include "obs/json.h"
#include "obs/sketch.h"

namespace vgod::obs {

struct DriftConfig {
  /// Relative accuracy of the live-score sketches. Must match the
  /// fingerprint sketch alpha for Merge-free comparison (PSI/KS only use
  /// quantile / CDF queries, so a mismatch degrades precision, not
  /// correctness).
  double sketch_alpha = 0.01;
  /// The sliding window is a ring of sub-sketches; scores land in the
  /// newest, evaluation merges all of them, rotation retires the oldest.
  /// Window span = window_buckets * rotate_seconds.
  int window_buckets = 6;
  double rotate_seconds = 10.0;
  /// PSI/KS are reported as 0 until the merged window holds at least
  /// this many scores (tiny samples make both statistics pure noise).
  int64_t min_window_count = 32;
};

/// One evaluation of the live stream against the training baseline.
struct DriftReport {
  bool baseline_present = false;
  int64_t window_count = 0;
  int64_t total_scores = 0;
  double score_psi = 0.0;
  double score_ks = 0.0;
  /// Total-variation distance of the live degree histogram vs the
  /// fingerprint's; negative when either side is unavailable.
  double degree_distance = -1.0;
  /// Total-variation distance of the window event mix vs the lifetime
  /// event mix; negative until ingest traffic exists.
  double event_mix_distance = -1.0;
};

/// Serving-side model drift tracker. Dispatch threads record served
/// scores; the server's monitor loop drives rotation, structural inputs,
/// and evaluation. All state is guarded by one mutex — every entry point
/// is safe from any thread, and evaluation results depend only on the
/// recorded data, never on thread interleaving of distinct scores.
class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftConfig& config = DriftConfig());

  /// Installs the training fingerprint restored from the bundle. Without
  /// it the monitor still tracks the live window but reports
  /// baseline_missing.
  void SetBaseline(ModelFingerprint fingerprint);
  bool has_baseline() const;

  /// Records one served score into the newest window bucket.
  void RecordScore(double value);

  /// Advances the ring when `now_seconds` has moved past the rotation
  /// interval. Injected time keeps tests deterministic. Returns true
  /// when a rotation happened.
  bool MaybeRotate(double now_seconds);
  /// Unconditional rotation (tests / forced window turnover).
  void Rotate();

  /// Latest degree histogram of the served graph (normalized,
  /// kDegreeBuckets entries) — fed from the ingest path.
  void SetLiveDegreeHistogram(std::vector<double> histogram);

  /// Cumulative per-type ingest event counts (add_edge, remove_edge,
  /// add_node, update_attributes). The monitor snapshots the counts at
  /// each rotation; event-mix drift is the distance between the mix of
  /// events inside the window and the lifetime mix.
  void RecordEventCounts(std::vector<int64_t> cumulative);

  DriftReport Evaluate() const;

  /// Evaluate() + publish drift.* gauges into the global registry.
  DriftReport EvaluateAndPublish() const;

  /// Full /debug/drift payload: report fields, status
  /// ("ok"|"baseline_missing"), live window summary, and the baseline
  /// score summary when present.
  JsonValue ReportJson() const;

  const DriftConfig& config() const { return config_; }

 private:
  QuantileSketch MergedWindowLocked() const;
  DriftReport EvaluateLocked() const;

  DriftConfig config_;

  mutable std::mutex mu_;
  bool has_baseline_ = false;
  ModelFingerprint baseline_;
  std::vector<QuantileSketch> window_;
  size_t current_bucket_ = 0;
  double last_rotation_seconds_ = -1.0;
  int64_t total_scores_ = 0;
  std::vector<double> live_degree_hist_;
  std::vector<int64_t> lifetime_events_;
  std::vector<int64_t> window_start_events_;
};

}  // namespace vgod::obs

#endif  // VGOD_OBS_DRIFT_H_
