#include "obs/fingerprint.h"

#include <algorithm>
#include <cmath>

namespace vgod::obs {
namespace {

int DegreeBucket(int64_t degree) {
  if (degree <= 0) return 0;
  int bucket = 1;
  while (degree > 1 && bucket < kDegreeBuckets - 1) {
    degree >>= 1;
    ++bucket;
  }
  return bucket;
}

Status LoadDoubleArray(const JsonValue& node, const char* key,
                       std::vector<double>* out) {
  const JsonValue& arr = node.at(key);
  if (arr.is_null()) return Status::Ok();
  if (!arr.is_array()) {
    return Status::InvalidArgument(std::string("fingerprint '") + key +
                                   "' is not an array");
  }
  out->reserve(arr.array().size());
  for (const JsonValue& item : arr.array()) {
    if (!item.is_number() || !std::isfinite(item.number())) {
      return Status::InvalidArgument(std::string("fingerprint '") + key +
                                     "' holds a non-finite entry");
    }
    out->push_back(item.number());
  }
  return Status::Ok();
}

JsonValue DumpDoubleArray(const std::vector<double>& values) {
  JsonValue::Array arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return JsonValue(std::move(arr));
}

}  // namespace

std::vector<double> DegreeHistogram(const std::vector<int64_t>& degrees) {
  std::vector<double> hist(kDegreeBuckets, 0.0);
  if (degrees.empty()) return hist;
  for (int64_t degree : degrees) hist[DegreeBucket(degree)] += 1.0;
  const double total = static_cast<double>(degrees.size());
  for (double& mass : hist) mass /= total;
  return hist;
}

double HistogramDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  const size_t shared = std::min(a.size(), b.size());
  double distance = 0.0;
  for (size_t i = 0; i < shared; ++i) distance += std::fabs(a[i] - b[i]);
  for (size_t i = shared; i < a.size(); ++i) distance += std::fabs(a[i]);
  for (size_t i = shared; i < b.size(); ++i) distance += std::fabs(b[i]);
  return std::min(1.0, 0.5 * distance);
}

JsonValue ModelFingerprint::ToJson() const {
  JsonValue::Object out;
  out["version"] = JsonValue(static_cast<int64_t>(1));
  out["scores"] = scores.ToJson();
  out["attr_mean"] = DumpDoubleArray(attr_mean);
  out["attr_std"] = DumpDoubleArray(attr_std);
  out["degree_hist"] = DumpDoubleArray(degree_hist);
  out["num_nodes"] = JsonValue(static_cast<double>(num_nodes));
  out["num_edges"] = JsonValue(static_cast<double>(num_edges));
  return JsonValue(std::move(out));
}

Result<ModelFingerprint> ModelFingerprint::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("fingerprint is not an object");
  }
  ModelFingerprint fp;
  Result<QuantileSketch> scores = QuantileSketch::FromJson(value.at("scores"));
  if (!scores.ok()) {
    return Status::InvalidArgument("fingerprint scores: " +
                                   scores.status().message());
  }
  fp.scores = std::move(scores).value();
  VGOD_RETURN_IF_ERROR(LoadDoubleArray(value, "attr_mean", &fp.attr_mean));
  VGOD_RETURN_IF_ERROR(LoadDoubleArray(value, "attr_std", &fp.attr_std));
  VGOD_RETURN_IF_ERROR(LoadDoubleArray(value, "degree_hist", &fp.degree_hist));
  if (fp.attr_mean.size() != fp.attr_std.size()) {
    return Status::InvalidArgument(
        "fingerprint attr_mean/attr_std length mismatch");
  }
  if (value.at("num_nodes").is_number()) {
    fp.num_nodes = static_cast<int64_t>(value.at("num_nodes").number());
  }
  if (value.at("num_edges").is_number()) {
    fp.num_edges = static_cast<int64_t>(value.at("num_edges").number());
  }
  return fp;
}

ModelFingerprint BuildFingerprint(const std::vector<float>& scores,
                                  const float* attributes, int64_t rows,
                                  int64_t cols,
                                  const std::vector<int64_t>& degrees) {
  ModelFingerprint fp;
  for (float score : scores) {
    fp.scores.Insert(static_cast<double>(score));
  }
  if (attributes != nullptr && rows > 0 && cols > 0) {
    fp.attr_mean.assign(static_cast<size_t>(cols), 0.0);
    fp.attr_std.assign(static_cast<size_t>(cols), 0.0);
    std::vector<int64_t> finite(static_cast<size_t>(cols), 0);
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = attributes + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        const double v = static_cast<double>(row[c]);
        if (!std::isfinite(v)) continue;
        fp.attr_mean[c] += v;
        fp.attr_std[c] += v * v;
        ++finite[c];
      }
    }
    for (int64_t c = 0; c < cols; ++c) {
      if (finite[c] == 0) continue;
      const double n = static_cast<double>(finite[c]);
      const double mean = fp.attr_mean[c] / n;
      const double variance =
          std::max(0.0, fp.attr_std[c] / n - mean * mean);
      fp.attr_mean[c] = mean;
      fp.attr_std[c] = std::sqrt(variance);
    }
  }
  fp.degree_hist = DegreeHistogram(degrees);
  fp.num_nodes = static_cast<int64_t>(degrees.size());
  int64_t edge_total = 0;
  for (int64_t degree : degrees) edge_total += degree;
  fp.num_edges = edge_total;
  return fp;
}

}  // namespace vgod::obs
