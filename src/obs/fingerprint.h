#ifndef VGOD_OBS_FINGERPRINT_H_
#define VGOD_OBS_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/json.h"
#include "obs/sketch.h"

namespace vgod::obs {

/// Number of log2 degree buckets in a fingerprint / drift histogram:
/// bucket 0 holds degree 0, bucket j (1 <= j < 15) holds degrees in
/// [2^(j-1), 2^j), and the last bucket holds everything >= 2^14.
inline constexpr int kDegreeBuckets = 16;

/// Normalized degree-distribution histogram (sums to 1; all zeros for an
/// empty degree list).
std::vector<double> DegreeHistogram(const std::vector<int64_t>& degrees);

/// Total-variation distance between two normalized histograms of equal
/// length: 0.5 * sum |a_i - b_i|, in [0, 1]. Mismatched lengths compare
/// the shared prefix and count the excess as shifted mass.
double HistogramDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Statistical snapshot of what a model was fitted on, captured when the
/// bundle is exported and embedded in its config JSON (key
/// "fingerprint"). At serve time the drift monitor compares the live
/// stream against it; bundles from before this format simply lack the
/// key and drift reports `baseline_missing` instead of failing.
struct ModelFingerprint {
  /// Quantile sketch of the training-time anomaly scores.
  QuantileSketch scores;
  /// Per-attribute-column mean / stddev over the training graph.
  std::vector<double> attr_mean;
  std::vector<double> attr_std;
  /// Normalized log2 degree histogram (kDegreeBuckets entries).
  std::vector<double> degree_hist;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;

  JsonValue ToJson() const;
  static Result<ModelFingerprint> FromJson(const JsonValue& value);
};

/// Builds a fingerprint from the training artifacts. `attributes` is a
/// row-major rows x cols float matrix (may be null when cols == 0);
/// non-finite entries are skipped from the moment accumulation.
ModelFingerprint BuildFingerprint(const std::vector<float>& scores,
                                  const float* attributes, int64_t rows,
                                  int64_t cols,
                                  const std::vector<int64_t>& degrees);

}  // namespace vgod::obs

#endif  // VGOD_OBS_FINGERPRINT_H_
