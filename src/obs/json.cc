#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vgod::obs {
namespace {

void Dump(const JsonValue& value, std::string* out);

void DumpObject(const JsonValue::Object& object, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, member] : object) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(out, key);
    out->push_back(':');
    Dump(member, out);
  }
  out->push_back('}');
}

void DumpArray(const JsonValue::Array& array, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < array.size(); ++i) {
    if (i > 0) out->push_back(',');
    Dump(array[i], out);
  }
  out->push_back(']');
}

void Dump(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      return;
    case JsonValue::Kind::kBool:
      out->append(value.boolean() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      AppendJsonNumber(out, value.number());
      return;
    case JsonValue::Kind::kString:
      AppendJsonString(out, value.string_value());
      return;
    case JsonValue::Kind::kArray:
      DumpArray(value.array(), out);
      return;
    case JsonValue::Kind::kObject:
      DumpObject(value.object(), out);
      return;
  }
}

/// Cursor over the input text with one-token-lookahead helpers.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue(std::move(s).value());
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue::Object object;
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':' after object key");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      object.emplace(std::move(key).value(), std::move(value).value());
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue::Array array;
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(value).value());
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the exporters never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a JSON value");
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  static const JsonValue* null_value = new JsonValue();
  if (kind_ != Kind::kObject) return *null_value;
  auto it = object_.find(key);
  return it == object_.end() ? *null_value : it->second;
}

std::string JsonValue::Dump() const {
  std::string out;
  obs::Dump(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->push_back('0');
    return;
  }
  // Integral values print without an exponent/decimal point so counters
  // stay readable; %.17g round-trips everything else.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out->append(buffer);
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace vgod::obs
