#ifndef VGOD_OBS_JSON_H_
#define VGOD_OBS_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::obs {

/// Minimal JSON document model used by the observability exporters and
/// their round-trip tests. Numbers are stored as double (sufficient for
/// the telemetry payloads: seconds, losses, counters well below 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  explicit JsonValue(int64_t value)
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  explicit JsonValue(Array value)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  explicit JsonValue(Object value)
      : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }

  bool Has(const std::string& key) const {
    return kind_ == Kind::kObject && object_.count(key) > 0;
  }

  /// Member lookup; returns a static null value when absent.
  const JsonValue& at(const std::string& key) const;

  /// Serializes back to compact JSON (object keys in sorted map order).
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Strict-enough recursive-descent parser for the subset of JSON the
/// exporters emit (full value grammar; \uXXXX escapes decoded to UTF-8).
Result<JsonValue> ParseJson(const std::string& text);

/// Appends `s` as a quoted, escaped JSON string.
void AppendJsonString(std::string* out, const std::string& s);

/// Appends a number with enough precision to round-trip a double. Non-finite
/// values (illegal in JSON) are emitted as 0.
void AppendJsonNumber(std::string* out, double value);

}  // namespace vgod::obs

#endif  // VGOD_OBS_JSON_H_
