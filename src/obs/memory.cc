#include "obs/memory.h"

#include <atomic>

namespace vgod::obs {
namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_total_allocs{0};

// Per-thread net-allocation window (see BeginThreadMemoryWindow).
thread_local int64_t t_window_net = 0;
thread_local int64_t t_window_peak = 0;

}  // namespace

void OnTensorAlloc(int64_t bytes) {
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  t_window_net += bytes;
  if (t_window_net > t_window_peak) t_window_peak = t_window_net;
}

void OnTensorFree(int64_t bytes) {
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  t_window_net -= bytes;
}

int64_t LiveTensorBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

int64_t PeakTensorBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void ResetPeakTensorBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void RaisePeakTensorBytes(int64_t floor_bytes) {
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (floor_bytes > peak && !g_peak_bytes.compare_exchange_weak(
                                   peak, floor_bytes,
                                   std::memory_order_relaxed)) {
  }
}

int64_t TotalTensorAllocs() {
  return g_total_allocs.load(std::memory_order_relaxed);
}

void BeginThreadMemoryWindow() {
  t_window_net = 0;
  t_window_peak = 0;
}

int64_t ThreadMemoryWindowPeak() { return t_window_peak; }

}  // namespace vgod::obs
