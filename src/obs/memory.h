#ifndef VGOD_OBS_MEMORY_H_
#define VGOD_OBS_MEMORY_H_

#include <cstdint>

namespace vgod::obs {

/// Tensor storage accounting. The Tensor allocator (src/tensor/tensor.cc)
/// reports every storage allocation/release here; TrainingRun reads the
/// high-water mark to attribute peak tensor bytes to each epoch.
/// All functions are lock-free and safe from any thread.

void OnTensorAlloc(int64_t bytes);
void OnTensorFree(int64_t bytes);

/// Bytes of tensor storage currently alive.
int64_t LiveTensorBytes();

/// High-water mark of LiveTensorBytes() since process start or the last
/// ResetPeakTensorBytes().
int64_t PeakTensorBytes();

/// Rebases the high-water mark to the current live bytes.
void ResetPeakTensorBytes();

/// Raises the high-water mark to at least `floor_bytes` (max-merge).
/// obs::MemoryPhase uses this to restore the enclosing phase's peak after
/// windowing, so nested phases never lower what an outer reader sees.
void RaisePeakTensorBytes(int64_t floor_bytes);

/// Total allocations ever made (monotonic; feeds the metrics export).
int64_t TotalTensorAllocs();

/// Per-thread allocation window: the serving engine brackets each score
/// call with Begin/Peak to attribute a request's peak live-tensor-bytes
/// delta (allocations minus frees on the calling thread, high-water
/// since Begin) into its forensics record. Thread-local, no atomics.
void BeginThreadMemoryWindow();
int64_t ThreadMemoryWindowPeak();

}  // namespace vgod::obs

#endif  // VGOD_OBS_MEMORY_H_
