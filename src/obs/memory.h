#ifndef VGOD_OBS_MEMORY_H_
#define VGOD_OBS_MEMORY_H_

#include <cstdint>

namespace vgod::obs {

/// Tensor storage accounting. The Tensor allocator (src/tensor/tensor.cc)
/// reports every storage allocation/release here; TrainingRun reads the
/// high-water mark to attribute peak tensor bytes to each epoch.
/// All functions are lock-free and safe from any thread.

void OnTensorAlloc(int64_t bytes);
void OnTensorFree(int64_t bytes);

/// Bytes of tensor storage currently alive.
int64_t LiveTensorBytes();

/// High-water mark of LiveTensorBytes() since process start or the last
/// ResetPeakTensorBytes().
int64_t PeakTensorBytes();

/// Rebases the high-water mark to the current live bytes.
void ResetPeakTensorBytes();

/// Total allocations ever made (monotonic; feeds the metrics export).
int64_t TotalTensorAllocs();

}  // namespace vgod::obs

#endif  // VGOD_OBS_MEMORY_H_
