#include "obs/metrics.h"

#include <algorithm>
#include <fstream>

#include "core/parallel.h"
#include "obs/json.h"
#include "obs/process_metrics.h"

namespace vgod::obs {
namespace {

/// Pull-model export of the vgod::par pool counters: every metrics dump
/// refreshes the par.pool.* gauges from the pool's own atomics, so the
/// JSON reflects the pool without the hot ParallelFor path ever touching
/// the registry. threads == 0 means no kernel has used the pool yet.
void PublishPoolGauges() {
  const par::PoolStats stats = par::Stats();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("par.pool.threads")
      ->Set(static_cast<double>(stats.threads));
  registry.GetGauge("par.pool.regions")
      ->Set(static_cast<double>(stats.regions));
  registry.GetGauge("par.pool.serial_regions")
      ->Set(static_cast<double>(stats.serial_regions));
  registry.GetGauge("par.pool.tasks")->Set(static_cast<double>(stats.tasks));
  registry.GetGauge("par.pool.idle_seconds")
      ->Set(static_cast<double>(stats.idle_ns) * 1e-9);
  registry.GetGauge("par.pool.busy_seconds")
      ->Set(static_cast<double>(stats.busy_ns) * 1e-9);
  registry.GetGauge("par.pool.inline_overflow")
      ->Set(static_cast<double>(stats.inline_overflow));
  registry.GetGauge("par.pool.pending_regions")
      ->Set(static_cast<double>(stats.pending_regions));
  for (size_t i = 0; i < stats.worker_busy_ns.size(); ++i) {
    const std::string worker = "par.pool.worker." + std::to_string(i);
    registry.GetGauge(worker + ".busy_seconds")
        ->Set(static_cast<double>(stats.worker_busy_ns[i]) * 1e-9);
    registry.GetGauge(worker + ".idle_seconds")
        ->Set(static_cast<double>(stats.worker_idle_ns[i]) * 1e-9);
  }
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty()) return "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

double HistogramQuantile(const Histogram& histogram, double q) {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<int64_t> counts = histogram.BucketCounts();
  const std::vector<double>& bounds = histogram.bounds();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation; q=1 maps to the last one.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      // Interpolate within [lower, bounds[i]]; the first finite bucket's
      // lower edge is 0 (latencies are non-negative).
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double fraction =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lower + fraction * (bounds[i] - lower);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 30.0, 100.0};
  return *bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Result<double> MetricsRegistry::ReadValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto gauge = gauges_.find(name);
  if (gauge != gauges_.end()) return gauge->second->Value();
  auto counter = counters_.find(name);
  if (counter != counters_.end()) {
    return static_cast<double>(counter->second->Value());
  }
  return Status::NotFound("no gauge or counter named '" + name + "'");
}

void MetricsRegistry::SetInfo(const std::string& name,
                              std::map<std::string, std::string> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  infos_[name] = std::move(labels);
}

std::string MetricsRegistry::ToJson() const {
  PublishPoolGauges();  // Before taking mu_: GetGauge locks it too.
  PublishProcessGauges();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonNumber(&out, static_cast<double>(counter->Value()));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonNumber(&out, gauge->Value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.append(":{\"count\":");
    AppendJsonNumber(&out, static_cast<double>(histogram->Count()));
    out.append(",\"sum\":");
    AppendJsonNumber(&out, histogram->Sum());
    out.append(",\"buckets\":[");
    const std::vector<int64_t> counts = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->bounds();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append("{\"le\":");
      if (i < bounds.size()) {
        AppendJsonNumber(&out, bounds[i]);
      } else {
        out.append("\"inf\"");
      }
      out.append(",\"count\":");
      AppendJsonNumber(&out, static_cast<double>(counts[i]));
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("},\"info\":{");
  first = true;
  for (const auto& [name, labels] : infos_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.append(":{");
    bool first_label = true;
    for (const auto& [key, label_value] : labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      AppendJsonString(&out, key);
      out.push_back(':');
      AppendJsonString(&out, label_value);
    }
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  PublishPoolGauges();  // Before taking mu_: GetGauge locks it too.
  PublishProcessGauges();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;

  const auto header = [&out](const std::string& name, const char* type,
                             const std::string& sanitized) {
    out.append("# HELP ");
    out.append(sanitized);
    out.append(" vgod metric ");
    out.append(name);  // The original (pre-sanitization) registry name.
    out.append("\n# TYPE ");
    out.append(sanitized);
    out.push_back(' ');
    out.append(type);
    out.push_back('\n');
  };
  const auto value = [&out](double v) {
    std::string text;
    AppendJsonNumber(&text, v);
    out.append(text);
    out.push_back('\n');
  };

  for (const auto& [name, counter] : counters_) {
    const std::string sanitized = SanitizeMetricName(name);
    header(name, "counter", sanitized);
    out.append(sanitized);
    out.push_back(' ');
    value(static_cast<double>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string sanitized = SanitizeMetricName(name);
    header(name, "gauge", sanitized);
    out.append(sanitized);
    out.push_back(' ');
    value(gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string sanitized = SanitizeMetricName(name);
    header(name, "histogram", sanitized);
    const std::vector<int64_t> counts = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->bounds();
    int64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      std::string le;
      AppendJsonNumber(&le, bounds[i]);
      out.append(sanitized);
      out.append("_bucket{le=\"");
      out.append(EscapeLabelValue(le));
      out.append("\"} ");
      value(static_cast<double>(cumulative));
    }
    cumulative += counts[bounds.size()];
    out.append(sanitized);
    out.append("_bucket{le=\"+Inf\"} ");
    value(static_cast<double>(cumulative));
    out.append(sanitized);
    out.append("_sum ");
    value(histogram->Sum());
    // _count repeats the +Inf cumulative rather than re-reading the
    // histogram's count atomic: an Observe() racing the scrape could
    // otherwise make the two disagree within one exposition.
    out.append(sanitized);
    out.append("_count ");
    value(static_cast<double>(cumulative));
  }
  for (const auto& [name, labels] : infos_) {
    const std::string sanitized = SanitizeMetricName(name);
    header(name, "gauge", sanitized);
    out.append(sanitized);
    out.push_back('{');
    bool first = true;
    for (const auto& [key, label_value] : labels) {
      if (!first) out.push_back(',');
      first = false;
      out.append(SanitizeMetricName(key));
      out.append("=\"");
      out.append(EscapeLabelValue(label_value));
      out.push_back('"');
    }
    out.append("} 1\n");
  }
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot write metrics to " + path);
  file << ToJson() << "\n";
  if (!file) return Status::IoError("failed writing metrics to " + path);
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace vgod::obs
