#ifndef VGOD_OBS_METRICS_H_
#define VGOD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::obs {

/// Monotonic counter. Recording is a single relaxed atomic add, safe to
/// call from any thread and cheap enough for per-kernel-call accounting.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges ("le" in
/// Prometheus terms); one implicit overflow bucket catches the rest.
/// Observe() is lock-free (atomic bucket counters + CAS-accumulated sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  // Sorted ascending at construction.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram edges for durations in seconds: 1us .. ~100s, powers
/// of 10 with a 1-3 split per decade.
const std::vector<double>& DefaultLatencyBounds();

/// Maps an arbitrary registry name onto the Prometheus metric-name
/// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_'
/// and a leading digit gets a '_' prefix ("serve.requests.total" ->
/// "serve_requests_total").
std::string SanitizeMetricName(const std::string& name);

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline become \\, \", and \n.
std::string EscapeLabelValue(const std::string& value);

/// Estimate of the value at quantile `q` (in [0, 1]) by linear
/// interpolation inside the owning bucket — how the serving layer turns
/// its latency histograms into p50/p99 numbers. Observations in the
/// overflow bucket clamp to the last bound. Returns 0 for an empty
/// histogram.
double HistogramQuantile(const Histogram& histogram, double q);

/// Process-wide registry. Registration takes a mutex; the returned
/// pointers are stable for the process lifetime, so hot paths cache them
/// (the VGOD_COUNTER_* macros do this with a function-local static).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// First registration of `name` fixes the bucket bounds; later calls
  /// return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Reads the current value of a gauge or counter by exact registry
  /// name without creating it (gauges shadow counters on a name clash).
  /// NotFound when no such metric exists — the alert engine maps that to
  /// "metric unavailable" rather than a spurious zero.
  Result<double> ReadValue(const std::string& name) const;

  /// Info-style metric ("build.info"): a constant-1 gauge whose payload
  /// is its label set. JSON renders the labels as an object under
  /// "info"; Prometheus renders `name{k="v",...} 1`. Last write wins.
  void SetInfo(const std::string& name,
               std::map<std::string, std::string> labels);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  /// sorted order (deterministic output for golden tests).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Prometheus text exposition format (version 0.0.4): one `# HELP` +
  /// `# TYPE` block per metric with the name sanitized by
  /// SanitizeMetricName. Histograms render as cumulative `_bucket{le=...}`
  /// series ending in `le="+Inf"` plus `_sum` and `_count`, so a standard
  /// scraper pointed at `GET /metrics?format=prometheus` understands the
  /// same registry the JSON export carries.
  std::string ToPrometheus() const;

  /// Zeroes every metric value; registrations (and cached pointers) stay
  /// valid. Intended for tests and for per-run bench manifests.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::map<std::string, std::string>> infos_;
};

}  // namespace vgod::obs

/// Cheap recording macros: one mutex-protected registry lookup on first
/// execution, a relaxed atomic add afterwards.
#define VGOD_COUNTER_ADD(name, delta)                                    \
  do {                                                                   \
    static ::vgod::obs::Counter* vgod_counter_ =                         \
        ::vgod::obs::MetricsRegistry::Global().GetCounter(name);         \
    vgod_counter_->Add(delta);                                           \
  } while (0)

#define VGOD_COUNTER_INC(name) VGOD_COUNTER_ADD(name, 1)

#define VGOD_HISTOGRAM_OBSERVE(name, value)                              \
  do {                                                                   \
    static ::vgod::obs::Histogram* vgod_histogram_ =                     \
        ::vgod::obs::MetricsRegistry::Global().GetHistogram(             \
            name, ::vgod::obs::DefaultLatencyBounds());                  \
    vgod_histogram_->Observe(value);                                     \
  } while (0)

#endif  // VGOD_OBS_METRICS_H_
