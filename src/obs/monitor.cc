#include "obs/monitor.h"

#include <fstream>

#include "core/logging.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/trace.h"

namespace vgod::obs {

std::string EpochRecordToJson(const EpochRecord& record) {
  std::string out = "{\"detector\":";
  AppendJsonString(&out, record.detector);
  out.append(",\"epoch\":");
  AppendJsonNumber(&out, record.epoch);
  out.append(",\"planned_epochs\":");
  AppendJsonNumber(&out, record.planned_epochs);
  out.append(",\"loss\":");
  AppendJsonNumber(&out, record.loss);
  out.append(",\"grad_norm\":");
  AppendJsonNumber(&out, record.grad_norm);
  out.append(",\"seconds\":");
  AppendJsonNumber(&out, record.seconds);
  out.append(",\"peak_tensor_bytes\":");
  AppendJsonNumber(&out, static_cast<double>(record.peak_tensor_bytes));
  out.push_back('}');
  return out;
}

Result<std::unique_ptr<TrainingMonitor>> TrainingMonitor::WithJsonl(
    const std::string& path) {
  auto stream = std::make_unique<std::ofstream>(path);
  if (!*stream) {
    return Status::IoError("cannot write telemetry to " + path);
  }
  auto monitor = std::make_unique<TrainingMonitor>();
  monitor->jsonl_ = std::move(stream);
  return monitor;
}

void TrainingMonitor::Record(const EpochRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
  if (jsonl_) {
    *jsonl_ << EpochRecordToJson(record) << "\n";
    jsonl_->flush();
  }
}

std::vector<EpochRecord> TrainingMonitor::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TrainingMonitor::SetScoreProbe(ScoreProbe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_ = std::move(probe);
}

bool TrainingMonitor::wants_scores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probe_ != nullptr;
}

void TrainingMonitor::ProbeScores(const std::string& detector, int epoch,
                                  const std::vector<double>& scores) const {
  ScoreProbe probe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probe = probe_;
  }
  if (probe) probe(detector, epoch, scores);
}

TrainingRun::TrainingRun(std::string detector, int planned_epochs,
                         TrainingMonitor* monitor,
                         std::vector<EpochRecord>* sink)
    : detector_(std::move(detector)),
      planned_epochs_(planned_epochs),
      monitor_(monitor),
      sink_(sink) {
  if (sink_ != nullptr) sink_->clear();
  ResetPeakTensorBytes();
  fit_start_us_ = TraceNowMicros();
  epoch_start_us_ = fit_start_us_;
}

TrainingRun::~TrainingRun() {
  if (TraceEnabled()) {
    RecordCompleteEvent(detector_ + "/fit", fit_start_us_,
                        TraceNowMicros() - fit_start_us_);
  }
}

EpochRecord TrainingRun::EndEpoch(int epoch, double loss, double grad_norm) {
  EpochRecord record;
  record.detector = detector_;
  record.epoch = epoch;
  record.planned_epochs = planned_epochs_;
  record.loss = loss;
  record.grad_norm = grad_norm;
  record.seconds = total_watch_.Lap();
  record.peak_tensor_bytes = PeakTensorBytes();
  ResetPeakTensorBytes();

  if (sink_ != nullptr) sink_->push_back(record);
  if (monitor_ != nullptr) monitor_->Record(record);
  if (TraceEnabled()) {
    const int64_t now_us = TraceNowMicros();
    RecordCompleteEvent(detector_ + "/epoch", epoch_start_us_,
                        now_us - epoch_start_us_);
    epoch_start_us_ = now_us;
  }
  VGOD_LOG(Debug) << record.detector << " epoch " << record.epoch << "/"
                  << record.planned_epochs << " loss=" << record.loss
                  << " grad_norm=" << record.grad_norm << " seconds="
                  << record.seconds << " peak_tensor_bytes="
                  << record.peak_tensor_bytes;
  return record;
}

void TrainingRun::ProbeScores(int epoch,
                              const std::vector<double>& scores) const {
  if (monitor_ != nullptr) monitor_->ProbeScores(detector_, epoch, scores);
}

}  // namespace vgod::obs
