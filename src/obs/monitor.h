#ifndef VGOD_OBS_MONITOR_H_
#define VGOD_OBS_MONITOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/stopwatch.h"

namespace vgod::obs {

/// One completed training epoch as captured by TrainingRun: loss, global
/// gradient norm after the last optimizer step, wall seconds, and the
/// peak bytes of live tensor storage during the epoch.
struct EpochRecord {
  std::string detector;
  int epoch = 0;        // 1-based.
  int planned_epochs = 0;
  double loss = 0.0;
  double grad_norm = 0.0;
  double seconds = 0.0;
  int64_t peak_tensor_bytes = 0;
};

/// One JSON object (single line, JSONL-ready) for `record`.
std::string EpochRecordToJson(const EpochRecord& record);

/// Collects per-epoch telemetry across detectors. Passed to detectors via
/// their config's `monitor` pointer (or DetectorOptions::monitor); the
/// same monitor can observe several detectors in sequence (e.g. VGOD's
/// VBM + ARM components — records carry the detector name). Thread-safe.
class TrainingMonitor {
 public:
  TrainingMonitor() = default;

  /// Monitor that additionally streams every record to `path` as JSONL,
  /// one object per line, flushed per epoch so partial runs stay usable.
  static Result<std::unique_ptr<TrainingMonitor>> WithJsonl(
      const std::string& path);

  void Record(const EpochRecord& record);
  std::vector<EpochRecord> Records() const;

  /// Optional per-epoch score probe (drives the paper's Fig 8 AUC-vs-epoch
  /// study). Detectors that can score cheaply mid-training (VBM) call
  /// ProbeScores each epoch when a probe is set; others skip it.
  using ScoreProbe = std::function<void(
      const std::string& detector, int epoch, const std::vector<double>&)>;
  void SetScoreProbe(ScoreProbe probe);
  bool wants_scores() const;
  void ProbeScores(const std::string& detector, int epoch,
                   const std::vector<double>& scores) const;

 private:
  mutable std::mutex mu_;
  std::vector<EpochRecord> records_;
  std::unique_ptr<std::ostream> jsonl_;
  ScoreProbe probe_;
};

/// Drives telemetry for one Fit() call. Construct before the epoch loop,
/// call EndEpoch once per epoch after the optimizer step; the destructor
/// emits a "<detector>/fit" trace span. Works with a null monitor (records
/// still flow into `sink`, i.e. the detector's TrainStats).
class TrainingRun {
 public:
  /// `sink` (optional) receives every EpochRecord; it is cleared first so
  /// a re-Fit starts fresh. `monitor` may be null.
  TrainingRun(std::string detector, int planned_epochs,
              TrainingMonitor* monitor, std::vector<EpochRecord>* sink);
  ~TrainingRun();
  TrainingRun(const TrainingRun&) = delete;
  TrainingRun& operator=(const TrainingRun&) = delete;

  /// Closes epoch `epoch` (1-based): laps the stopwatch, snapshots peak
  /// tensor bytes, appends to the sink, notifies the monitor, emits a
  /// "<detector>/epoch" trace span and a debug log line.
  EpochRecord EndEpoch(int epoch, double loss, double grad_norm);

  bool wants_scores() const { return monitor_ && monitor_->wants_scores(); }
  void ProbeScores(int epoch, const std::vector<double>& scores) const;

  /// Wall seconds since construction (the whole Fit, not just epochs).
  double TotalSeconds() const { return total_watch_.ElapsedSeconds(); }

 private:
  std::string detector_;
  int planned_epochs_;
  TrainingMonitor* monitor_;
  std::vector<EpochRecord>* sink_;
  Stopwatch total_watch_;
  int64_t fit_start_us_ = 0;
  int64_t epoch_start_us_ = 0;
};

}  // namespace vgod::obs

#endif  // VGOD_OBS_MONITOR_H_
