#include "obs/process_metrics.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

// Populated by src/obs/CMakeLists.txt from the configure step; the
// fallbacks keep non-CMake compiles (tooling, IDE) working.
#ifndef VGOD_BUILD_VERSION
#define VGOD_BUILD_VERSION "dev"
#endif
#ifndef VGOD_BUILD_GIT_DESCRIBE
#define VGOD_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef VGOD_BUILD_SANITIZE
#define VGOD_BUILD_SANITIZE ""
#endif

namespace vgod::obs {
namespace {

// Reads /proc/self/stat fields 14/15 (utime/stime, clock ticks) and 20
// (num_threads). The comm field (2) can contain spaces, so parsing
// resumes after the closing ')'.
bool ReadProcStat(double* cpu_seconds, long* num_threads) {
  std::FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return false;
  char buffer[1024];
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  if (read == 0) return false;
  buffer[read] = '\0';
  const char* after_comm = std::strrchr(buffer, ')');
  if (after_comm == nullptr) return false;
  // after_comm points at ')'; the next token is field 3 (state).
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  long threads = 0;
  // Fields 3..13 are skipped (%*s for state, %*d for the rest).
  const int matched = std::sscanf(
      after_comm + 1,
      " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu %*d %*d %*d "
      "%*d %ld",
      &utime, &stime, &threads);
  if (matched != 3) return false;
  const long ticks_per_second = ::sysconf(_SC_CLK_TCK);
  if (ticks_per_second <= 0) return false;
  *cpu_seconds = static_cast<double>(utime + stime) /
                 static_cast<double>(ticks_per_second);
  *num_threads = threads;
  return true;
}

bool ReadResidentBytes(double* resident_bytes, double* virtual_bytes) {
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return false;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int matched =
      std::fscanf(file, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(file);
  if (matched != 2) return false;
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return false;
  *virtual_bytes =
      static_cast<double>(total_pages) * static_cast<double>(page_size);
  *resident_bytes =
      static_cast<double>(resident_pages) * static_cast<double>(page_size);
  return true;
}

// Unix time at which this process started: /proc/self/stat field 22
// (starttime, clock ticks since boot) on top of /proc/stat btime (boot
// time, unix seconds). Returns a negative value when unavailable.
double ReadStartTimeSeconds() {
  std::FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return -1.0;
  char buffer[1024];
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  if (read == 0) return -1.0;
  buffer[read] = '\0';
  const char* after_comm = std::strrchr(buffer, ')');
  if (after_comm == nullptr) return -1.0;
  unsigned long long start_ticks = 0;
  // Skip fields 3..21 after the comm field; field 22 is starttime.
  const int matched = std::sscanf(
      after_comm + 1,
      " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %*u %*u %*d %*d %*d "
      "%*d %*d %*d %llu",
      &start_ticks);
  if (matched != 1) return -1.0;
  const long ticks_per_second = ::sysconf(_SC_CLK_TCK);
  if (ticks_per_second <= 0) return -1.0;

  double boot_seconds = -1.0;
  std::FILE* stat = std::fopen("/proc/stat", "r");
  if (stat == nullptr) return -1.0;
  char line[256];
  while (std::fgets(line, sizeof(line), stat) != nullptr) {
    unsigned long long btime = 0;
    if (std::sscanf(line, "btime %llu", &btime) == 1) {
      boot_seconds = static_cast<double>(btime);
      break;
    }
  }
  std::fclose(stat);
  if (boot_seconds < 0.0) return -1.0;
  return boot_seconds + static_cast<double>(start_ticks) /
                            static_cast<double>(ticks_per_second);
}

const char* CompilerDescription() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

long CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  long count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  // The opendir fd itself is counted; report the steady-state number.
  return count > 0 ? count - 1 : count;
}

}  // namespace

void PublishProcessGauges() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  double cpu_seconds = 0.0;
  long num_threads = 0;
  if (ReadProcStat(&cpu_seconds, &num_threads)) {
    registry.GetGauge("process_cpu_seconds_total")->Set(cpu_seconds);
    registry.GetGauge("process_threads")
        ->Set(static_cast<double>(num_threads));
  }
  double resident_bytes = 0.0;
  double virtual_bytes = 0.0;
  if (ReadResidentBytes(&resident_bytes, &virtual_bytes)) {
    registry.GetGauge("process_resident_memory_bytes")->Set(resident_bytes);
    registry.GetGauge("process_virtual_memory_bytes")->Set(virtual_bytes);
  }
  const long open_fds = CountOpenFds();
  if (open_fds >= 0) {
    registry.GetGauge("process_open_fds")
        ->Set(static_cast<double>(open_fds));
  }
  // Constants: computed once, then re-published so a ResetAll() (bench
  // manifests, tests) does not wipe them from later scrapes.
  static const double start_time = ReadStartTimeSeconds();
  if (start_time >= 0.0) {
    registry.GetGauge("process.start_time_seconds")->Set(start_time);
  }
  registry.SetInfo("build.info",
                   {{"version", VGOD_BUILD_VERSION},
                    {"git", VGOD_BUILD_GIT_DESCRIBE},
                    {"compiler", CompilerDescription()},
                    {"sanitizer", VGOD_BUILD_SANITIZE[0] != '\0'
                                      ? VGOD_BUILD_SANITIZE
                                      : "none"}});
}

}  // namespace vgod::obs
