#ifndef VGOD_OBS_PROCESS_METRICS_H_
#define VGOD_OBS_PROCESS_METRICS_H_

namespace vgod::obs {

/// Refreshes the standard process-level collector gauges from /proc —
/// process_resident_memory_bytes, process_virtual_memory_bytes,
/// process_cpu_seconds_total, process_threads, process_open_fds, plus
/// the constant process_start_time_seconds (unix time, from
/// /proc/self/stat starttime + /proc/stat btime) and the `build.info`
/// info gauge (version, git describe, compiler, sanitizer) — so stock
/// Grafana dashboards work against /metrics out of the box. Called by
/// the registry exporters right before rendering; cheap (two small
/// /proc reads and one directory scan; the constants are computed
/// once). No-op on platforms without /proc/self.
void PublishProcessGauges();

}  // namespace vgod::obs

#endif  // VGOD_OBS_PROCESS_METRICS_H_
