#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace vgod::obs {

namespace profile_internal {

/// One node of a per-thread call tree. Accumulators are relaxed atomics
/// (owner thread adds, snapshotters read). `children` is only grown by
/// the owning thread and only under the owning ThreadProfile's mutex,
/// which snapshotters also take for traversal — owner-side reads between
/// insertions are lock-free because nobody else ever writes.
struct LiveNode {
  explicit LiveNode(const char* node_name, LiveNode* parent_node)
      : name(node_name), parent(parent_node) {}

  const char* name;  // string literal; stored by pointer
  LiveNode* parent;
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> inclusive_ns{0};
  std::atomic<int64_t> bytes{0};
  std::atomic<int64_t> peak_bytes{0};
  std::vector<std::unique_ptr<LiveNode>> children;
};

namespace {

std::atomic<bool> g_profile_enabled{false};

struct ThreadProfile {
  std::mutex mu;  // guards `children` growth against snapshot traversal
  LiveNode root{"", nullptr};
  LiveNode* current = &root;  // owner-thread only
};

struct ThreadRegistry {
  std::mutex mu;
  // shared_ptr keeps trees of exited threads alive for later snapshots.
  std::vector<std::shared_ptr<ThreadProfile>> threads;
};

ThreadRegistry& Registry() {
  static ThreadRegistry* registry = new ThreadRegistry();
  return *registry;
}

ThreadProfile& LocalThreadProfile() {
  thread_local std::shared_ptr<ThreadProfile> profile = [] {
    auto created = std::make_shared<ThreadProfile>();
    ThreadRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.threads.push_back(created);
    return created;
  }();
  return *profile;
}

void ZeroTree(LiveNode* node) {
  node->calls.store(0, std::memory_order_relaxed);
  node->inclusive_ns.store(0, std::memory_order_relaxed);
  node->bytes.store(0, std::memory_order_relaxed);
  node->peak_bytes.store(0, std::memory_order_relaxed);
  for (const std::unique_ptr<LiveNode>& child : node->children) {
    ZeroTree(child.get());
  }
}

void MergeTree(const LiveNode* live, ProfileNode* out) {
  out->calls += live->calls.load(std::memory_order_relaxed);
  out->inclusive_ns += live->inclusive_ns.load(std::memory_order_relaxed);
  out->bytes += live->bytes.load(std::memory_order_relaxed);
  out->peak_bytes = std::max(
      out->peak_bytes, live->peak_bytes.load(std::memory_order_relaxed));
  for (const std::unique_ptr<LiveNode>& child : live->children) {
    ProfileNode* slot = nullptr;
    for (ProfileNode& existing : out->children) {
      if (existing.name == child->name) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      out->children.emplace_back();
      slot = &out->children.back();
      slot->name = child->name;
    }
    MergeTree(child.get(), slot);
  }
}

/// Sorts children by name, raises inclusive to cover children still open
/// when the window closed, and derives exclusive time.
void FinalizeTree(ProfileNode* node) {
  std::sort(node->children.begin(), node->children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  int64_t child_sum = 0;
  for (ProfileNode& child : node->children) {
    FinalizeTree(&child);
    child_sum += child.inclusive_ns;
  }
  node->inclusive_ns = std::max(node->inclusive_ns, child_sum);
  node->exclusive_ns = node->inclusive_ns - child_sum;
}

void AppendFolded(const ProfileNode& node, const std::string& prefix,
                  std::vector<std::string>* lines) {
  for (const ProfileNode& child : node.children) {
    const std::string path =
        prefix.empty() ? child.name : prefix + ";" + child.name;
    if (child.exclusive_ns > 0 || child.children.empty()) {
      lines->push_back(path + " " + std::to_string(child.exclusive_ns));
    }
    AppendFolded(child, path, lines);
  }
}

void AppendJson(const ProfileNode& node, std::ostringstream* out) {
  *out << "{\"name\":\"" << node.name << "\",\"calls\":" << node.calls
       << ",\"inclusive_ns\":" << node.inclusive_ns
       << ",\"exclusive_ns\":" << node.exclusive_ns
       << ",\"bytes\":" << node.bytes
       << ",\"peak_bytes\":" << node.peak_bytes << ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out << ",";
    AppendJson(node.children[i], out);
  }
  *out << "]}";
}

}  // namespace

int64_t ProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LiveNode* EnterScope(const char* name) {
  ThreadProfile& profile = LocalThreadProfile();
  LiveNode* parent = profile.current;
  for (const std::unique_ptr<LiveNode>& child : parent->children) {
    // Scope names are literals, so pointer equality catches the common
    // case; strcmp handles the same name reaching a path from two TUs.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      profile.current = child.get();
      return child.get();
    }
  }
  auto created = std::make_unique<LiveNode>(name, parent);
  LiveNode* node = created.get();
  {
    std::lock_guard<std::mutex> lock(profile.mu);
    parent->children.push_back(std::move(created));
  }
  profile.current = node;
  return node;
}

void LeaveScope(LiveNode* node, int64_t start_ns) {
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->inclusive_ns.fetch_add(ProfileNowNs() - start_ns,
                               std::memory_order_relaxed);
  LocalThreadProfile().current = node->parent;
}

void MergePeakBytes(LiveNode* node, int64_t peak_bytes) {
  int64_t seen = node->peak_bytes.load(std::memory_order_relaxed);
  while (peak_bytes > seen && !node->peak_bytes.compare_exchange_weak(
                                  seen, peak_bytes,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace profile_internal

bool ProfileEnabled() {
  return profile_internal::g_profile_enabled.load(std::memory_order_relaxed);
}

void SetProfileEnabled(bool enabled) {
  profile_internal::g_profile_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

namespace {

std::string& ProfileEnvPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

}  // namespace

void InitProfileFromEnv() {
  const char* value = std::getenv("VGOD_PROFILE");
  if (value == nullptr || value[0] == '\0' ||
      std::strcmp(value, "0") == 0) {
    return;
  }
  // Like VGOD_TRACE: a path-looking value ("out/profile.json",
  // "score.folded") doubles as the export destination.
  const std::string text(value);
  if (text.find('/') != std::string::npos ||
      text.find('.') != std::string::npos) {
    ProfileEnvPathStorage() = text;
  }
  SetProfileEnabled(true);
}

std::string ProfileEnvPath() { return ProfileEnvPathStorage(); }

void ClearProfile() {
  using profile_internal::Registry;
  using profile_internal::ThreadRegistry;
  std::vector<std::shared_ptr<profile_internal::ThreadProfile>> threads;
  {
    ThreadRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    threads = registry.threads;
  }
  for (const auto& profile : threads) {
    std::lock_guard<std::mutex> lock(profile->mu);
    profile_internal::ZeroTree(&profile->root);
  }
}

ProfileNode SnapshotProfile() {
  using profile_internal::Registry;
  using profile_internal::ThreadRegistry;
  std::vector<std::shared_ptr<profile_internal::ThreadProfile>> threads;
  {
    ThreadRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    threads = registry.threads;
  }
  ProfileNode root;
  for (const auto& profile : threads) {
    std::lock_guard<std::mutex> lock(profile->mu);
    profile_internal::MergeTree(&profile->root, &root);
  }
  // The per-thread roots carry no time of their own; the aggregate root
  // reports the sum of its children (FinalizeTree raises it).
  root.calls = 0;
  root.inclusive_ns = 0;
  root.bytes = 0;
  profile_internal::FinalizeTree(&root);
  return root;
}

std::string ProfileToJson(const ProfileNode& root) {
  std::ostringstream out;
  profile_internal::AppendJson(root, &out);
  return out.str();
}

std::string ProfileToJson() { return ProfileToJson(SnapshotProfile()); }

std::string ProfileToFolded(const ProfileNode& root) {
  std::vector<std::string> lines;
  profile_internal::AppendFolded(root, "", &lines);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::string ProfileToFolded() { return ProfileToFolded(SnapshotProfile()); }

Status WriteProfile(const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot write profile to " + path);
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    file << ProfileToJson() << "\n";
  } else {
    file << ProfileToFolded();
  }
  if (!file) return Status::IoError("failed writing profile to " + path);
  return Status::Ok();
}

void ProfileAddBytes(int64_t bytes) {
  if (!ProfileEnabled()) return;
  profile_internal::LiveNode* node =
      profile_internal::LocalThreadProfile().current;
  if (node->parent == nullptr) return;  // no open scope on this thread
  node->bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace vgod::obs
