#ifndef VGOD_OBS_PROFILE_H_
#define VGOD_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/memory.h"

namespace vgod::obs {

/// Hierarchical compute profiler. Scoped regions (VGOD_PROFILE_SCOPE)
/// maintain a thread-local call stack; each distinct stack path becomes a
/// node in a per-thread call tree holding relaxed-atomic accumulators
/// (inclusive ns, call count, bytes touched, peak tensor bytes).
/// SnapshotProfile() merges the per-thread trees by path into one
/// aggregate tree with deterministic (name-sorted) child order, from
/// which ProfileToJson() / ProfileToFolded() derive the exports.
///
/// Cost model: disabled, a scope is one relaxed atomic load. Enabled, it
/// is a thread-local lookup, a child search by pointer/strcmp over a
/// handful of siblings, and two steady-clock reads — no locks on the hot
/// path. Tree-structure mutation (first visit of a path) takes a
/// per-thread mutex shared only with snapshotters, so the profiler stays
/// TSan-clean, and it never reorders or partitions work, so profiled
/// runs produce bit-identical numeric output.
///
/// Scope names must be string literals (or otherwise outlive the
/// process); they are stored by pointer on the hot path.

/// Aggregated snapshot node. `exclusive_ns` is inclusive minus the sum of
/// child inclusive time (clamped at zero); the snapshot also raises each
/// parent's inclusive time to at least the sum of its children so the
/// tree invariant (sum of child inclusive <= parent inclusive) holds even
/// when a window closes while scopes are still open.
struct ProfileNode {
  std::string name;
  int64_t calls = 0;
  int64_t inclusive_ns = 0;
  int64_t exclusive_ns = 0;
  int64_t bytes = 0;
  int64_t peak_bytes = 0;
  std::vector<ProfileNode> children;  // sorted by name
};

/// Global on/off switch. When off, VGOD_PROFILE_SCOPE costs one relaxed
/// atomic load and nothing is recorded.
bool ProfileEnabled();
void SetProfileEnabled(bool enabled);

/// Applies the VGOD_PROFILE environment variable: unset, "" or "0"
/// leaves profiling off; anything else turns it on. A value containing a
/// '/' or '.' (e.g. "out/profile.json") additionally becomes the export
/// path reported by ProfileEnvPath().
void InitProfileFromEnv();

/// Export path parsed from VGOD_PROFILE by InitProfileFromEnv(), or "".
std::string ProfileEnvPath();

/// Zeroes every accumulator on every thread's tree. Node structure (and
/// any pointers held by live scopes) stays valid, so this is safe to call
/// while scopes are open — their time lands in the fresh window.
void ClearProfile();

/// Merges all per-thread trees into one aggregate tree. The root has an
/// empty name and zero counters of its own; its children are the
/// top-level regions. Safe to call from any thread at any time.
ProfileNode SnapshotProfile();

/// Deterministic JSON tree:
///   {"name":"","calls":N,"inclusive_ns":N,"exclusive_ns":N,
///    "bytes":N,"peak_bytes":N,"children":[...]}
/// The zero-arg form snapshots first.
std::string ProfileToJson(const ProfileNode& root);
std::string ProfileToJson();

/// Folded-stack export ("frame;frame;frame <exclusive_ns>" per line,
/// sorted), directly consumable by flamegraph.pl or speedscope. The
/// zero-arg form snapshots first.
std::string ProfileToFolded(const ProfileNode& root);
std::string ProfileToFolded();

/// Writes ProfileToJson() when `path` ends in ".json", else the folded
/// stacks.
Status WriteProfile(const std::string& path);

/// Attributes `bytes` of memory traffic to the innermost open scope on
/// this thread. No-op when profiling is off or no scope is open.
void ProfileAddBytes(int64_t bytes);

namespace profile_internal {

struct LiveNode;  // one call-tree node; defined in profile.cc

int64_t ProfileNowNs();
LiveNode* EnterScope(const char* name);
void LeaveScope(LiveNode* node, int64_t start_ns);
void MergePeakBytes(LiveNode* node, int64_t peak_bytes);

}  // namespace profile_internal

/// RAII profiling region. Prefer the VGOD_PROFILE_SCOPE macro.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (ProfileEnabled()) {
      start_ns_ = profile_internal::ProfileNowNs();
      node_ = profile_internal::EnterScope(name);
    }
  }
  ~ProfileScope() {
    if (node_ != nullptr) profile_internal::LeaveScope(node_, start_ns_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  bool active() const { return node_ != nullptr; }

  /// Max-merges a tensor-memory high-water mark into this scope's node.
  void MergePeakBytes(int64_t peak_bytes) {
    if (node_ != nullptr) profile_internal::MergePeakBytes(node_, peak_bytes);
  }

 private:
  profile_internal::LiveNode* node_ = nullptr;
  int64_t start_ns_ = 0;
};

/// RAII profiling region that additionally windows the global tensor
/// high-water mark (ResetPeakTensorBytes on entry, RaisePeakTensorBytes
/// on exit) and attributes the phase peak to the scope's tree node. The
/// enclosing peak is restored on exit, so outer accounting — e.g.
/// TrainingRun's per-epoch peaks — still reads the true maximum. The
/// global mark is only touched while profiling is enabled; phase peaks
/// are meaningful for single-flow phases (training), not for concurrent
/// scoring, which uses per-thread windows instead.
class MemoryPhase {
 public:
  explicit MemoryPhase(const char* name) : scope_(name) {
    if (scope_.active()) {
      outer_peak_ = PeakTensorBytes();
      ResetPeakTensorBytes();
    }
  }
  ~MemoryPhase() {
    if (scope_.active()) {
      scope_.MergePeakBytes(PeakTensorBytes());
      RaisePeakTensorBytes(outer_peak_);
    }
  }
  MemoryPhase(const MemoryPhase&) = delete;
  MemoryPhase& operator=(const MemoryPhase&) = delete;

 private:
  ProfileScope scope_;
  int64_t outer_peak_ = 0;
};

}  // namespace vgod::obs

#ifndef VGOD_OBS_CONCAT
#define VGOD_OBS_CONCAT_INNER(a, b) a##b
#define VGOD_OBS_CONCAT(a, b) VGOD_OBS_CONCAT_INNER(a, b)
#endif
#define VGOD_PROFILE_SCOPE(name)             \
  ::vgod::obs::ProfileScope VGOD_OBS_CONCAT( \
      vgod_profile_scope_, __LINE__)(name)
#define VGOD_PROFILE_MEMORY_PHASE(name)      \
  ::vgod::obs::MemoryPhase VGOD_OBS_CONCAT(  \
      vgod_profile_phase_, __LINE__)(name)

#endif  // VGOD_OBS_PROFILE_H_
