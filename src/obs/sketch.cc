#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace vgod::obs {
namespace {

constexpr double kEpsilonMass = 1e-6;

// Shared evaluation grid for the two-sample statistics: the quantile
// ladder of both sketches at 1/kGridSteps resolution. Deterministic,
// bounded, and dense where either distribution has mass.
constexpr int kGridSteps = 200;

std::vector<double> EvaluationGrid(const QuantileSketch& a,
                                   const QuantileSketch& b) {
  std::vector<double> grid;
  grid.reserve(2 * (kGridSteps + 1));
  for (int i = 0; i <= kGridSteps; ++i) {
    const double q = static_cast<double>(i) / kGridSteps;
    grid.push_back(a.Quantile(q));
    grid.push_back(b.Quantile(q));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace

QuantileSketch::QuantileSketch(double alpha) {
  if (!(alpha > 0.0 && alpha < 1.0)) alpha = 0.01;
  alpha_ = alpha;
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

QuantileSketch::QuantileSketch(const QuantileSketch& other)
    : QuantileSketch(other.alpha_) {
  std::lock_guard<std::mutex> lock(other.mu_);
  positive_ = other.positive_;
  negative_ = other.negative_;
  zero_count_ = other.zero_count_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

QuantileSketch& QuantileSketch::operator=(const QuantileSketch& other) {
  if (this == &other) return *this;
  QuantileSketch copy(other);  // Snapshot first: avoids lock-order issues.
  std::lock_guard<std::mutex> lock(mu_);
  alpha_ = copy.alpha_;
  gamma_ = copy.gamma_;
  log_gamma_ = copy.log_gamma_;
  positive_ = std::move(copy.positive_);
  negative_ = std::move(copy.negative_);
  zero_count_ = copy.zero_count_;
  count_ = copy.count_;
  sum_ = copy.sum_;
  min_ = copy.min_;
  max_ = copy.max_;
  return *this;
}

int32_t QuantileSketch::BucketIndex(double magnitude) const {
  // ceil(log_gamma(m)); magnitude >= kMinTrackable so the result is
  // bounded below, and doubles cap it above (~3.5e4 for 1e308).
  return static_cast<int32_t>(std::ceil(std::log(magnitude) / log_gamma_));
}

double QuantileSketch::BucketValue(int32_t index) const {
  // Geometric midpoint of (gamma^(i-1), gamma^i].
  return std::exp((static_cast<double>(index) - 0.5) * log_gamma_);
}

void QuantileSketch::Insert(double value) {
  if (!std::isfinite(value)) return;  // Guarded scores never emit these.
  std::lock_guard<std::mutex> lock(mu_);
  const double magnitude = std::fabs(value);
  if (magnitude < kMinTrackable) {
    ++zero_count_;
  } else if (value > 0.0) {
    ++positive_[BucketIndex(magnitude)];
  } else {
    ++negative_[BucketIndex(magnitude)];
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

Status QuantileSketch::Merge(const QuantileSketch& other) {
  QuantileSketch snapshot(other);  // Copy under other's lock, then fold in.
  if (std::fabs(snapshot.alpha_ - alpha_) > 1e-12) {
    return Status::InvalidArgument(
        "cannot merge sketches with different accuracy (alpha " +
        std::to_string(alpha_) + " vs " + std::to_string(snapshot.alpha_) +
        ")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [index, n] : snapshot.positive_) positive_[index] += n;
  for (const auto& [index, n] : snapshot.negative_) negative_[index] += n;
  zero_count_ += snapshot.zero_count_;
  if (snapshot.count_ > 0) {
    if (count_ == 0) {
      min_ = snapshot.min_;
      max_ = snapshot.max_;
    } else {
      min_ = std::min(min_, snapshot.min_);
      max_ = std::max(max_, snapshot.max_);
    }
  }
  count_ += snapshot.count_;
  sum_ += snapshot.sum_;
  return Status::Ok();
}

void QuantileSketch::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  positive_.clear();
  negative_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double QuantileSketch::QuantileLocked(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  if (count_ == 0) return 0.0;
  const int64_t rank =
      std::min(count_ - 1,
               static_cast<int64_t>(q * static_cast<double>(count_)));
  int64_t seen = 0;
  // Ascending value order: most-negative magnitude first (reverse index
  // order over the negative table), then zero, then positives.
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    seen += it->second;
    if (seen > rank) return -BucketValue(it->first);
  }
  seen += zero_count_;
  if (seen > rank) return 0.0;
  for (const auto& [index, n] : positive_) {
    seen += n;
    if (seen > rank) return BucketValue(index);
  }
  return max_;
}

double QuantileSketch::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

int64_t QuantileSketch::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double QuantileSketch::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double QuantileSketch::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double QuantileSketch::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double QuantileSketch::MassBelow(double x) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  double below = 0.0;
  // A bucket with index i covers magnitudes (gamma^(i-1), gamma^i]. Mass
  // is attributed fractionally in log space when x lands inside it.
  const auto fraction_below = [this](int32_t index, double magnitude) {
    const double lo = static_cast<double>(index) - 1.0;
    const double hi = static_cast<double>(index);
    const double pos = std::log(magnitude) / log_gamma_;
    return std::min(1.0, std::max(0.0, (pos - lo) / (hi - lo)));
  };
  for (const auto& [index, n] : negative_) {
    // Bucket holds values in [-gamma^i, -gamma^(i-1)).
    if (x >= 0.0) {
      below += static_cast<double>(n);
      continue;
    }
    const double mag = std::fabs(x);
    if (mag < kMinTrackable) {
      below += static_cast<double>(n);
      continue;
    }
    // Values below x are those with magnitude above |x|.
    below += static_cast<double>(n) * (1.0 - fraction_below(index, mag));
  }
  if (x > 0.0) below += static_cast<double>(zero_count_);
  for (const auto& [index, n] : positive_) {
    if (x <= 0.0) continue;
    const double mag = x;
    if (mag < kMinTrackable) continue;
    below += static_cast<double>(n) * fraction_below(index, mag);
  }
  return below / static_cast<double>(count_);
}

JsonValue QuantileSketch::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue::Object out;
  out["alpha"] = JsonValue(alpha_);
  out["count"] = JsonValue(static_cast<double>(count_));
  out["sum"] = JsonValue(sum_);
  out["min"] = JsonValue(min_);
  out["max"] = JsonValue(max_);
  out["zero"] = JsonValue(static_cast<double>(zero_count_));
  JsonValue::Object pos;
  for (const auto& [index, n] : positive_) {
    pos[std::to_string(index)] = JsonValue(static_cast<double>(n));
  }
  JsonValue::Object neg;
  for (const auto& [index, n] : negative_) {
    neg[std::to_string(index)] = JsonValue(static_cast<double>(n));
  }
  out["pos"] = JsonValue(std::move(pos));
  out["neg"] = JsonValue(std::move(neg));
  return JsonValue(std::move(out));
}

Result<QuantileSketch> QuantileSketch::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("sketch payload is not an object");
  }
  const JsonValue& alpha = value.at("alpha");
  if (!alpha.is_number() || !(alpha.number() > 0.0 && alpha.number() < 1.0)) {
    return Status::InvalidArgument("sketch alpha must be in (0, 1)");
  }
  QuantileSketch sketch(alpha.number());
  const auto load_table = [&value](const char* key,
                                   std::map<int32_t, int64_t>* table,
                                   int64_t* total) -> Status {
    const JsonValue& node = value.at(key);
    if (node.is_null()) return Status::Ok();
    if (!node.is_object()) {
      return Status::InvalidArgument(std::string("sketch '") + key +
                                     "' is not an object");
    }
    for (const auto& [index_text, count_value] : node.object()) {
      char* end = nullptr;
      const long index = std::strtol(index_text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || index < INT32_MIN ||
          index > INT32_MAX) {
        return Status::InvalidArgument("sketch bucket index '" + index_text +
                                       "' is not a 32-bit integer");
      }
      if (!count_value.is_number() || count_value.number() < 0.0 ||
          !std::isfinite(count_value.number())) {
        return Status::InvalidArgument("sketch bucket count for '" +
                                       index_text + "' is invalid");
      }
      const int64_t n = static_cast<int64_t>(count_value.number());
      if (n > 0) {
        (*table)[static_cast<int32_t>(index)] += n;
        *total += n;
      }
    }
    return Status::Ok();
  };
  int64_t total = 0;
  VGOD_RETURN_IF_ERROR(load_table("pos", &sketch.positive_, &total));
  VGOD_RETURN_IF_ERROR(load_table("neg", &sketch.negative_, &total));
  const JsonValue& zero = value.at("zero");
  if (!zero.is_null()) {
    if (!zero.is_number() || zero.number() < 0.0 ||
        !std::isfinite(zero.number())) {
      return Status::InvalidArgument("sketch zero-bucket count is invalid");
    }
    sketch.zero_count_ = static_cast<int64_t>(zero.number());
    total += sketch.zero_count_;
  }
  sketch.count_ = total;
  if (value.at("sum").is_number()) sketch.sum_ = value.at("sum").number();
  if (value.at("min").is_number()) sketch.min_ = value.at("min").number();
  if (value.at("max").is_number()) sketch.max_ = value.at("max").number();
  return sketch;
}

JsonValue QuantileSketch::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue::Object out;
  out["count"] = JsonValue(static_cast<double>(count_));
  out["min"] = JsonValue(min_);
  out["max"] = JsonValue(max_);
  static const std::pair<const char*, double> kLadder[] = {
      {"p01", 0.01}, {"p05", 0.05}, {"p25", 0.25}, {"p50", 0.50},
      {"p75", 0.75}, {"p95", 0.95}, {"p99", 0.99}};
  for (const auto& [name, q] : kLadder) {
    out[name] = JsonValue(QuantileLocked(q));
  }
  return JsonValue(std::move(out));
}

double PopulationStabilityIndex(const QuantileSketch& baseline,
                                const QuantileSketch& live) {
  if (baseline.Count() == 0 || live.Count() == 0) return 0.0;
  // Decile edges of the baseline give ten ~equi-probable reference bins;
  // live mass is measured against the same edges.
  constexpr int kBins = 10;
  std::vector<double> edges;
  edges.reserve(kBins - 1);
  for (int i = 1; i < kBins; ++i) {
    edges.push_back(baseline.Quantile(static_cast<double>(i) / kBins));
  }
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  double psi = 0.0;
  double prev_base = 0.0;
  double prev_live = 0.0;
  const auto accumulate = [&psi](double pb, double pl) {
    pb = std::max(pb, kEpsilonMass);
    pl = std::max(pl, kEpsilonMass);
    psi += (pl - pb) * std::log(pl / pb);
  };
  for (double edge : edges) {
    const double cb = baseline.MassBelow(edge);
    const double cl = live.MassBelow(edge);
    accumulate(cb - prev_base, cl - prev_live);
    prev_base = cb;
    prev_live = cl;
  }
  accumulate(1.0 - prev_base, 1.0 - prev_live);
  return psi;
}

double KolmogorovSmirnovDistance(const QuantileSketch& baseline,
                                 const QuantileSketch& live) {
  if (baseline.Count() == 0 || live.Count() == 0) return 0.0;
  double max_gap = 0.0;
  for (double x : EvaluationGrid(baseline, live)) {
    max_gap = std::max(max_gap,
                       std::fabs(baseline.MassBelow(x) - live.MassBelow(x)));
  }
  return std::min(1.0, max_gap);
}

}  // namespace vgod::obs
