#ifndef VGOD_OBS_SKETCH_H_
#define VGOD_OBS_SKETCH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/json.h"

namespace vgod::obs {

/// Mergeable streaming quantile sketch over log-spaced buckets (the
/// DDSketch construction): a value x > 0 lands in bucket
/// ceil(log(x) / log(gamma)) with gamma = (1 + alpha) / (1 - alpha),
/// which bounds the *relative* error of any quantile estimate by alpha.
/// Negative values mirror into a second bucket table and values with
/// |x| < min_trackable collapse into a dedicated zero bucket, so the
/// sketch covers the full served-score range (contextual / combined VGOD
/// scores can be negative or tiny) without precision cliffs.
///
/// Properties the drift layer leans on:
///  - Mergeable: Merge() of two sketches with the same alpha equals the
///    sketch of the concatenated streams (bucket-wise addition), so
///    per-thread or per-window sub-sketches combine exactly.
///  - Deterministic: bucket contents depend only on the multiset of
///    inserted values, never on insertion order or thread count, and
///    export iterates the ordered bucket map.
///  - TSan-clean: all mutation goes through one mutex; reads take the
///    same mutex and copy out. Insert cost is one map lookup — cheap
///    relative to a scored request, and the serving path records at most
///    one value per scored node.
class QuantileSketch {
 public:
  /// `alpha` is the relative-accuracy target in (0, 1); 0.01 gives 1%
  /// relative error with ~1400 buckets over 60 decades (in practice a few
  /// dozen materialized buckets for score-shaped data).
  explicit QuantileSketch(double alpha = 0.01);

  QuantileSketch(const QuantileSketch& other);
  QuantileSketch& operator=(const QuantileSketch& other);

  void Insert(double value);
  /// Bucket-wise addition. Returns InvalidArgument when the accuracy
  /// parameters differ (the bucket grids would not line up).
  Status Merge(const QuantileSketch& other);
  void Clear();

  /// Estimate of the q-quantile (q in [0, 1], clamped). Returns 0 for an
  /// empty sketch. The estimate is the geometric midpoint of the owning
  /// bucket, so |estimate - exact| <= alpha * |exact| for values outside
  /// the zero bucket.
  double Quantile(double q) const;

  int64_t Count() const;
  double Sum() const;
  double Min() const;  ///< 0 when empty.
  double Max() const;  ///< 0 when empty.
  double alpha() const { return alpha_; }

  /// Probability mass in [lo, hi) estimated from bucket overlap —
  /// the primitive PSI / KS comparisons are built on. Bucket mass is
  /// attributed by geometric position, fractionally when a bucket
  /// straddles an edge.
  double MassBelow(double x) const;

  /// Serializes to {"alpha":..,"count":..,"sum":..,"min":..,"max":..,
  /// "zero":..,"pos":{"idx":count,...},"neg":{...}} — the payload a
  /// fingerprint embeds in a bundle. FromJson validates shape and bucket
  /// indices and rejects non-finite or negative counts.
  JsonValue ToJson() const;
  static Result<QuantileSketch> FromJson(const JsonValue& value);

  /// Compact summary used by /debug/drift: count plus a fixed quantile
  /// ladder (p1/p5/p25/p50/p75/p95/p99).
  JsonValue SummaryJson() const;

 private:
  // Log-bucket index for magnitude m >= min_trackable.
  int32_t BucketIndex(double magnitude) const;
  // Geometric midpoint of bucket i: gamma^(i - 1/2).
  double BucketValue(int32_t index) const;
  double QuantileLocked(double q) const;

  double alpha_;
  double gamma_;
  double log_gamma_;
  // Magnitudes below this fall into the zero bucket; bounds the bucket
  // index range so hostile inputs cannot allocate unbounded buckets.
  static constexpr double kMinTrackable = 1e-12;

  mutable std::mutex mu_;
  std::map<int32_t, int64_t> positive_;  // value = +gamma^(i-1/2)
  std::map<int32_t, int64_t> negative_;  // value = -gamma^(i-1/2)
  int64_t zero_count_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Population Stability Index between two sketches over a shared edge
/// grid derived from the union of their supports: sum over bins of
/// (p_live - p_base) * ln(p_live / p_base), with epsilon smoothing so
/// empty bins do not produce infinities. Conventional reading: < 0.1
/// stable, 0.1–0.25 moderate shift, > 0.25 major shift. Returns 0 when
/// either sketch is empty.
double PopulationStabilityIndex(const QuantileSketch& baseline,
                                const QuantileSketch& live);

/// Kolmogorov–Smirnov distance: max over the shared edge grid of
/// |CDF_base(x) - CDF_live(x)|, in [0, 1]. Returns 0 when either sketch
/// is empty.
double KolmogorovSmirnovDistance(const QuantileSketch& baseline,
                                 const QuantileSketch& live);

}  // namespace vgod::obs

#endif  // VGOD_OBS_SKETCH_H_
