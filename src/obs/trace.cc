#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/json.h"

namespace vgod::obs {
namespace {

constexpr size_t kRingCapacity = 1 << 16;

std::atomic<bool> g_enabled{false};

/// Ring buffer of completed spans. Spans end at epoch/phase frequency, not
/// per tensor element, so a mutex is cheap enough here; the fast path for
/// disabled tracing never reaches this.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> events;  // Ring storage, capacity kRingCapacity.
  size_t next = 0;                 // Ring write position.
  int64_t total = 0;               // Events ever recorded.
};

Ring& GetRing() {
  static Ring* ring = new Ring();
  return *ring;
}

std::string& EnvPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTraceEnabled(bool enabled) {
  TraceEpoch();  // Pin the epoch no later than the first enable.
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void InitTraceFromEnv() {
  const char* value = std::getenv("VGOD_TRACE");
  if (value == nullptr || value[0] == '\0' ||
      (value[0] == '0' && value[1] == '\0')) {
    return;
  }
  const std::string text(value);
  if (text.find('/') != std::string::npos ||
      (text.size() > 5 && text.compare(text.size() - 5, 5, ".json") == 0)) {
    EnvPathStorage() = text;
  }
  SetTraceEnabled(true);
}

std::string TraceEnvPath() { return EnvPathStorage(); }

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

uint32_t TraceThreadId() {
  // Small per-thread id assigned in first-use order: stabler across runs
  // than hashed std::thread::id values, and readable in trace viewers.
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

void RecordEvent(TraceEvent event) {
  Ring& ring = GetRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(std::move(event));
  } else {
    ring.events[ring.next] = std::move(event);
  }
  ring.next = (ring.next + 1) % kRingCapacity;
  ++ring.total;
}

}  // namespace

void RecordCompleteEvent(std::string name, int64_t ts_us, int64_t dur_us) {
  if (!TraceEnabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.tid = TraceThreadId();
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  RecordEvent(std::move(event));
}

void RecordFlowEvent(std::string name, uint64_t flow_id, bool finish) {
  if (!TraceEnabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.ph = finish ? 'f' : 's';
  event.tid = TraceThreadId();
  event.ts_us = TraceNowMicros();
  event.flow_id = flow_id;
  RecordEvent(std::move(event));
}

std::vector<TraceEvent> SnapshotTraceEvents() {
  Ring& ring = GetRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() < kRingCapacity) return ring.events;
  // Unroll the ring: oldest event sits at the write position.
  std::vector<TraceEvent> out;
  out.reserve(kRingCapacity);
  for (size_t i = 0; i < kRingCapacity; ++i) {
    out.push_back(ring.events[(ring.next + i) % kRingCapacity]);
  }
  return out;
}

size_t TraceEventCount() {
  Ring& ring = GetRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.events.size();
}

int64_t TraceDroppedCount() {
  Ring& ring = GetRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.total - static_cast<int64_t>(ring.events.size());
}

void ClearTrace() {
  Ring& ring = GetRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events.clear();
  ring.next = 0;
  ring.total = 0;
}

std::string TraceToJson() {
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonString(&out, events[i].name);
    out.append(",\"cat\":\"vgod\",\"ph\":\"");
    out.push_back(events[i].ph);
    out.append("\",\"pid\":1,\"tid\":");
    AppendJsonNumber(&out, static_cast<double>(events[i].tid));
    out.append(",\"ts\":");
    AppendJsonNumber(&out, static_cast<double>(events[i].ts_us));
    if (events[i].ph == 'X') {
      out.append(",\"dur\":");
      AppendJsonNumber(&out, static_cast<double>(events[i].dur_us));
    } else {
      // Flow events carry the binding id instead of a duration; the
      // finish additionally binds to the enclosing slice ("bp":"e").
      out.append(",\"id\":");
      AppendJsonNumber(&out, static_cast<double>(events[i].flow_id));
      if (events[i].ph == 'f') out.append(",\"bp\":\"e\"");
    }
    out.push_back('}');
  }
  out.append("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":");
  AppendJsonNumber(&out, static_cast<double>(TraceDroppedCount()));
  out.append("}}");
  return out;
}

Status WriteTrace(const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot write trace to " + path);
  file << TraceToJson() << "\n";
  if (!file) return Status::IoError("failed writing trace to " + path);
  return Status::Ok();
}

}  // namespace vgod::obs
