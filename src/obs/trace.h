#ifndef VGOD_OBS_TRACE_H_
#define VGOD_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace vgod::obs {

/// One trace event, timestamped in microseconds since the process trace
/// epoch. `ph` follows the Chrome trace_event phases this ring records:
/// 'X' complete span, 's' flow start, 'f' flow finish. Flow events carry
/// `flow_id` (the serving layer uses the request id) and tie a span on
/// one thread to a span on another in the viewer.
struct TraceEvent {
  std::string name;
  char ph = 'X';
  uint32_t tid = 0;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint64_t flow_id = 0;
};

/// Global on/off switch. When off, VGOD_TRACE_SPAN costs one relaxed
/// atomic load and nothing is recorded.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Applies the VGOD_TRACE environment variable: unset, "" or "0" leaves
/// tracing off; anything else turns it on. A value containing '/' or
/// ending in ".json" additionally becomes the default export path
/// returned by TraceEnvPath().
void InitTraceFromEnv();

/// Export path carried by VGOD_TRACE (empty when none was given).
std::string TraceEnvPath();

/// Microseconds since the process trace epoch (steady clock).
int64_t TraceNowMicros();

/// Stable small id for the calling thread (used as "tid" in exports).
uint32_t TraceThreadId();

/// Appends a completed span to the in-process ring buffer (oldest events
/// are overwritten past the capacity). No-op when tracing is disabled.
void RecordCompleteEvent(std::string name, int64_t ts_us, int64_t dur_us);

/// Appends a flow event at the current timestamp on the calling thread:
/// `finish` false records the flow start ("ph":"s"), true the finish
/// ("ph":"f", binding to the enclosing slice). Record the start inside a
/// span on the producing thread and the finish inside a span on the
/// consuming thread with the same `flow_id`, and trace viewers draw an
/// arrow between the two. No-op when tracing is disabled.
void RecordFlowEvent(std::string name, uint64_t flow_id, bool finish);

/// Events currently buffered, oldest first. Number dropped by ring
/// wrap-around is reported by TraceDroppedCount().
std::vector<TraceEvent> SnapshotTraceEvents();
size_t TraceEventCount();
int64_t TraceDroppedCount();
void ClearTrace();

/// Chrome trace_event JSON ("catapult" format): load via chrome://tracing
/// or https://ui.perfetto.dev.
std::string TraceToJson();
Status WriteTrace(const std::string& path);

/// RAII span: records one complete event from construction to destruction.
/// `name` is copied only when tracing is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_us_ = TraceNowMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      RecordCompleteEvent(name_, start_us_, TraceNowMicros() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

}  // namespace vgod::obs

#define VGOD_OBS_CONCAT_INNER(a, b) a##b
#define VGOD_OBS_CONCAT(a, b) VGOD_OBS_CONCAT_INNER(a, b)
#define VGOD_TRACE_SPAN(name) \
  ::vgod::obs::TraceSpan VGOD_OBS_CONCAT(vgod_trace_span_, __LINE__)(name)

#endif  // VGOD_OBS_TRACE_H_
