#include "serve/access_log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/logging.h"
#include "obs/json.h"

namespace vgod::serve {

std::string AccessRecordToJson(const AccessRecord& record) {
  std::string out = "{\"id\":" + std::to_string(record.request_id);
  out.append(",\"path\":");
  obs::AppendJsonString(&out, record.path);
  out.append(",\"status\":" + std::to_string(record.status));
  out.append(",\"nodes\":" + std::to_string(record.num_nodes));
  out.append(",\"batch_size\":" + std::to_string(record.batch_size));
  out.append(record.shed ? ",\"shed\":true" : ",\"shed\":false");
  out.append(",\"error_class\":");
  obs::AppendJsonString(&out, record.error_class);
  out.append(",\"parse_us\":" + std::to_string(record.parse_us));
  out.append(",\"queue_wait_us\":" + std::to_string(record.queue_wait_us));
  out.append(",\"batch_assembly_us\":" +
             std::to_string(record.batch_assembly_us));
  out.append(",\"score_us\":" + std::to_string(record.score_us));
  out.append(",\"serialize_us\":" + std::to_string(record.serialize_us));
  out.append(",\"total_us\":" + std::to_string(record.total_us));
  out.append(",\"tensor_peak_bytes\":" +
             std::to_string(record.tensor_peak_bytes));
  out.push_back('}');
  return out;
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(const std::string& path) {
  std::unique_ptr<AccessLog> log(new AccessLog());
  if (path == "-" || path == "stderr") {
    log->to_stderr_ = true;
    return log;
  }
  log->file_.open(path, std::ios::app);
  if (!log->file_) {
    return Status::IoError("cannot open access log " + path);
  }
  return log;
}

void AccessLog::Record(const AccessRecord& record) {
  const std::string line = AccessRecordToJson(record);
  std::lock_guard<std::mutex> lock(mu_);
  if (to_stderr_) {
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  file_ << line << '\n';
  file_.flush();
}

AccessLog* AccessLog::FromEnv() {
  static AccessLog* log = []() -> AccessLog* {
    const char* value = std::getenv("VGOD_ACCESS_LOG");
    if (value == nullptr || value[0] == '\0' ||
        (value[0] == '0' && value[1] == '\0')) {
      return nullptr;
    }
    Result<std::unique_ptr<AccessLog>> opened = Open(value);
    if (!opened.ok()) {
      VGOD_LOG(Warning) << "VGOD_ACCESS_LOG disabled: "
                        << opened.status().ToString();
      return nullptr;
    }
    return opened.value().release();
  }();
  return log;
}

uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vgod::serve
