#ifndef VGOD_SERVE_ACCESS_LOG_H_
#define VGOD_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "core/status.h"

namespace vgod::serve {

/// One request's worth of access-log data: identity, outcome, and the
/// per-stage latency breakdown (microseconds). The stage fields mirror
/// the serve.stage.* histograms; docs/OBSERVABILITY.md documents the
/// schema. Requests that never reach a stage leave its field at 0.
struct AccessRecord {
  uint64_t request_id = 0;
  std::string path;
  int status = 200;
  int num_nodes = 0;    // Node ids asked for (subgraph requests: graph size).
  int batch_size = 0;   // Size of the batch that answered the request.
  bool shed = false;    // Load-shedding rejection (queue full).
  std::string error_class;  // Empty on success; CountHttpError's class name.
  int64_t parse_us = 0;
  int64_t queue_wait_us = 0;
  int64_t batch_assembly_us = 0;
  int64_t score_us = 0;
  int64_t serialize_us = 0;
  int64_t total_us = 0;
  /// Peak live tensor bytes allocated by the Score() call that answered
  /// the request (net of frees, high-water on the scoring thread) — lets
  /// /debug/slow correlate tail latency with memory pressure.
  int64_t tensor_peak_bytes = 0;
};

/// One compact JSON object (no trailing newline) for the record — the
/// access-log line format, also reused by the /debug/slow payload.
std::string AccessRecordToJson(const AccessRecord& record);

/// Structured JSON access log: one line per HTTP request, flushed per
/// line so a tail -f (or tools/check_serve.py) sees requests as they
/// complete. Thread-safe; connection threads log concurrently.
class AccessLog {
 public:
  /// Opens `path` for appending. "-" or "stderr" log to stderr instead.
  static Result<std::unique_ptr<AccessLog>> Open(const std::string& path);

  void Record(const AccessRecord& record);

  /// Process-wide log gated by VGOD_ACCESS_LOG (a path, or "-"/"stderr").
  /// Returns nullptr when the variable is unset/empty/"0" or the path
  /// cannot be opened (logged once as a warning).
  static AccessLog* FromEnv();

 private:
  AccessLog() = default;

  std::mutex mu_;
  std::ofstream file_;
  bool to_stderr_ = false;
};

/// Monotonic process-wide request id; never returns 0 (0 means "no id
/// assigned yet" throughout the serving stack).
uint64_t NextRequestId();

}  // namespace vgod::serve

#endif  // VGOD_SERVE_ACCESS_LOG_H_
