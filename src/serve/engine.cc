#include "serve/engine.h"

#include <algorithm>

#include "core/faultinject.h"
#include "core/parallel.h"
#include "detectors/vbm.h"
#include "detectors/vgod.h"
#include "eval/metrics.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/access_log.h"

namespace vgod::serve {
namespace {

// Batch-size histogram edges: powers of two up to a generous cap.
const std::vector<double>& BatchSizeBounds() {
  static const std::vector<double>* bounds =
      new std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128};
  return *bounds;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double SecondsBetween(std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Publishes the engine atomics as serve.engine.* gauges. Gauge Set() is
/// a relaxed atomic store on a cached pointer, cheap enough to call on
/// every update so /metrics (both formats) always agrees with the
/// in-process EngineStats.
void PublishEngineStats(const EngineStats& stats) {
  static obs::Gauge* batches = obs::MetricsRegistry::Global().GetGauge(
      "serve.engine.batches_flushed");
  static obs::Gauge* served = obs::MetricsRegistry::Global().GetGauge(
      "serve.engine.requests_served");
  static obs::Gauge* shed =
      obs::MetricsRegistry::Global().GetGauge("serve.engine.shed");
  batches->Set(static_cast<double>(stats.batches_flushed));
  served->Set(static_cast<double>(stats.requests_served));
  shed->Set(static_cast<double>(stats.shed));
}

/// Records one request's engine-side stage breakdown into the
/// serve.stage.* histograms and closes its cross-thread trace flow
/// (the "f" end of the arrow the accept thread started at Submit).
void ObserveStages(const StageTiming& timing) {
  VGOD_HISTOGRAM_OBSERVE("serve.stage.queue_wait.seconds",
                         timing.queue_wait_seconds);
  VGOD_HISTOGRAM_OBSERVE("serve.stage.batch_assembly.seconds",
                         timing.batch_assembly_seconds);
  VGOD_HISTOGRAM_OBSERVE("serve.stage.score.seconds", timing.score_seconds);
  obs::RecordFlowEvent("serve/request", timing.request_id, /*finish=*/true);
}

/// Runs the detector and validates every emitted score vector before any
/// request sees it. Unsupervised detectors routinely diverge or emit
/// degenerate scores, so the serving layer treats the score vector as
/// untrusted: a non-finite value turns into a structured Internal error
/// (-> HTTP 500) instead of NaNs in response JSON or sort UB downstream.
/// The "serve.score" fault site lets tests force the degenerate case.
Result<detectors::DetectorOutput> GuardedScore(
    const detectors::OutlierDetector& detector, const AttributedGraph& graph,
    int64_t* tensor_peak_bytes) {
  obs::BeginThreadMemoryWindow();
  detectors::DetectorOutput out;
  {
    // The profiler region every /debug/profile attribution hangs off:
    // detector and kernel scopes nest under serve/score on this thread.
    VGOD_PROFILE_SCOPE("serve/score");
    out = detector.Score(graph);
  }
  *tensor_peak_bytes = obs::ThreadMemoryWindowPeak();
  if (faults::Enabled() && !out.score.empty()) {
    out.score[0] = faults::MaybeNan("serve.score", out.score[0]);
  }
  Status finite = eval::NonFiniteCheck(out.score, "detector score");
  if (finite.ok()) {
    finite = eval::NonFiniteCheck(out.structural_score, "structural score");
  }
  if (finite.ok()) {
    finite = eval::NonFiniteCheck(out.contextual_score, "contextual score");
  }
  if (!finite.ok()) {
    VGOD_COUNTER_INC("serve.errors.nonfinite_scores");
    return Status::Internal("detector '" + detector.name() +
                            "' produced an unusable score vector (" +
                            finite.message() + ")");
  }
  return out;
}

/// Derives the online scorer's embedding hook from the served detector.
/// VBM (directly or inside VGOD) contributes its fitted Eq. 6 transform
/// and self-loop setting; an unfitted VBM or any other detector falls
/// back to identity embedding over raw attributes — the score definition
/// (neighbor variance) is unchanged, only the feature space differs.
stream::OnlineScorerConfig ScorerConfigFor(
    const detectors::OutlierDetector& detector) {
  stream::OnlineScorerConfig config;
  const detectors::Vbm* vbm = dynamic_cast<const detectors::Vbm*>(&detector);
  if (vbm == nullptr) {
    if (const auto* vgod = dynamic_cast<const detectors::Vgod*>(&detector)) {
      vbm = &vgod->vbm();
    }
  }
  if (vbm != nullptr && vbm->expected_attribute_dim() > 0) {
    config.include_self = vbm->config().self_loop;
    // `vbm` points into the engine-owned detector, which outlives the
    // engine-owned scorer holding this closure.
    config.embed = [vbm](const Tensor& rows) { return vbm->EmbedRows(rows); };
  }
  return config;
}

/// Bumps stream.events.total plus the per-op counter for one applied
/// event. Separate literal call sites so each VGOD_COUNTER_INC caches
/// its registry pointer.
void CountStreamEvent(stream::EventType type) {
  VGOD_COUNTER_INC("stream.events.total");
  switch (type) {
    case stream::EventType::kAddEdge:
      VGOD_COUNTER_INC("stream.events.add_edge");
      break;
    case stream::EventType::kRemoveEdge:
      VGOD_COUNTER_INC("stream.events.remove_edge");
      break;
    case stream::EventType::kAddNode:
      VGOD_COUNTER_INC("stream.events.add_node");
      break;
    case stream::EventType::kUpdateAttributes:
      VGOD_COUNTER_INC("stream.events.update_attributes");
      break;
  }
}

/// Publishes the delta store's current shape as stream.* gauges.
void PublishStreamGauges(const IngestResult& result) {
  static obs::Gauge* nodes =
      obs::MetricsRegistry::Global().GetGauge("stream.nodes");
  static obs::Gauge* delta_ops =
      obs::MetricsRegistry::Global().GetGauge("stream.delta.ops");
  static obs::Gauge* overlay = obs::MetricsRegistry::Global().GetGauge(
      "stream.delta.overlay_edges");
  static obs::Gauge* compactions =
      obs::MetricsRegistry::Global().GetGauge("stream.compactions");
  nodes->Set(static_cast<double>(result.num_nodes));
  delta_ops->Set(static_cast<double>(result.delta_ops));
  overlay->Set(static_cast<double>(result.overlay_edges));
  compactions->Set(static_cast<double>(result.compactions));
}

}  // namespace

ScoringEngine::ScoringEngine(
    std::unique_ptr<detectors::OutlierDetector> detector,
    AttributedGraph graph, EngineConfig config)
    : detector_(std::move(detector)),
      boot_graph_(std::make_shared<const AttributedGraph>(std::move(graph))),
      config_(config) {
  current_graph_ = boot_graph_;
  resident_nodes_.store(boot_graph_->num_nodes(), std::memory_order_relaxed);
  VGOD_CHECK(detector_ != nullptr) << "ScoringEngine needs a detector";
  VGOD_CHECK(config_.num_threads > 0) << "num_threads must be positive";
  VGOD_CHECK(config_.intra_op_threads >= 0)
      << "intra_op_threads must be >= 0 (0 = leave the global pool alone)";
  VGOD_CHECK(config_.max_batch > 0) << "max_batch must be positive";
  VGOD_CHECK(config_.max_queue > 0) << "max_queue must be positive";
}

ScoringEngine::~ScoringEngine() { Shutdown(); }

Status ScoringEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("engine already started");
  if (stopping_) return Status::FailedPrecondition("engine was shut down");
  // Size the kernel pool before any worker can touch it: Score() calls
  // from the pool below run parallel kernels on the global vgod::par pool.
  if (config_.intra_op_threads > 0) {
    par::SetNumThreads(config_.intra_op_threads);
  }
  started_ = true;
  workers_.reserve(config_.num_threads);
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void ScoringEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Without a started pool nothing drains the queue; fail what's left so
  // no future is abandoned.
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
  }
  for (Pending& pending : orphaned) {
    FinishRequest(&pending,
                  Status::FailedPrecondition("engine shut down"));
  }
}

Status ScoringEngine::EnableStreaming(StreamingOptions options) {
  if (options.watchlist_k <= 0) {
    return Status::InvalidArgument("watchlist_k must be positive");
  }
  if (options.compact_every < 0) {
    return Status::InvalidArgument("compact_every must be >= 0");
  }
  if (options.max_events_per_batch <= 0) {
    return Status::InvalidArgument("max_events_per_batch must be positive");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) {
      return Status::FailedPrecondition(
          "EnableStreaming must run before Start()");
    }
  }
  std::lock_guard<std::mutex> stream_lock(stream_mu_);
  if (store_ != nullptr) {
    return Status::FailedPrecondition("streaming already enabled");
  }
  if (!boot_graph_->has_attributes()) {
    return Status::FailedPrecondition(
        "streaming requires an attributed resident graph");
  }
  stream_options_ = options;
  auto store = std::make_unique<stream::DeltaGraphStore>(*boot_graph_);
  Result<stream::OnlineScorer> scorer =
      stream::OnlineScorer::Create(store.get(), ScorerConfigFor(*detector_));
  if (!scorer.ok()) return scorer.status();
  store_ = std::move(store);
  scorer_.emplace(std::move(scorer).value());
  return Status::Ok();
}

Result<IngestResult> ScoringEngine::Ingest(const stream::EventBatch& batch,
                                           uint64_t request_id) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "streaming is not enabled on this engine (serve with --streaming)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return Status::FailedPrecondition("engine is not accepting work");
    }
  }
  VGOD_TRACE_SPAN("stream/ingest");
  const auto start = std::chrono::steady_clock::now();
  IngestResult result;
  result.request_id = request_id != 0 ? request_id : NextRequestId();

  std::unique_lock<std::mutex> stream_lock(stream_mu_);
  Status valid = store_->ValidateBatch(batch.events);
  if (!valid.ok()) {
    VGOD_COUNTER_INC("stream.ingest.rejected");
    return valid;
  }
  // Interleave store and scorer per event (not store-then-replay): an
  // attribute update's O(deg) fan-out must see the adjacency as of its
  // position in the batch, not the post-batch adjacency.
  for (const stream::GraphEvent& event : batch.events) {
    store_->ApplyOne(event);
    Result<int> touched = scorer_->ApplyOne(event);
    if (!touched.ok()) {
      // Embedder failure mid-batch: the store is ahead of the scorer.
      // Resync before surfacing the error so the two cannot drift.
      VGOD_COUNTER_INC("stream.ingest.rejected");
      Status rebuilt = scorer_->Rebuild();
      if (!rebuilt.ok()) return rebuilt;
      return touched.status();
    }
    result.touched_nodes += touched.value();
    VGOD_HISTOGRAM_OBSERVE("stream.touched_nodes.per_event",
                           static_cast<double>(touched.value()));
    CountStreamEvent(event.type);
  }
  result.events_applied = static_cast<int>(batch.events.size());

  const bool auto_compact =
      stream_options_.compact_every > 0 &&
      store_->delta_ops() >= stream_options_.compact_every;
  if (batch.compact || auto_compact) {
    const auto compact_start = std::chrono::steady_clock::now();
    compacting_.store(true, std::memory_order_release);
    store_->Compact();
    compacting_.store(false, std::memory_order_release);
    result.compacted = true;
    result.compact_seconds = SecondsSince(compact_start);
    VGOD_HISTOGRAM_OBSERVE("stream.compaction.seconds",
                           result.compact_seconds);
  }

  // Publish the post-batch snapshot (pays the materialization here, on
  // the ingest request, so scoring workers only ever swap a pointer).
  std::shared_ptr<const AttributedGraph> snapshot = store_->Snapshot();
  {
    std::lock_guard<std::mutex> graph_lock(graph_mu_);
    current_graph_ = snapshot;
  }
  resident_nodes_.store(snapshot->num_nodes(), std::memory_order_release);

  result.num_nodes = snapshot->num_nodes();
  result.delta_ops = store_->delta_ops();
  result.overlay_edges = store_->overlay_edges();
  result.compactions = store_->compactions();
  result.apply_seconds = SecondsSince(start);
  VGOD_COUNTER_INC("stream.ingest.batches");
  VGOD_HISTOGRAM_OBSERVE("stream.ingest.latency.seconds",
                         result.apply_seconds);
  PublishStreamGauges(result);

  // Watchlist change detection: membership/order of node ids, not
  // scores (scores move on every batch). The callback runs after
  // stream_mu_ is released so it can fan out to the SSE hub without
  // holding an engine lock.
  std::vector<WatchlistEntry> changed_watchlist;
  if (watchlist_callback_) {
    std::vector<WatchlistEntry> top;
    std::vector<int> top_nodes;
    for (const auto& [node, score] :
         scorer_->TopK(stream_options_.watchlist_k)) {
      top.push_back({node, score});
      top_nodes.push_back(node);
    }
    if (top_nodes != last_watchlist_nodes_) {
      last_watchlist_nodes_ = std::move(top_nodes);
      changed_watchlist = std::move(top);
      VGOD_COUNTER_INC("stream.watchlist.changes");
    }
  }
  stream_lock.unlock();
  if (!changed_watchlist.empty()) {
    watchlist_callback_(changed_watchlist);
  }
  return result;
}

Result<std::vector<WatchlistEntry>> ScoringEngine::Watchlist(int k) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "streaming is not enabled on this engine (serve with --streaming)");
  }
  if (k <= 0) k = stream_options_.watchlist_k;
  std::lock_guard<std::mutex> stream_lock(stream_mu_);
  std::vector<WatchlistEntry> out;
  for (const auto& [node, score] : scorer_->TopK(k)) {
    out.push_back({node, score});
  }
  return out;
}

bool ScoringEngine::Ready(std::string* reason) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      *reason = "engine is draining";
      return false;
    }
    if (!started_) {
      *reason = "engine not started";
      return false;
    }
  }
  if (compacting_.load(std::memory_order_acquire)) {
    *reason = "compaction snapshot swap in flight";
    return false;
  }
  return true;
}

std::shared_ptr<const AttributedGraph> ScoringEngine::CurrentGraph() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return current_graph_;
}

EngineStats ScoringEngine::stats() const {
  EngineStats stats;
  stats.batches_flushed = score_calls_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.shed = shed_count_.load(std::memory_order_relaxed);
  return stats;
}

Status ScoringEngine::Enqueue(Pending* pending) {
  pending->enqueued = std::chrono::steady_clock::now();
  if (pending->request_id == 0) pending->request_id = NextRequestId();
  const uint64_t request_id = pending->request_id;
  VGOD_COUNTER_INC("serve.requests.total");

  Status rejected = Status::Ok();
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_) {
      rejected = Status::FailedPrecondition("engine is not accepting work");
    } else if (static_cast<int>(queue_.size()) >= config_.max_queue) {
      rejected = Status::OutOfRange("scoring queue is full");
      shed = true;
    } else {
      queue_.push_back(std::move(*pending));
      obs::MetricsRegistry::Global()
          .GetGauge("serve.queue.depth")
          ->Set(static_cast<double>(queue_.size()));
    }
  }
  if (!rejected.ok()) {
    VGOD_COUNTER_INC("serve.requests.rejected");
    if (shed) {
      shed_count_.fetch_add(1, std::memory_order_relaxed);
      PublishEngineStats(stats());
    }
    return rejected;
  }
  // Flow start on the submitting (accept) thread; the batch worker that
  // executes the request records the matching finish, tying the two
  // threads' spans together in the trace viewer.
  obs::RecordFlowEvent("serve/request", request_id, /*finish=*/false);
  cv_.notify_one();
  return Status::Ok();
}

std::future<Result<ScoreResult>> ScoringEngine::Submit(Pending pending) {
  std::future<Result<ScoreResult>> future = pending.promise.get_future();
  const Status queued = Enqueue(&pending);
  if (!queued.ok()) {
    // `pending` still owns the promise only in the rejection path.
    pending.promise.set_value(queued);
  }
  return future;
}

Status ScoringEngine::ValidateNodes(const std::vector<int>& nodes) const {
  // Validate ids up front so a bad request cannot poison a whole batch.
  // Under streaming the bound is the latest published snapshot's node
  // count, which only ever grows — a node valid here stays valid for
  // whichever (same-or-newer) snapshot the batch worker scores.
  const int resident = resident_nodes_.load(std::memory_order_acquire);
  for (int node : nodes) {
    if (node < 0 || node >= resident) {
      VGOD_COUNTER_INC("serve.requests.total");
      VGOD_COUNTER_INC("serve.requests.rejected");
      return Status::OutOfRange(
          "node " + std::to_string(node) + " outside resident graph (0.." +
          std::to_string(resident - 1) + ")");
    }
  }
  return Status::Ok();
}

Status ScoringEngine::ValidateSubgraph(const AttributedGraph& graph) const {
  // The detector's weights are bound to the training attribute schema; a
  // mismatched subgraph would abort deep inside a kernel VGOD_CHECK, so
  // reject it here instead (inductive scoring requires the same schema).
  if (graph.attribute_dim() != boot_graph_->attribute_dim()) {
    VGOD_COUNTER_INC("serve.requests.total");
    VGOD_COUNTER_INC("serve.requests.rejected");
    return Status::InvalidArgument(
        "subgraph attribute dim " + std::to_string(graph.attribute_dim()) +
        " does not match the served model's " +
        std::to_string(boot_graph_->attribute_dim()));
  }
  return Status::Ok();
}

std::future<Result<ScoreResult>> ScoringEngine::SubmitNodes(
    std::vector<int> nodes, uint64_t request_id) {
  const Status valid = ValidateNodes(nodes);
  if (!valid.ok()) {
    std::promise<Result<ScoreResult>> broken;
    broken.set_value(valid);
    return broken.get_future();
  }
  Pending pending;
  pending.nodes = std::move(nodes);
  pending.request_id = request_id;
  return Submit(std::move(pending));
}

std::future<Result<ScoreResult>> ScoringEngine::SubmitGraph(
    AttributedGraph graph, uint64_t request_id) {
  const Status valid = ValidateSubgraph(graph);
  if (!valid.ok()) {
    std::promise<Result<ScoreResult>> broken;
    broken.set_value(valid);
    return broken.get_future();
  }
  Pending pending;
  pending.subgraph =
      std::make_shared<const AttributedGraph>(std::move(graph));
  pending.request_id = request_id;
  return Submit(std::move(pending));
}

void ScoringEngine::SubmitNodesAsync(std::vector<int> nodes,
                                     uint64_t request_id, ScoreCallback done) {
  const Status valid = ValidateNodes(nodes);
  if (!valid.ok()) {
    done(valid);
    return;
  }
  Pending pending;
  pending.nodes = std::move(nodes);
  pending.request_id = request_id;
  pending.callback = std::move(done);
  const Status queued = Enqueue(&pending);
  // On rejection Enqueue leaves `pending` (and so the callback) with us.
  if (!queued.ok()) pending.callback(queued);
}

void ScoringEngine::SubmitGraphAsync(AttributedGraph graph,
                                     uint64_t request_id, ScoreCallback done) {
  const Status valid = ValidateSubgraph(graph);
  if (!valid.ok()) {
    done(valid);
    return;
  }
  Pending pending;
  pending.subgraph =
      std::make_shared<const AttributedGraph>(std::move(graph));
  pending.request_id = request_id;
  pending.callback = std::move(done);
  const Status queued = Enqueue(&pending);
  if (!queued.ok()) pending.callback(queued);
}

Result<ScoreResult> ScoringEngine::ScoreNodes(std::vector<int> nodes,
                                              uint64_t request_id) {
  return SubmitNodes(std::move(nodes), request_id).get();
}

Result<ScoreResult> ScoringEngine::ScoreGraph(AttributedGraph graph,
                                              uint64_t request_id) {
  return SubmitGraph(std::move(graph), request_id).get();
}

void ScoringEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // Drained.
      continue;
    }

    Pending first = std::move(queue_.front());
    queue_.pop_front();
    first.dequeued = std::chrono::steady_clock::now();

    if (first.subgraph != nullptr) {
      obs::MetricsRegistry::Global()
          .GetGauge("serve.queue.depth")
          ->Set(static_cast<double>(queue_.size()));
      lock.unlock();
      ExecuteSubgraph(std::move(first));
      lock.lock();
      continue;
    }

    // Coalesce node requests: flush on max_batch, on the oldest request
    // reaching max_delay_us, or immediately while draining. A subgraph
    // request at the head stops accumulation so FIFO order holds.
    std::vector<Pending> batch;
    batch.push_back(std::move(first));
    const auto deadline =
        batch.front().enqueued +
        std::chrono::microseconds(config_.max_delay_us);
    while (static_cast<int>(batch.size()) < config_.max_batch) {
      if (!queue_.empty()) {
        if (queue_.front().subgraph != nullptr) break;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        batch.back().dequeued = std::chrono::steady_clock::now();
        continue;
      }
      if (stopping_) break;
      if (cv_.wait_until(lock, deadline, [this] {
            return stopping_ || !queue_.empty();
          })) {
        continue;  // New work or draining; loop re-checks.
      }
      break;  // Deadline: flush what we have.
    }
    obs::MetricsRegistry::Global()
        .GetGauge("serve.queue.depth")
        ->Set(static_cast<double>(queue_.size()));
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
  }
}

void ScoringEngine::FinishRequest(Pending* pending,
                                  Result<ScoreResult> result) {
  VGOD_HISTOGRAM_OBSERVE("serve.request.latency.seconds",
                         SecondsSince(pending->enqueued));
  VGOD_COUNTER_INC("serve.requests.completed");
  if (pending->callback) {
    pending->callback(std::move(result));
  } else {
    pending->promise.set_value(std::move(result));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  PublishEngineStats(stats());
}

/// Engine-side stage breakdown for one request of a flushed batch:
/// queue wait (enqueue -> picked by a worker), batch assembly (picked ->
/// batch flush), and the shared Score() call.
StageTiming ScoringEngine::TimingFor(
    const Pending& pending, std::chrono::steady_clock::time_point score_start,
    double score_seconds, int batch_size, int64_t tensor_peak_bytes) {
  StageTiming timing;
  timing.request_id = pending.request_id;
  timing.queue_wait_seconds =
      SecondsBetween(pending.enqueued, pending.dequeued);
  timing.batch_assembly_seconds =
      SecondsBetween(pending.dequeued, score_start);
  timing.score_seconds = score_seconds;
  timing.batch_size = batch_size;
  timing.tensor_peak_bytes = tensor_peak_bytes;
  return timing;
}

void ScoringEngine::ExecuteBatch(std::vector<Pending> batch) {
  VGOD_TRACE_SPAN("serve/batch");
  {
    static obs::Histogram* batch_size =
        obs::MetricsRegistry::Global().GetHistogram("serve.batch.size",
                                                    BatchSizeBounds());
    batch_size->Observe(static_cast<double>(batch.size()));
  }
  const auto score_start = std::chrono::steady_clock::now();
  int64_t tensor_peak_bytes = 0;
  // Pin the latest published snapshot for the whole batch. Under
  // streaming this is how a batch never sees a half-mutated graph:
  // ingest swaps the pointer atomically and old snapshots stay immutable
  // for as long as anyone holds them.
  const std::shared_ptr<const AttributedGraph> resident = CurrentGraph();
  Result<detectors::DetectorOutput> guarded =
      GuardedScore(*detector_, *resident, &tensor_peak_bytes);
  const double score_seconds = SecondsSince(score_start);
  VGOD_HISTOGRAM_OBSERVE("serve.score.latency.seconds", score_seconds);
  score_calls_.fetch_add(1, std::memory_order_relaxed);
  if (!guarded.ok()) {
    for (Pending& pending : batch) {
      ObserveStages(TimingFor(pending, score_start, score_seconds,
                              static_cast<int>(batch.size()),
                              tensor_peak_bytes));
      FinishRequest(&pending, guarded.status());
    }
    return;
  }
  const detectors::DetectorOutput& out = guarded.value();

  for (Pending& pending : batch) {
    ScoreResult result;
    result.timing = TimingFor(pending, score_start, score_seconds,
                              static_cast<int>(batch.size()),
                              tensor_peak_bytes);
    ObserveStages(result.timing);
    result.nodes = std::move(pending.nodes);
    // Belt-and-braces under streaming: ids were validated against a
    // snapshot no newer than the one scored, so this cannot fire unless
    // that ordering invariant breaks — degrade to a 500, not UB.
    bool in_range = true;
    for (int node : result.nodes) {
      if (static_cast<size_t>(node) >= out.score.size()) {
        in_range = false;
        break;
      }
    }
    if (!in_range) {
      FinishRequest(&pending, Status::Internal(
                                  "scored snapshot is older than the "
                                  "validated node ids"));
      continue;
    }
    result.score.reserve(result.nodes.size());
    for (int node : result.nodes) {
      result.score.push_back(out.score[node]);
    }
    if (out.has_components()) {
      result.structural.reserve(result.nodes.size());
      result.contextual.reserve(result.nodes.size());
      for (int node : result.nodes) {
        result.structural.push_back(out.structural_score[node]);
        result.contextual.push_back(out.contextual_score[node]);
      }
    }
    FinishRequest(&pending, std::move(result));
  }
}

void ScoringEngine::ExecuteSubgraph(Pending pending) {
  VGOD_TRACE_SPAN("serve/subgraph");
  const auto score_start = std::chrono::steady_clock::now();
  int64_t tensor_peak_bytes = 0;
  Result<detectors::DetectorOutput> guarded =
      GuardedScore(*detector_, *pending.subgraph, &tensor_peak_bytes);
  const double score_seconds = SecondsSince(score_start);
  VGOD_HISTOGRAM_OBSERVE("serve.score.latency.seconds", score_seconds);
  score_calls_.fetch_add(1, std::memory_order_relaxed);
  const StageTiming timing = TimingFor(pending, score_start, score_seconds,
                                       /*batch_size=*/1, tensor_peak_bytes);
  ObserveStages(timing);
  if (!guarded.ok()) {
    FinishRequest(&pending, guarded.status());
    return;
  }
  detectors::DetectorOutput out = std::move(guarded).value();

  ScoreResult result;
  result.timing = timing;
  result.nodes.resize(pending.subgraph->num_nodes());
  for (int i = 0; i < pending.subgraph->num_nodes(); ++i) {
    result.nodes[i] = i;
  }
  result.score = std::move(out.score);
  result.structural = std::move(out.structural_score);
  result.contextual = std::move(out.contextual_score);
  FinishRequest(&pending, std::move(result));
}

}  // namespace vgod::serve
