#ifndef VGOD_SERVE_ENGINE_H_
#define VGOD_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "detectors/detector.h"
#include "graph/graph.h"
#include "obs/fingerprint.h"
#include "stream/delta_graph.h"
#include "stream/events.h"
#include "stream/online_scorer.h"

namespace vgod::serve {

/// Batching/threading knobs of the scoring engine (docs/SERVING.md,
/// docs/PARALLELISM.md for how the two thread pools compose).
struct EngineConfig {
  /// Worker threads executing detector Score() calls.
  int num_threads = 2;
  /// Intra-op kernel threads (vgod::par pool width) applied at Start().
  /// 0 leaves the global pool as configured (VGOD_NUM_THREADS or
  /// hardware_concurrency). Pick num_threads * intra_op_threads <= cores:
  /// the kernel pool runs one region at a time and concurrent scoring
  /// threads fall back to serial kernels, so batch-level and kernel-level
  /// parallelism never oversubscribe.
  int intra_op_threads = 0;
  /// A batch flushes when it holds this many node-scoring requests...
  int max_batch = 8;
  /// ...or when its oldest request has waited this long, whichever first.
  int max_delay_us = 1000;
  /// Submissions beyond this queue depth are rejected (load shedding, so a
  /// burst degrades to fast 503s instead of unbounded latency).
  int max_queue = 1024;
};

/// Per-request stage timing filled in by the engine as the request moves
/// accept thread -> bounded queue -> batch worker. The HTTP layer adds
/// parse/serialize on top (docs/OBSERVABILITY.md "Request lifecycle").
struct StageTiming {
  uint64_t request_id = 0;
  /// Submit() enqueue -> a worker picking the request out of the queue.
  double queue_wait_seconds = 0.0;
  /// Picked -> batch flush (waiting for the batch to fill or its
  /// deadline; 0 for subgraph requests, which never coalesce).
  double batch_assembly_seconds = 0.0;
  /// The detector Score() call that answered the request.
  double score_seconds = 0.0;
  /// Requests answered by the same Score() call (1 for subgraphs).
  int batch_size = 0;
  /// High-water mark of net tensor allocations on the scoring thread
  /// during the Score() call that answered this request (the request's
  /// peak live-tensor-bytes delta; shared across a batch).
  int64_t tensor_peak_bytes = 0;
};

/// Streaming-ingest knobs (docs/STREAMING.md). Streaming is off by
/// default; ScoringEngine::EnableStreaming turns it on before Start().
struct StreamingOptions {
  /// Watchlist size served by GET /debug/watchlist (?k= can ask smaller).
  int watchlist_k = 10;
  /// Auto-compaction threshold: when an ingest batch leaves at least this
  /// many applied-but-uncompacted events in the delta overlay, the engine
  /// compacts before answering. 0 disables auto-compaction (batches can
  /// still request one explicitly with {"compact":true}).
  int compact_every = 4096;
  /// Per-request event cap (hostile-input bound, docs/ROBUSTNESS.md).
  int max_events_per_batch = 4096;
};

/// What one accepted ingest batch did, echoed as the POST /ingest
/// response body.
struct IngestResult {
  uint64_t request_id = 0;
  int events_applied = 0;
  /// Incremental score recomputations across the batch — the O(deg)
  /// cost certificate (stream.touched_nodes.per_event histogram).
  int touched_nodes = 0;
  bool compacted = false;
  int num_nodes = 0;
  int64_t delta_ops = 0;       // Outstanding overlay events post-batch.
  int64_t overlay_edges = 0;
  int64_t compactions = 0;     // Lifetime compaction count.
  double apply_seconds = 0.0;  // Whole batch: validate+apply+snapshot.
  double compact_seconds = 0.0;
};

/// One watchlist row: a current top-k outlier by online score.
struct WatchlistEntry {
  int node = -1;
  double score = 0.0;
};

/// Scores for the nodes a request asked about, row-aligned with `nodes`.
/// Component scores are present when the detector separates them.
struct ScoreResult {
  std::vector<int> nodes;
  std::vector<double> score;
  std::vector<double> structural;
  std::vector<double> contextual;
  StageTiming timing;
};

/// In-process engine counters, also exported as serve.engine.* gauges on
/// every registry scrape path (/metrics JSON and Prometheus alike).
struct EngineStats {
  int64_t batches_flushed = 0;   // Detector Score() invocations.
  int64_t requests_served = 0;   // Requests answered (ok or error).
  int64_t shed = 0;              // Queue-full load-shedding rejections.
};

/// Owns a fitted detector and a resident graph behind a fixed worker pool
/// with a bounded request queue and dynamic micro-batching.
///
/// Two request shapes:
///  * node requests — score node ids of the resident graph. Consecutive
///    node requests coalesce into one detector Score() call per flush
///    (size- or deadline-triggered), which is where the throughput win
///    comes from: one full-graph scoring pass answers up to max_batch
///    requests.
///  * subgraph requests — score a request-supplied graph (the inductive
///    deployment shape). Executed singly; distinct graphs cannot share a
///    Score() call.
///
/// Scores are computed by the same Score() the offline path uses, so
/// served values are bit-identical to in-process scoring.
class ScoringEngine {
 public:
  /// Completion hook of the *Async submission shape. Invoked exactly once
  /// — inline on the submitting thread for fast-fail rejections
  /// (validation, full queue, stopped engine), otherwise on the batch
  /// worker that executed the request. The epoll transport rides this:
  /// its dispatch worker returns immediately and the HTTP Responder fires
  /// from inside the callback.
  using ScoreCallback = std::function<void(Result<ScoreResult>)>;

  /// Takes ownership of a fitted (or bundle-restored) detector and the
  /// resident graph it serves.
  ScoringEngine(std::unique_ptr<detectors::OutlierDetector> detector,
                AttributedGraph graph, EngineConfig config = {});
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  /// Spawns the worker pool. Fails if already started or shut down.
  Status Start();

  /// Turns on the streaming subsystem (src/stream/): a DeltaGraphStore
  /// seeded from the resident graph plus an OnlineScorer whose embedder
  /// is derived from the detector (VBM/VGOD use the fitted Eq. 6
  /// transform; anything else scores raw attributes). Must run before
  /// Start(). After this, Ingest() mutates the resident graph and /score
  /// requests see the latest published snapshot.
  Status EnableStreaming(StreamingOptions options = {});
  bool streaming_enabled() const { return store_ != nullptr; }
  const StreamingOptions& streaming_options() const {
    return stream_options_;
  }

  /// Applies one pre-parsed event batch: all-or-nothing validation, then
  /// per-event store+scorer updates, optional compaction, and a
  /// copy-on-write snapshot swap that in-flight scoring never observes
  /// half-done. Thread-safe (serialized on the stream mutex).
  Result<IngestResult> Ingest(const stream::EventBatch& batch,
                              uint64_t request_id = 0);

  /// Current top-k online outliers, descending by score. `k` <= 0 uses
  /// the configured watchlist_k. Fails when streaming is off.
  Result<std::vector<WatchlistEntry>> Watchlist(int k = 0);

  /// Hook fired from Ingest() when a batch changed the watchlist's
  /// membership or ordering (node ids, not scores — scores move every
  /// batch). Invoked on the ingesting thread with no engine lock held,
  /// so the callback may call back into the server (SSE publish) but
  /// must not re-enter the engine's streaming API. Set before Start().
  using WatchlistChangeCallback =
      std::function<void(const std::vector<WatchlistEntry>&)>;
  void SetWatchlistChangeCallback(WatchlistChangeCallback callback) {
    watchlist_callback_ = std::move(callback);
  }

  /// Baseline model fingerprint restored from the bundle (training-score
  /// sketch + attribute moments + degree histogram), or null when the
  /// bundle predates fingerprints. Set once by BuildEngine before
  /// Start(); the drift monitor seeds its baseline from this.
  void SetFingerprint(std::shared_ptr<const obs::ModelFingerprint> fp) {
    fingerprint_ = std::move(fp);
  }
  const std::shared_ptr<const obs::ModelFingerprint>& fingerprint() const {
    return fingerprint_;
  }

  /// Readiness (distinct from liveness): false while not yet started,
  /// draining, or a compaction snapshot swap is in flight, with a
  /// human-readable reason. GET /healthz/ready maps false to 503.
  bool Ready(std::string* reason) const;

  /// The graph /score currently scores: the boot graph until streaming
  /// ingest publishes a newer snapshot. Snapshots are immutable; holding
  /// the returned pointer pins that version, nothing more.
  std::shared_ptr<const AttributedGraph> CurrentGraph() const;

  /// Graceful shutdown: rejects new submissions, drains every queued
  /// request, joins the workers. Idempotent.
  void Shutdown();

  /// Enqueues a node-scoring request against the resident graph. The
  /// returned future resolves when its batch executes. Fails fast (error
  /// future) on invalid node ids, a full queue, or a stopped engine.
  /// `request_id` tags the request's StageTiming, access-log line, and
  /// trace flow events; 0 lets the engine assign one (NextRequestId).
  std::future<Result<ScoreResult>> SubmitNodes(std::vector<int> nodes,
                                               uint64_t request_id = 0);

  /// Enqueues a request to score `graph` (scores every node of it).
  std::future<Result<ScoreResult>> SubmitGraph(AttributedGraph graph,
                                               uint64_t request_id = 0);

  /// Callback-shaped submissions: same validation, batching, and error
  /// taxonomy as the future-returning forms, but completion is delivered
  /// by invoking `done` instead of resolving a future — no thread ever
  /// blocks on a result.
  void SubmitNodesAsync(std::vector<int> nodes, uint64_t request_id,
                        ScoreCallback done);
  void SubmitGraphAsync(AttributedGraph graph, uint64_t request_id,
                        ScoreCallback done);

  /// Blocking conveniences over the Submit calls.
  Result<ScoreResult> ScoreNodes(std::vector<int> nodes,
                                 uint64_t request_id = 0);
  Result<ScoreResult> ScoreGraph(AttributedGraph graph,
                                 uint64_t request_id = 0);

  const detectors::OutlierDetector& detector() const { return *detector_; }
  /// The boot-time resident graph. Stable for the engine's lifetime even
  /// under streaming (ingest publishes new snapshots via CurrentGraph();
  /// it never mutates or retires this one).
  const AttributedGraph& graph() const { return *boot_graph_; }
  const EngineConfig& config() const { return config_; }

  /// Detector Score() invocations so far (== flushed batches).
  int64_t score_calls() const {
    return score_calls_.load(std::memory_order_relaxed);
  }
  /// Requests answered so far (successfully or not).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// All engine counters in one read (mirrors the serve.engine.* gauges).
  EngineStats stats() const;

 private:
  struct Pending {
    std::vector<int> nodes;                             // Node request.
    std::shared_ptr<const AttributedGraph> subgraph;    // Subgraph request.
    std::promise<Result<ScoreResult>> promise;
    /// Non-null for *Async submissions; completion then goes through the
    /// callback and the promise is never touched.
    ScoreCallback callback;
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point dequeued;
  };

  std::future<Result<ScoreResult>> Submit(Pending pending);
  /// Enqueue path shared by the future and callback shapes. Returns Ok
  /// when the request was queued; otherwise the caller delivers the
  /// status itself (the rejection was already counted).
  Status Enqueue(Pending* pending);
  /// Fast-fail validation shared by both submission shapes; a failure is
  /// counted as a rejected request.
  Status ValidateNodes(const std::vector<int>& nodes) const;
  Status ValidateSubgraph(const AttributedGraph& graph) const;
  static StageTiming TimingFor(
      const Pending& pending,
      std::chrono::steady_clock::time_point score_start, double score_seconds,
      int batch_size, int64_t tensor_peak_bytes);
  void WorkerLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  void ExecuteSubgraph(Pending pending);
  void FinishRequest(Pending* pending, Result<ScoreResult> result);

  const std::unique_ptr<detectors::OutlierDetector> detector_;
  const std::shared_ptr<const AttributedGraph> boot_graph_;
  const EngineConfig config_;

  // --- Streaming state (null/idle when streaming is off) ---
  // Lock order: mu_ and stream_mu_ are never held together; stream_mu_
  // may take graph_mu_; graph_mu_ is a leaf.
  StreamingOptions stream_options_;
  std::mutex stream_mu_;  // Serializes store_/scorer_ access.
  std::unique_ptr<stream::DeltaGraphStore> store_;
  std::optional<stream::OnlineScorer> scorer_;
  /// Watchlist node ids as of the last ingest batch (stream_mu_), the
  /// change-detection baseline for watchlist_callback_.
  std::vector<int> last_watchlist_nodes_;
  WatchlistChangeCallback watchlist_callback_;  // Set before Start().
  std::shared_ptr<const obs::ModelFingerprint> fingerprint_;
  mutable std::mutex graph_mu_;  // Guards current_graph_ only.
  std::shared_ptr<const AttributedGraph> current_graph_;
  /// True while a compaction snapshot swap is in flight (readiness gate).
  std::atomic<bool> compacting_{false};
  /// Monotone node count of the latest published snapshot; SubmitNodes
  /// validates against this without touching the stream mutex. Safe
  /// because streaming only ever grows the node set.
  std::atomic<int> resident_nodes_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
  // Atomics, not mutex-guarded ints: bumped from every pool worker on the
  // request hot path, where taking mu_ would contend with the batch queue.
  std::atomic<int64_t> score_calls_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> shed_count_{0};
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_ENGINE_H_
