#include "serve/forensics.h"

#include <algorithm>

namespace vgod::serve {

SlowRequestTracker::SlowRequestTracker(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowRequestTracker::Record(const AccessRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slowest_.size() >= capacity_ &&
      record.total_us <= slowest_.back().total_us) {
    return;  // Faster than everything retained; nothing to do.
  }
  const auto at = std::upper_bound(
      slowest_.begin(), slowest_.end(), record,
      [](const AccessRecord& a, const AccessRecord& b) {
        return a.total_us > b.total_us;
      });
  slowest_.insert(at, record);
  if (slowest_.size() > capacity_) slowest_.pop_back();
}

std::vector<AccessRecord> SlowRequestTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

std::string SlowRequestTracker::ToJson() const {
  const std::vector<AccessRecord> records = Snapshot();
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"count\":" + std::to_string(records.size()) +
                    ",\"slowest\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(AccessRecordToJson(records[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace vgod::serve
