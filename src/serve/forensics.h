#ifndef VGOD_SERVE_FORENSICS_H_
#define VGOD_SERVE_FORENSICS_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "serve/access_log.h"

namespace vgod::serve {

/// Tail-request forensics: retains the K slowest requests (by total
/// latency) with their full stage breakdown, so GET /debug/slow can show
/// where a live server's tail went without a trace capture. Cheap enough
/// to always be on — one mutexed compare per request, and only requests
/// slower than the current K-th ever replace an entry.
class SlowRequestTracker {
 public:
  explicit SlowRequestTracker(size_t capacity = 16);

  void Record(const AccessRecord& record);

  /// Retained records, slowest first.
  std::vector<AccessRecord> Snapshot() const;

  /// {"capacity":K,"count":n,"slowest":[<AccessRecordToJson>...]} with
  /// entries slowest-first — the /debug/slow response body.
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<AccessRecord> slowest_;  // Sorted descending by total_us.
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_FORENSICS_H_
