#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "core/logging.h"
#include "obs/metrics.h"

namespace vgod::serve {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024 * 1024;
/// Parsed-but-unanswered requests buffered per connection before the
/// event loop pauses reading from it (pipelining backpressure): a client
/// blasting requests cannot grow server memory faster than responses
/// drain.
constexpr size_t kMaxPipelined = 32;

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string SerializeResponse(const HttpResponse& response, bool close) {
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     HttpStatusReason(response.status) + "\r\n";
  wire += "content-type: " + response.content_type + "\r\n";
  wire += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  wire += close ? "connection: close\r\n" : "connection: keep-alive\r\n";
  wire += "\r\n";
  wire += response.body;
  return wire;
}

/// Header block for an open-ended streaming response: no content-length,
/// explicit close semantics (the stream is the connection's last
/// exchange), and cache-busting per the SSE spec.
std::string SerializeStreamHeader(const HttpResponse& response) {
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     HttpStatusReason(response.status) + "\r\n";
  wire += "content-type: " + response.content_type + "\r\n";
  wire += "cache-control: no-cache\r\n";
  wire += "connection: close\r\n";
  wire += "\r\n";
  wire += response.body;
  return wire;
}

/// Bodyless error response for requests the transport rejects before the
/// handler can see them (and for admission-control 503s).
std::string EarlyErrorWire(int status) {
  return "HTTP/1.1 " + std::to_string(status) + " " +
         HttpStatusReason(status) +
         "\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
}

/// Whether this request's response must be the connection's last.
/// HTTP/1.1 defaults to keep-alive unless the client says close;
/// HTTP/1.0 defaults to close unless the client says keep-alive.
bool RequestWantsClose(const HttpRequest& request) {
  const auto it = request.headers.find("connection");
  const std::string value =
      it == request.headers.end() ? "" : Lower(Trim(it->second));
  if (request.version == "HTTP/1.0") return value != "keep-alive";
  return value == "close";
}

void SetOpenConnectionsGauge(size_t n) {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "serve.transport.open_connections");
  gauge->Set(static_cast<double>(n));
}

Result<std::string> DecodeFormValue(const std::string& raw) {
  const auto hex = [](char h) -> int {
    if (h >= '0' && h <= '9') return h - '0';
    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '+') {
      out.push_back(' ');
      continue;
    }
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= raw.size()) {
      return Status::InvalidArgument(
          "truncated percent-escape in query value '" + raw + "'");
    }
    const int hi = hex(raw[i + 1]);
    const int lo = hex(raw[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed percent-escape '" +
                                     raw.substr(i, 3) + "' in query value");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

}  // namespace

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Prometheus(std::string body) {
  HttpResponse response;
  response.status = 200;
  // The version tag tells Prometheus scrapers this is text exposition
  // format 0.0.4 rather than protobuf.
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::EventStream(std::string initial_payload) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/event-stream";
  response.body = std::move(initial_payload);
  response.stream = true;
  return response;
}

void SplitTarget(const std::string& target, std::string* path,
                 std::string* query) {
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    *path = target;
    query->clear();
    return;
  }
  *path = target.substr(0, q);
  *query = target.substr(q + 1);
}

Result<std::string> QueryParam(const std::string& query,
                               const std::string& key) {
  size_t begin = 0;
  while (begin <= query.size()) {
    size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(begin, end - begin);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return DecodeFormValue(pair.substr(eq + 1));
    }
    if (eq == std::string::npos && pair == key) return std::string();
    begin = end + 1;
  }
  return std::string();
}

const char* HttpErrorClass(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 413: return "payload_too_large";
    case 431: return "header_fields_too_large";
    case 500: return "internal";
    case 503: return "unavailable";
    default:  return "other";
  }
}

void CountHttpError(int status) {
  obs::MetricsRegistry::Global()
      .GetCounter("serve.errors." + std::string(HttpErrorClass(status)))
      ->Increment();
}

void CountStatusClass(int status) {
  const char* name = nullptr;
  if (status >= 200 && status < 300) {
    name = "serve.http.status.2xx";
  } else if (status >= 300 && status < 400) {
    name = "serve.http.status.3xx";
  } else if (status >= 400 && status < 500) {
    name = "serve.http.status.4xx";
  } else if (status >= 500 && status < 600) {
    name = "serve.http.status.5xx";
  } else {
    name = "serve.http.status.other";
  }
  obs::MetricsRegistry::Global().GetCounter(name)->Increment();
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Handler handler, TransportOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.dispatch_threads < 1) options_.dispatch_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("server already started");
    if (stopped_) return Status::FailedPrecondition("server was stopped");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind port " + std::to_string(port) + ": " +
                           error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + error);
  }
  if (::listen(fd, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + error);
  }
  const int epoll_fd = ::epoll_create1(0);
  if (epoll_fd < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("epoll_create1: " + error);
  }
  const int wake_fd = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    ::close(epoll_fd);
    return Status::IoError("eventfd: " + error);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0 ||
      (ev.data.fd = wake_fd,
       ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0)) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    ::close(epoll_fd);
    ::close(wake_fd);
    return Status::IoError("epoll_ctl: " + error);
  }

  listen_fd_ = fd;
  epoll_fd_ = epoll_fd;
  wake_fd_ = wake_fd;
  port_ = ntohs(addr.sin_port);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  dispatch_pool_.reserve(options_.dispatch_threads);
  for (int i = 0; i < options_.dispatch_threads; ++i) {
    dispatch_pool_.emplace_back([this] { DispatchLoop(); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    if (wake_fd_ >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(wake_fd_, &one, sizeof(one));
    }
  }
  dispatch_cv_.notify_all();
  if (event_thread_.joinable()) event_thread_.join();
  for (std::thread& worker : dispatch_pool_) {
    if (worker.joinable()) worker.join();
  }
  dispatch_pool_.clear();
  {
    // After retired_, late Responders (e.g. from an engine still
    // draining) drop their completions without touching wake_fd_ — so
    // the fds below cannot be written after they close and recycle.
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = true;
    completions_.clear();
    dispatch_queue_.clear();
    stream_chunks_.clear();
    live_streams_.clear();
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::EventLoop() {
  std::vector<epoll_event> events(256);
  auto next_idle_sweep = std::chrono::steady_clock::now();
  for (;;) {
    // Cap the wait so the idle sweep runs even on a silent server; with
    // no idle timeout the loop blocks until a socket or the eventfd fires.
    const int timeout_ms =
        options_.idle_timeout_ms > 0 ? std::min(options_.idle_timeout_ms, 500)
                                     : -1;
    const auto wait_start = std::chrono::steady_clock::now();
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    VGOD_HISTOGRAM_OBSERVE("serve.transport.epoll_wait.seconds",
                           SecondsSince(wait_start));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      VGOD_LOG(Warning) << "epoll_wait failed: " << std::strerror(errno)
                        << "; transport exiting";
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        HandleCompletions();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      Connection& conn = it->second;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        // Peer fully gone (reset / both halves closed): any buffered
        // response is undeliverable.
        CloseConnection(fd);
        continue;
      }
      if ((ev & EPOLLRDHUP) && conn.streaming) {
        // Subscriber sent FIN; a stream has nothing more to read from
        // the peer, so a half-close is an unsubscribe.
        CloseConnection(fd);
        continue;
      }
      if (ev & EPOLLIN) {
        if (!ReadReady(conn)) continue;
      }
      Settle(conn);
    }
    const auto now = std::chrono::steady_clock::now();
    if (options_.idle_timeout_ms > 0 && now >= next_idle_sweep) {
      CloseIdleConnections();
      next_idle_sweep = now + std::chrono::milliseconds(std::min(
                                  options_.idle_timeout_ms, 500));
    }
  }
  // Teardown on the owning thread: every connection fd is event-thread
  // state, so closing here cannot race a concurrent use.
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  conn_fd_by_id_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_streams_.clear();
  }
  SetOpenConnectionsGauge(0);
}

void HttpServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient failure; epoll re-arms.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Admission control: a fast bounded 503 instead of an unbounded
      // accept backlog (docs/SERVING.md "Admission control").
      VGOD_COUNTER_INC("serve.transport.rejected");
      CountHttpError(503);
      CountStatusClass(503);
      const std::string wire = EarlyErrorWire(503);
      [[maybe_unused]] const ssize_t sent =
          ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.interest = EPOLLIN;
    conn.last_active = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    VGOD_COUNTER_INC("serve.http.connections");
    VGOD_COUNTER_INC("serve.transport.accepted");
    conn_fd_by_id_[conn.id] = fd;
    conns_.emplace(fd, std::move(conn));
    SetOpenConnectionsGauge(conns_.size());
  }
}

bool HttpServer::ReadReady(Connection& conn) {
  char chunk[16 * 1024];
  while (!conn.reading_paused && !conn.peer_eof &&
         conn.parse != Connection::Parse::kDead) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<size_t>(n));
      conn.last_active = std::chrono::steady_clock::now();
      ParseInput(conn);
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn.fd);
    return false;
  }
  return true;
}

void HttpServer::ParseInput(Connection& conn) {
  for (;;) {
    if (conn.parse == Connection::Parse::kDead) return;
    if (conn.parse == Connection::Parse::kHeaders) {
      const size_t header_end = conn.in.find("\r\n\r\n");
      if (header_end == std::string::npos) {
        // 431 (RFC 6585), not 413: the oversized thing is the header
        // block, not a payload.
        if (conn.in.size() > kMaxHeaderBytes) EarlyError(conn, 431);
        return;
      }
      if (header_end > kMaxHeaderBytes) {
        EarlyError(conn, 431);
        return;
      }
      HttpRequest request;
      const std::string head = conn.in.substr(0, header_end);
      size_t line_end = head.find("\r\n");
      const std::string request_line =
          head.substr(0, std::min(line_end, head.size()));
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
      if (sp1 == 0 || sp2 == std::string::npos) {
        EarlyError(conn, 400);
        return;
      }
      request.method = request_line.substr(0, sp1);
      request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      request.version = Trim(request_line.substr(sp2 + 1));
      if (request.target.empty() ||
          (request.version != "HTTP/1.1" && request.version != "HTTP/1.0")) {
        EarlyError(conn, 400);
        return;
      }
      bool saw_content_length = false;
      while (line_end != std::string::npos && line_end < head.size()) {
        const size_t next = head.find("\r\n", line_end + 2);
        const std::string line =
            head.substr(line_end + 2, next == std::string::npos
                                          ? std::string::npos
                                          : next - line_end - 2);
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          const std::string name = Lower(Trim(line.substr(0, colon)));
          if (name == "content-length") {
            if (saw_content_length) {
              // Duplicate Content-Length is a request-smuggling vector
              // under pipelining: two parsers disagreeing on which value
              // wins disagree on where the next request starts. Reject
              // even identical repeats.
              EarlyError(conn, 400);
              return;
            }
            saw_content_length = true;
          }
          request.headers[name] = Trim(line.substr(colon + 1));
        }
        line_end = next;
      }

      // Body length per content-length. The value is attacker-controlled:
      // only a digits-only token that consumes the whole header value is
      // a length (RFC 9110 §8.6); anything else ("123abc", "-1", "1e9",
      // empty) is malformed and gets 400. 413 is reserved for well-formed
      // lengths beyond the body cap.
      size_t content_length = 0;
      if (saw_content_length) {
        const std::string& token = request.headers.at("content-length");
        unsigned long long parsed = 0;
        const auto [end, ec] = std::from_chars(
            token.data(), token.data() + token.size(), parsed);
        if (ec == std::errc::result_out_of_range &&
            end == token.data() + token.size()) {
          // Digits-only but beyond unsigned long long: a length, just
          // absurd.
          EarlyError(conn, 413);
          return;
        }
        if (ec != std::errc() || end != token.data() + token.size()) {
          EarlyError(conn, 400);
          return;
        }
        if (parsed > kMaxBodyBytes) {
          EarlyError(conn, 413);
          return;
        }
        content_length = static_cast<size_t>(parsed);
      }
      conn.in.erase(0, header_end + 4);
      conn.partial = std::move(request);
      conn.body_needed = content_length;
      conn.parse = Connection::Parse::kBody;
    }
    if (conn.parse == Connection::Parse::kBody) {
      if (conn.in.size() < conn.body_needed) return;  // Need more bytes.
      conn.partial.body = conn.in.substr(0, conn.body_needed);
      conn.in.erase(0, conn.body_needed);
      const bool close = RequestWantsClose(conn.partial);
      conn.ready.emplace_back(std::move(conn.partial), close);
      conn.partial = HttpRequest{};
      conn.body_needed = 0;
      conn.parse = Connection::Parse::kHeaders;
      if (close) {
        // Nothing after an explicit close request gets dispatched.
        conn.parse = Connection::Parse::kDead;
        return;
      }
      if (conn.ready.size() >= kMaxPipelined) {
        conn.reading_paused = true;
        return;
      }
    }
  }
}

void HttpServer::EarlyError(Connection& conn, int status) {
  conn.parse = Connection::Parse::kDead;
  conn.partial = HttpRequest{};
  conn.in.clear();
  if (!conn.busy && conn.ready.empty()) {
    EmitEarlyError(conn, status);
  } else {
    // Responses already owed to this connection go out first; the error
    // rides behind them (deferred_error) so replies stay in order.
    conn.deferred_error = status;
  }
}

void HttpServer::EmitEarlyError(Connection& conn, int status) {
  CountHttpError(status);
  CountStatusClass(status);
  conn.out += EarlyErrorWire(status);
  conn.close_after_flush = true;
}

void HttpServer::PumpDispatch(Connection& conn) {
  if (conn.busy || conn.close_after_flush || conn.ready.empty()) return;
  std::pair<HttpRequest, bool> next = std::move(conn.ready.front());
  conn.ready.pop_front();
  conn.busy = true;
  conn.inflight_close = next.second;
  VGOD_COUNTER_INC("serve.http.requests");
  DispatchItem item;
  item.conn_id = conn.id;
  item.request = std::move(next.first);
  item.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    dispatch_queue_.push_back(std::move(item));
  }
  dispatch_cv_.notify_one();
}

void HttpServer::HandleCompletions() {
  std::vector<Completion> done;
  std::vector<StreamChunk> chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(completions_);
    chunks.swap(stream_chunks_);
  }
  for (Completion& completion : done) {
    const auto id_it = conn_fd_by_id_.find(completion.conn_id);
    if (id_it == conn_fd_by_id_.end()) continue;  // Connection died.
    const auto it = conns_.find(id_it->second);
    if (it == conns_.end()) continue;
    Connection& conn = it->second;
    conn.busy = false;
    conn.last_active = std::chrono::steady_clock::now();
    if (completion.response.stream) {
      // Install an open-ended stream: the response header goes out
      // without a content-length, the parser retires (this is the
      // connection's last exchange — pipelined stragglers are dropped),
      // and the id joins the PushStream liveness list before the
      // subscription hook runs.
      conn.out += SerializeStreamHeader(completion.response);
      conn.streaming = true;
      conn.parse = Connection::Parse::kDead;
      conn.ready.clear();
      conn.deferred_error = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        live_streams_.push_back(conn.id);
      }
      VGOD_COUNTER_INC("serve.transport.streams_opened");
      if (completion.response.on_stream_open) {
        completion.response.on_stream_open(conn.id);
      }
      Settle(conn);
      continue;
    }
    const bool close = conn.inflight_close;
    conn.out += SerializeResponse(completion.response, close);
    if (close) conn.close_after_flush = true;
    Settle(conn);
  }
  for (StreamChunk& chunk : chunks) {
    const auto id_it = conn_fd_by_id_.find(chunk.conn_id);
    if (id_it == conn_fd_by_id_.end()) continue;  // Already pruned.
    const auto it = conns_.find(id_it->second);
    if (it == conns_.end()) continue;
    Connection& conn = it->second;
    if (!conn.streaming) continue;  // Stream header not installed yet.
    conn.out += std::move(chunk.data);
    conn.last_active = std::chrono::steady_clock::now();
    Settle(conn);
  }
}

bool HttpServer::FlushOut(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      conn.last_active = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // Kernel buffer full; EPOLLOUT resumes the flush.
    }
    CloseConnection(conn.fd);  // Peer reset mid-write.
    return false;
  }
  return true;
}

void HttpServer::Settle(Connection& conn) {
  if (conn.reading_paused && conn.parse != Connection::Parse::kDead &&
      conn.ready.size() < kMaxPipelined) {
    conn.reading_paused = false;
    ParseInput(conn);  // Drain bytes buffered while paused.
  }
  if (conn.deferred_error != 0 && !conn.busy && conn.ready.empty()) {
    EmitEarlyError(conn, conn.deferred_error);
    conn.deferred_error = 0;
  }
  PumpDispatch(conn);
  if (!FlushOut(conn)) return;  // Closed on write failure.
  if (!conn.busy && conn.out.empty() &&
      (conn.close_after_flush ||
       (conn.peer_eof && conn.ready.empty() && conn.deferred_error == 0))) {
    CloseConnection(conn.fd);
    return;
  }
  UpdateInterest(conn);
}

void HttpServer::UpdateInterest(Connection& conn) {
  uint32_t want = 0;
  if (!conn.reading_paused && !conn.peer_eof && !conn.close_after_flush &&
      conn.parse != Connection::Parse::kDead) {
    want |= EPOLLIN;
  }
  // A streaming connection never reads again; EPOLLRDHUP is how the
  // event thread learns the subscriber hung up.
  if (conn.streaming) want |= EPOLLRDHUP;
  if (!conn.out.empty()) want |= EPOLLOUT;
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = want;
}

void HttpServer::CloseConnection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.streaming) {
    std::lock_guard<std::mutex> lock(mu_);
    live_streams_.erase(
        std::remove(live_streams_.begin(), live_streams_.end(),
                    it->second.id),
        live_streams_.end());
  }
  conn_fd_by_id_.erase(it->second.id);
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  SetOpenConnectionsGauge(conns_.size());
}

void HttpServer::CloseIdleConnections() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    // Streaming connections are intentionally long-lived: their liveness
    // check is the periodic SSE keepalive comment, not the idle sweep.
    if (!conn.streaming && !conn.busy && conn.out.empty() &&
        conn.ready.empty() && now - conn.last_active > limit) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    VGOD_COUNTER_INC("serve.transport.idle_closed");
    CloseConnection(fd);
  }
}

void HttpServer::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    dispatch_cv_.wait(lock, [this] {
      return stop_requested_ || !dispatch_queue_.empty();
    });
    if (stop_requested_) return;  // Connections are gone; drop the queue.
    DispatchItem item = std::move(dispatch_queue_.front());
    dispatch_queue_.pop_front();
    lock.unlock();
    VGOD_HISTOGRAM_OBSERVE("serve.transport.dispatch.seconds",
                           SecondsSince(item.enqueued));
    const uint64_t conn_id = item.conn_id;
    handler_(item.request, [this, conn_id](HttpResponse response) {
      CompleteRequest(conn_id, std::move(response));
    });
    lock.lock();
  }
}

bool HttpServer::PushStream(uint64_t conn_id, std::string data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (retired_ || stop_requested_) return false;
  if (std::find(live_streams_.begin(), live_streams_.end(), conn_id) ==
      live_streams_.end()) {
    return false;
  }
  StreamChunk chunk;
  chunk.conn_id = conn_id;
  chunk.data = std::move(data);
  stream_chunks_.push_back(std::move(chunk));
  // Same wake-under-lock pattern as CompleteRequest: Stop() sets
  // retired_ under mu_ before closing wake_fd_.
  uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  return true;
}

size_t HttpServer::StreamCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_streams_.size();
}

void HttpServer::CompleteRequest(uint64_t conn_id, HttpResponse response) {
  CountStatusClass(response.status);
  std::lock_guard<std::mutex> lock(mu_);
  if (retired_ || stop_requested_) return;  // Transport gone; drop.
  Completion completion;
  completion.conn_id = conn_id;
  completion.response = std::move(response);
  completions_.push_back(std::move(completion));
  // Write under the lock: Stop() closes wake_fd_ only after taking mu_
  // and setting retired_, so this can never hit a recycled fd.
  uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace vgod::serve
