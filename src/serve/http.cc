#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "core/logging.h"
#include "obs/metrics.h"

namespace vgod::serve {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024 * 1024;
constexpr int kRecvTimeoutMs = 250;  // Poll interval for the stop flag.

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // Signal mid-write; resume.
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Sends a bodyless error response and counts it; used for requests the
/// transport rejects before the handler can see them.
void SendEarlyError(int fd, int status) {
  CountHttpError(status);
  CountStatusClass(status);
  SendAll(fd, "HTTP/1.1 " + std::to_string(status) + " " +
              HttpStatusReason(status) +
              "\r\ncontent-length: 0\r\nconnection: close\r\n\r\n");
}

}  // namespace

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Prometheus(std::string body) {
  HttpResponse response;
  response.status = 200;
  // The version tag tells Prometheus scrapers this is text exposition
  // format 0.0.4 rather than protobuf.
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(body);
  return response;
}

void SplitTarget(const std::string& target, std::string* path,
                 std::string* query) {
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    *path = target;
    query->clear();
    return;
  }
  *path = target.substr(0, q);
  *query = target.substr(q + 1);
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t begin = 0;
  while (begin <= query.size()) {
    size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(begin, end - begin);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string::npos && pair == key) return "";
    begin = end + 1;
  }
  return "";
}

const char* HttpErrorClass(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 413: return "payload_too_large";
    case 500: return "internal";
    case 503: return "unavailable";
    default:  return "other";
  }
}

void CountHttpError(int status) {
  obs::MetricsRegistry::Global()
      .GetCounter("serve.errors." + std::string(HttpErrorClass(status)))
      ->Increment();
}

void CountStatusClass(int status) {
  const char* name = nullptr;
  if (status >= 200 && status < 300) {
    name = "serve.http.status.2xx";
  } else if (status >= 300 && status < 400) {
    name = "serve.http.status.3xx";
  } else if (status >= 400 && status < 500) {
    name = "serve.http.status.4xx";
  } else if (status >= 500 && status < 600) {
    name = "serve.http.status.5xx";
  } else {
    name = "serve.http.status.other";
  }
  obs::MetricsRegistry::Global().GetCounter(name)->Increment();
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind port " + std::to_string(port) + ": " +
                           error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + error);
  }
  if (::listen(fd, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + error);
  }

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake blocked reads; the connection threads notice stopping_ and exit.
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) connection.join();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // Stop() already retired the socket.
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      continue;  // Transient accept failure (e.g. ECONNABORTED).
    }
    // Bound reads so connection threads poll the stop flag instead of
    // blocking in recv forever on an idle keep-alive connection.
    timeval timeout{};
    timeout.tv_usec = kRecvTimeoutMs * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    VGOD_COUNTER_INC("serve.http.connections");
    open_fds_.insert(fd);
    // One thread per connection; threads are reclaimed on Stop(). Fine for
    // the double-digit connection counts this server targets — the worker
    // pool, not the transport, is the concurrency limiter.
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool close_connection = false;

  while (!close_connection) {
    // Read until the header terminator.
    size_t header_end = std::string::npos;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        SendEarlyError(fd, 413);
        close_connection = true;
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!stopping_) continue;  // Idle keep-alive poll.
      }
      close_connection = true;  // Peer closed, error, or server stopping.
      break;
    }
    if (close_connection) break;

    // Parse the request line + headers.
    HttpRequest request;
    {
      const std::string head = buffer.substr(0, header_end);
      size_t line_end = head.find("\r\n");
      const std::string request_line =
          head.substr(0, std::min(line_end, head.size()));
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) {
        SendEarlyError(fd, 400);
        break;
      }
      request.method = request_line.substr(0, sp1);
      request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      while (line_end != std::string::npos && line_end < head.size()) {
        const size_t next = head.find("\r\n", line_end + 2);
        const std::string line =
            head.substr(line_end + 2, next == std::string::npos
                                          ? std::string::npos
                                          : next - line_end - 2);
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          request.headers[Lower(Trim(line.substr(0, colon)))] =
              Trim(line.substr(colon + 1));
        }
        line_end = next;
      }
    }
    buffer.erase(0, header_end + 4);

    // Read the body per content-length. The value is attacker-controlled:
    // only a digits-only token that consumes the whole header value is a
    // length (RFC 9110 §8.6); anything else ("123abc", "-1", "1e9", empty)
    // is malformed and gets 400. 413 is reserved for well-formed lengths
    // beyond the body cap.
    size_t content_length = 0;
    if (auto it = request.headers.find("content-length");
        it != request.headers.end()) {
      const std::string& token = it->second;
      unsigned long long parsed = 0;
      const auto [end, ec] = std::from_chars(
          token.data(), token.data() + token.size(), parsed);
      if (ec == std::errc::result_out_of_range &&
          end == token.data() + token.size()) {
        // Digits-only but beyond unsigned long long: a length, just absurd.
        SendEarlyError(fd, 413);
        break;
      }
      if (ec != std::errc() || end != token.data() + token.size()) {
        SendEarlyError(fd, 400);
        break;
      }
      if (parsed > kMaxBodyBytes) {
        SendEarlyError(fd, 413);
        break;
      }
      content_length = static_cast<size_t>(parsed);
    }
    bool read_failed = false;
    while (buffer.size() < content_length) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!stopping_) continue;
      }
      read_failed = true;
      break;
    }
    if (read_failed) break;
    request.body = buffer.substr(0, content_length);
    buffer.erase(0, content_length);

    close_connection =
        Lower(Trim(request.headers.count("connection")
                       ? request.headers.at("connection")
                       : "")) == "close";

    VGOD_COUNTER_INC("serve.http.requests");
    const HttpResponse response = handler_(request);
    CountStatusClass(response.status);

    std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                       HttpStatusReason(response.status) + "\r\n";
    wire += "content-type: " + response.content_type + "\r\n";
    wire += "content-length: " + std::to_string(response.body.size()) +
            "\r\n";
    wire += close_connection ? "connection: close\r\n"
                             : "connection: keep-alive\r\n";
    wire += "\r\n";
    wire += response.body;
    if (!SendAll(fd, wire)) break;
  }

  // Unregister before close so Stop() never shutdown()s a recycled fd.
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace vgod::serve
