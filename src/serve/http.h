#ifndef VGOD_SERVE_HTTP_H_
#define VGOD_SERVE_HTTP_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"

namespace vgod::serve {

/// One parsed HTTP request. Header names are lower-cased.
struct HttpRequest {
  std::string method;
  std::string target;
  /// Protocol version from the request line — "HTTP/1.1" or "HTTP/1.0"
  /// (anything else is rejected 400 by the transport). HTTP/1.0
  /// connections default to close-after-response unless the client sent
  /// `connection: keep-alive`.
  std::string version = "HTTP/1.1";
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Streaming response (SSE): headers go out without a content-length,
  /// `body` is the initial payload, and the connection stays open for
  /// HttpServer::PushStream() until either side closes. The connection's
  /// request parser retires — a streaming response is the last exchange
  /// on its connection.
  bool stream = false;
  /// Invoked on the event thread once the stream is installed, with the
  /// connection id PushStream() takes — the subscription hook.
  std::function<void(uint64_t)> on_stream_open;

  /// The one place response content types are chosen: every JSON
  /// endpoint builds through Json(), the Prometheus exposition through
  /// Prometheus() (text/plain; version=0.0.4 per the exposition spec),
  /// and SSE subscriptions through EventStream() (text/event-stream,
  /// stream=true).
  static HttpResponse Json(int status, std::string body);
  static HttpResponse Prometheus(std::string body);
  static HttpResponse EventStream(std::string initial_payload);
};

/// Splits a request target at the first '?' into path and query
/// ("/metrics?format=prometheus" -> {"/metrics", "format=prometheus"}).
void SplitTarget(const std::string& target, std::string* path,
                 std::string* query);

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("a=1&b=2"), percent-decoded ('+' is a space, %XX a byte), or "" when
/// absent. A malformed escape in the requested value ("%", "%g1", "%a")
/// is InvalidArgument — endpoints map it to 400 so reserved characters
/// cannot be smuggled past parameter validation undecoded.
Result<std::string> QueryParam(const std::string& query,
                               const std::string& key);

/// Maps an HTTP status code to its reason phrase ("OK", "Not Found", ...).
const char* HttpStatusReason(int status);

/// Failure-class name for an error status (400 -> "bad_request", 413 ->
/// "payload_too_large", 431 -> "header_fields_too_large", ... —
/// docs/ROBUSTNESS.md), shared by the serve.errors.* counters and the
/// access log's error_class field.
const char* HttpErrorClass(int status);

/// Bumps the per-failure-class serve.errors.* counter for an error
/// response `status` (400 -> serve.errors.bad_request, 413 ->
/// serve.errors.payload_too_large, ... — docs/ROBUSTNESS.md). Both the
/// transport (parse-level rejects) and the request handler route every
/// error response through this, so /metrics accounts for each class of
/// hostile input the server absorbed.
void CountHttpError(int status);

/// Bumps the per-outcome serve.http.status.{2xx,3xx,4xx,5xx,other}
/// counter; the transport calls this for every response it produces,
/// including pre-handler rejects.
void CountStatusClass(int status);

/// Reactor transport knobs (docs/SERVING.md "Transport").
struct TransportOptions {
  /// Accepted connections beyond this are answered 503 and closed
  /// (admission control; serve.transport.rejected / serve.errors.*).
  int max_connections = 1024;
  /// Keep-alive connections idle longer than this are closed by the
  /// event loop (serve.transport.idle_closed). <= 0 disables the sweep.
  int idle_timeout_ms = 30000;
  /// Worker threads running the request handler. These are the only
  /// threads the transport adds beyond the single event thread — cost
  /// per connection is an epoll registration, never a thread.
  int dispatch_threads = 4;
};

/// Nonblocking epoll reactor HTTP/1.1 server. A single event thread owns
/// the listen socket and every connection fd: it accepts, reads into
/// per-connection buffers, runs an incremental request parser (draining
/// every pipelined request already buffered), and writes responses —
/// all nonblocking. Complete requests are handed to a small fixed
/// dispatch pool which invokes the handler; the handler answers through
/// a Responder, either inline or later from another thread (the
/// ScoringEngine's async completion path), and the event thread writes
/// the response out. At most one request per connection is in the
/// handler at a time, which is what keeps pipelined responses in order.
class HttpServer {
 public:
  /// Completes one request. Copyable, thread-safe, callable exactly once
  /// from any thread; a no-op after the server stopped or the connection
  /// died (completions are keyed by a monotonic connection id, so a
  /// recycled fd can never receive a stale response).
  using Responder = std::function<void(HttpResponse)>;
  using Handler = std::function<void(const HttpRequest&, Responder)>;

  explicit HttpServer(Handler handler, TransportOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port, see port()) and
  /// starts the event thread + dispatch pool.
  Status Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, closes every connection, joins the event thread
  /// and the dispatch pool. Responders outstanding at this point (e.g.
  /// held by an engine still draining) become safe no-ops. Idempotent.
  void Stop();

  /// Appends `data` to a live streaming connection (installed by a
  /// stream=true response). Safe from any thread; the event thread does
  /// the write. Returns false when the connection is gone or the server
  /// stopped — the caller's cue to drop the subscriber. Streaming
  /// connections are exempt from the idle sweep; pushing a periodic SSE
  /// comment doubles as dead-peer detection.
  bool PushStream(uint64_t conn_id, std::string data);

  /// Live streaming connections right now.
  size_t StreamCount() const;

 private:
  /// Per-connection reactor state, owned exclusively by the event thread.
  struct Connection {
    int fd = -1;
    /// Monotonic id; cross-thread completions address the connection by
    /// this, not the fd, so kernel fd recycling cannot misroute a
    /// response.
    uint64_t id = 0;
    std::string in;   // Received bytes not yet parsed.
    std::string out;  // Serialized responses awaiting send.
    /// Parsed requests awaiting dispatch (HTTP/1.1 pipelining); `second`
    /// is that request's close-after-response flag.
    std::deque<std::pair<HttpRequest, bool>> ready;
    bool busy = false;           // One request is in the handler.
    bool inflight_close = false; // Close flag of the in-handler request.
    bool close_after_flush = false;
    bool peer_eof = false;
    bool reading_paused = false; // Backpressure: ready queue is full.
    bool streaming = false;      // SSE: open-ended response in progress.
    uint32_t interest = 0;       // Current epoll event mask.
    /// A parse-level error (400/413/431) waiting for earlier pipelined
    /// responses to flush first, so rejects never jump the queue.
    int deferred_error = 0;
    // Incremental parser state. kDead: a parse error or an explicit
    // `connection: close` request retired the parser; remaining input is
    // ignored.
    enum class Parse { kHeaders, kBody, kDead } parse = Parse::kHeaders;
    HttpRequest partial;
    size_t body_needed = 0;
    std::chrono::steady_clock::time_point last_active;
  };

  /// A complete request en route to a dispatch worker.
  struct DispatchItem {
    uint64_t conn_id = 0;
    HttpRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// A handler response en route back to the event thread.
  struct Completion {
    uint64_t conn_id = 0;
    HttpResponse response;
  };

  /// A PushStream payload en route to the event thread.
  struct StreamChunk {
    uint64_t conn_id = 0;
    std::string data;
  };

  void EventLoop();
  void DispatchLoop();
  void AcceptReady();
  bool ReadReady(Connection& conn);   // false: connection was closed.
  void ParseInput(Connection& conn);
  void EarlyError(Connection& conn, int status);
  void EmitEarlyError(Connection& conn, int status);
  void PumpDispatch(Connection& conn);
  void HandleCompletions();
  bool FlushOut(Connection& conn);    // false: connection was closed.
  void Settle(Connection& conn);      // May close `conn`; don't touch after.
  void UpdateInterest(Connection& conn);
  void CloseConnection(int fd);
  void CloseIdleConnections();
  void CompleteRequest(uint64_t conn_id, HttpResponse response);

  Handler handler_;
  TransportOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + Stop() wake the loop.
  int port_ = 0;
  std::thread event_thread_;
  std::vector<std::thread> dispatch_pool_;

  // --- Event-thread-only state (no locking by design) ---
  uint64_t next_conn_id_ = 1;
  std::unordered_map<int, Connection> conns_;        // Keyed by fd.
  std::unordered_map<uint64_t, int> conn_fd_by_id_;

  // --- Cross-thread state, guarded by mu_ ---
  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;
  std::deque<DispatchItem> dispatch_queue_;
  std::vector<Completion> completions_;
  std::vector<StreamChunk> stream_chunks_;
  /// Connection ids with a live stream — the PushStream liveness check.
  /// Maintained by the event thread (install / close), read anywhere.
  std::vector<uint64_t> live_streams_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool stopped_ = false;   // Stop() ran (idempotence guard).
  bool retired_ = false;   // wake_fd_ about to close; Responders no-op.
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_HTTP_H_
