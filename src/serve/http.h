#ifndef VGOD_SERVE_HTTP_H_
#define VGOD_SERVE_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"

namespace vgod::serve {

/// One parsed HTTP/1.1 request. Header names are lower-cased.
struct HttpRequest {
  std::string method;
  std::string target;
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  /// The one place response content types are chosen: every JSON
  /// endpoint builds through Json(), the Prometheus exposition through
  /// Prometheus() (text/plain; version=0.0.4 per the exposition spec).
  static HttpResponse Json(int status, std::string body);
  static HttpResponse Prometheus(std::string body);
};

/// Splits a request target at the first '?' into path and query
/// ("/metrics?format=prometheus" -> {"/metrics", "format=prometheus"}).
void SplitTarget(const std::string& target, std::string* path,
                 std::string* query);

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("a=1&b=2"), or "" when absent. No percent-decoding — the serving
/// API's parameter values never need it.
std::string QueryParam(const std::string& query, const std::string& key);

/// Maps an HTTP status code to its reason phrase ("OK", "Not Found", ...).
const char* HttpStatusReason(int status);

/// Failure-class name for an error status (400 -> "bad_request", 413 ->
/// "payload_too_large", ... — docs/ROBUSTNESS.md), shared by the
/// serve.errors.* counters and the access log's error_class field.
const char* HttpErrorClass(int status);

/// Bumps the per-failure-class serve.errors.* counter for an error
/// response `status` (400 -> serve.errors.bad_request, 413 ->
/// serve.errors.payload_too_large, ... — docs/ROBUSTNESS.md). Both the
/// transport (parse-level rejects) and the request handler route every
/// error response through this, so /metrics accounts for each class of
/// hostile input the server absorbed.
void CountHttpError(int status);

/// Bumps the per-outcome serve.http.status.{2xx,3xx,4xx,5xx,other}
/// counter; the transport calls this for every response it writes,
/// including pre-handler rejects.
void CountStatusClass(int status);

/// Minimal HTTP/1.1 server: an accept-loop thread plus one thread per
/// connection, with keep-alive. This is deliberately small — request
/// parsing sufficient for the JSON scoring API, not a general web server.
/// The heavy lifting (scoring) happens on the ScoringEngine's worker pool;
/// connection threads only parse, enqueue, and wait.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port, see port()) and
  /// starts accepting.
  Status Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, shuts open connections, joins every thread.
  /// Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  // Atomic: Stop() retires the fd while AcceptLoop() is passing it
  // to accept() on its own thread.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> connections_;
  std::set<int> open_fds_;
  bool stopping_ = false;
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_HTTP_H_
