#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <utility>

namespace vgod::serve {
namespace {

// Mirrors the server-side body cap (http.cc kMaxBodyBytes): a response
// larger than this is a protocol violation, not something to buffer.
constexpr size_t kMaxResponseBytes = 64ull * 1024 * 1024;

std::string LowerCopy(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(int port, bool keep_alive)
    : port_(port), keep_alive_(keep_alive) {}

HttpClient::~HttpClient() { Close(); }

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  return RoundTrip("GET", target, "");
}

Result<HttpResponse> HttpClient::Post(const std::string& target,
                                      const std::string& body) {
  return RoundTrip("POST", target, body);
}

Status HttpClient::Connect() {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " +
                               std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect(127.0.0.1:" + std::to_string(port_) +
                               "): " + detail);
  }
  fd_ = fd;
  ++connections_opened_;
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& method,
                                           const std::string& target,
                                           const std::string& body) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "host: 127.0.0.1\r\n";
  request += "content-length: " + std::to_string(body.size()) + "\r\n";
  if (!keep_alive_) request += "connection: close\r\n";
  request += "\r\n";
  request += body;

  const bool reused = keep_alive_ && fd_ >= 0;
  bool stale = false;
  Result<HttpResponse> response = Attempt(request, reused, &stale);
  if (!response.ok() && stale) {
    // The cached keep-alive connection died between requests; one fresh
    // reconnect is transparent, further failures are real.
    response = Attempt(request, /*reused=*/false, &stale);
  }
  return response;
}

Result<HttpResponse> HttpClient::Attempt(const std::string& request,
                                         bool reused, bool* stale) {
  *stale = false;
  if (fd_ < 0) {
    Status connected = Connect();
    if (!connected.ok()) return connected;
  }
  if (!SendAll(fd_, request)) {
    // Capture errno before Close(): ::close would otherwise overwrite it
    // and the Status would describe the close, not the failed send.
    const std::string detail = std::strerror(errno);
    Close();
    *stale = reused;
    return Status::IoError("send(): " + detail);
  }

  std::string buffer;
  char chunk[8192];
  size_t header_end = std::string::npos;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      // A clean close before any bytes on a reused connection is the
      // classic keep-alive race, not a server failure.
      *stale = reused && buffer.empty() && n == 0;
      return Status::IoError("connection closed mid-response");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxResponseBytes) {
      Close();
      return Status::InvalidArgument("response headers exceed 64MB");
    }
  }

  // Status line: "HTTP/1.1 <code> <reason>".
  const size_t space = buffer.find(' ');
  if (space == std::string::npos || space + 4 > header_end) {
    Close();
    return Status::InvalidArgument("malformed HTTP status line");
  }
  int status_code = 0;
  const auto [end, ec] = std::from_chars(buffer.data() + space + 1,
                                         buffer.data() + space + 4,
                                         status_code);
  if (ec != std::errc() || status_code < 100 || status_code > 599) {
    Close();
    return Status::InvalidArgument("malformed HTTP status code");
  }

  HttpResponse response;
  response.status = status_code;
  size_t content_length = 0;
  bool server_closes = !keep_alive_;
  const std::string headers =
      LowerCopy(buffer.substr(0, header_end + 2));
  size_t cursor = headers.find("\r\n") + 2;  // Skip the status line.
  while (cursor < headers.size()) {
    const size_t eol = headers.find("\r\n", cursor);
    if (eol == std::string::npos || eol == cursor) break;
    const std::string line = headers.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (name == "content-length") {
      unsigned long long parsed = 0;
      const auto [vend, vec] = std::from_chars(
          value.data(), value.data() + value.size(), parsed);
      if (vec != std::errc() || vend != value.data() + value.size() ||
          parsed > kMaxResponseBytes) {
        Close();
        return Status::InvalidArgument("malformed content-length");
      }
      content_length = static_cast<size_t>(parsed);
    } else if (name == "content-type") {
      response.content_type = value;
    } else if (name == "connection" && value == "close") {
      server_closes = true;
    }
  }

  std::string body = buffer.substr(header_end + 4);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      return Status::IoError("connection closed mid-body");
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  // Sequential request/response — anything past content-length would be
  // protocol noise; drop it with the connection rather than desync.
  if (body.size() > content_length) server_closes = true;
  response.body = body.substr(0, content_length);

  if (server_closes || !keep_alive_) Close();
  return response;
}

}  // namespace vgod::serve
