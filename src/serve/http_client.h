#ifndef VGOD_SERVE_HTTP_CLIENT_H_
#define VGOD_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "serve/http.h"

namespace vgod::serve {

/// Minimal loopback HTTP/1.1 client, the counterpart of HttpServer for
/// benchmarks and tests that want to exercise the real TCP + parse path
/// instead of calling the engine in-process.
///
/// Two connection modes:
///  - keep_alive=false: every request opens a fresh TCP connection and
///    sends `connection: close` — the worst case the server must absorb.
///  - keep_alive=true: one persistent connection reused across requests
///    (HTTP/1.1 default semantics). A request that finds the cached
///    connection dead (server restarted, idle timeout) reconnects once
///    and retries transparently.
///
/// Not thread-safe: give each client thread its own HttpClient, which is
/// also what makes per-connection reuse meaningful in a load generator.
class HttpClient {
 public:
  HttpClient(int port, bool keep_alive);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body);

  /// TCP connections opened so far — keep-alive clients should show ~1,
  /// fresh-connection clients one per request.
  int64_t connections_opened() const { return connections_opened_; }

 private:
  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body);
  /// One attempt on the current (or a new) connection. Sets *stale when
  /// the failure is a dead cached connection worth one retry.
  Result<HttpResponse> Attempt(const std::string& request, bool reused,
                               bool* stale);
  Status Connect();
  void Close();

  int port_;
  bool keep_alive_;
  int fd_ = -1;
  int64_t connections_opened_ = 0;
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_HTTP_CLIENT_H_
