#include "serve/notify.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "core/logging.h"
#include "obs/metrics.h"
#include "serve/http_client.h"

namespace vgod::serve {

void SseHub::Subscribe(uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_.push_back(conn_id);
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.sse.subscribers")
      ->Set(static_cast<double>(SubscriberCount()));
  VGOD_COUNTER_INC("serve.sse.subscribed");
}

size_t SseHub::Publish(const std::string& type,
                       const std::string& json_payload) {
  std::vector<uint64_t> targets;
  int64_t event_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    targets = subscribers_;
    event_id = next_event_id_++;
  }
  std::string frame = "id: " + std::to_string(event_id) + "\n";
  frame += "event: " + type + "\n";
  frame += "data: " + json_payload + "\n\n";
  std::vector<uint64_t> dead;
  size_t delivered = 0;
  for (uint64_t conn_id : targets) {
    if (server_ != nullptr && server_->PushStream(conn_id, frame)) {
      ++delivered;
    } else {
      dead.push_back(conn_id);
    }
  }
  if (!dead.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t conn_id : dead) {
      subscribers_.erase(
          std::remove(subscribers_.begin(), subscribers_.end(), conn_id),
          subscribers_.end());
    }
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.sse.subscribers")
      ->Set(static_cast<double>(SubscriberCount()));
  obs::MetricsRegistry::Global()
      .GetCounter("serve.sse.events")
      ->Add(static_cast<int64_t>(delivered));
  return delivered;
}

void SseHub::Keepalive() {
  std::vector<uint64_t> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    targets = subscribers_;
  }
  if (targets.empty()) return;
  std::vector<uint64_t> dead;
  for (uint64_t conn_id : targets) {
    if (server_ == nullptr || !server_->PushStream(conn_id, ": keepalive\n\n")) {
      dead.push_back(conn_id);
    }
  }
  if (!dead.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t conn_id : dead) {
      subscribers_.erase(
          std::remove(subscribers_.begin(), subscribers_.end(), conn_id),
          subscribers_.end());
    }
    obs::MetricsRegistry::Global()
        .GetGauge("serve.sse.subscribers")
        ->Set(static_cast<double>(SubscriberCount()));
  }
}

size_t SseHub::SubscriberCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscribers_.size();
}

Status ParseWebhookUrl(const std::string& url, int* port, std::string* path) {
  const std::string scheme = "http://";
  if (url.compare(0, scheme.size(), scheme) != 0) {
    return Status::InvalidArgument(
        "webhook url must start with http:// (got '" + url + "')");
  }
  const size_t host_begin = scheme.size();
  const size_t path_begin = url.find('/', host_begin);
  const std::string host_port =
      url.substr(host_begin, path_begin == std::string::npos
                                 ? std::string::npos
                                 : path_begin - host_begin);
  const size_t colon = host_port.find(':');
  const std::string host =
      colon == std::string::npos ? host_port : host_port.substr(0, colon);
  if (host != "127.0.0.1" && host != "localhost") {
    return Status::InvalidArgument(
        "webhook url host must be loopback (127.0.0.1 or localhost), got '" +
        host + "'");
  }
  int parsed_port = 80;
  if (colon != std::string::npos) {
    const std::string port_text = host_port.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("webhook url port '" + port_text +
                                     "' is not a number");
    }
    parsed_port = std::atoi(port_text.c_str());
    if (parsed_port < 1 || parsed_port > 65535) {
      return Status::InvalidArgument("webhook url port out of range: " +
                                     port_text);
    }
  }
  *port = parsed_port;
  *path = path_begin == std::string::npos ? "/" : url.substr(path_begin);
  return Status::Ok();
}

WebhookNotifier::WebhookNotifier(const WebhookOptions& options)
    : options_(options) {
  options_.max_retries = std::max(0, options_.max_retries);
  options_.backoff_seconds = std::max(0.0, options_.backoff_seconds);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
}

WebhookNotifier::~WebhookNotifier() { Stop(); }

Status WebhookNotifier::Start() {
  if (options_.url.empty()) return Status::Ok();
  VGOD_RETURN_IF_ERROR(ParseWebhookUrl(options_.url, &port_, &path_));
  enabled_ = true;
  started_ = true;
  thread_ = std::thread([this] { DeliveryLoop(); });
  return Status::Ok();
}

void WebhookNotifier::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) {
      stop_ = true;
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void WebhookNotifier::Notify(std::string json_payload) {
  if (!enabled_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    if (queue_.size() >= options_.max_queue) {
      queue_.pop_front();
      VGOD_COUNTER_INC("alerts.webhook.dropped");
    }
    queue_.push_back(std::move(json_payload));
  }
  cv_.notify_one();
}

void WebhookNotifier::DeliveryLoop() {
  // The HttpClient is not thread-safe; this thread is its sole owner.
  // Keep-alive mode reuses one connection across notifications and
  // transparently reconnects when the receiver restarted.
  HttpClient client(port_, /*keep_alive=*/true);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::string payload = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();

    bool delivered = false;
    double delay = options_.backoff_seconds;
    for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) {
        // Exponential backoff between attempts, abandoned early when the
        // notifier is asked to stop.
        std::unique_lock<std::mutex> wait_lock(mu_);
        const bool stopping = cv_.wait_for(
            wait_lock, std::chrono::duration<double>(delay),
            [this] { return stop_; });
        if (stopping) return;
        delay *= 2.0;
      }
      VGOD_COUNTER_INC("alerts.webhook.attempts");
      Result<HttpResponse> response = client.Post(path_, payload);
      if (response.ok() && response.value().status >= 200 &&
          response.value().status < 300) {
        delivered = true;
        break;
      }
      if (response.ok() && response.value().status >= 400 &&
          response.value().status < 500) {
        // The receiver rejected the payload; retrying cannot help.
        break;
      }
    }
    if (delivered) {
      VGOD_COUNTER_INC("alerts.webhook.delivered");
    } else {
      VGOD_COUNTER_INC("alerts.webhook.failed");
      VGOD_LOG(Warning) << "webhook delivery to " << options_.url
                        << " failed after "
                        << (options_.max_retries + 1) << " attempt(s)";
    }
    lock.lock();
  }
}

}  // namespace vgod::serve
