#ifndef VGOD_SERVE_NOTIFY_H_
#define VGOD_SERVE_NOTIFY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "serve/http.h"

namespace vgod::serve {

/// Fan-out hub for the `GET /events` SSE stream. Subscribers are
/// HttpServer streaming connections; Publish() formats one SSE event
/// (`id:` + `event:` + `data:` lines) and pushes it to every subscriber,
/// pruning the ones whose connection is gone. Thread-safe; publishers
/// are the server's monitor loop (alert transitions, keepalives) and the
/// ingest path (watchlist changes).
class SseHub {
 public:
  explicit SseHub(HttpServer* server) : server_(server) {}

  /// Called from the stream's on_stream_open hook (event thread).
  void Subscribe(uint64_t conn_id);

  /// Broadcasts `event: <type>` with `data: <json_payload>` (payload
  /// must be a single line — compact JSON). Returns the number of
  /// subscribers that received it.
  size_t Publish(const std::string& type, const std::string& json_payload);

  /// SSE comment ping; doubles as dead-subscriber detection since a
  /// failed push prunes the connection.
  void Keepalive();

  size_t SubscriberCount() const;

 private:
  HttpServer* server_;
  mutable std::mutex mu_;
  std::vector<uint64_t> subscribers_;
  int64_t next_event_id_ = 1;
};

struct WebhookOptions {
  /// Loopback target, e.g. "http://127.0.0.1:9009/hook". Empty disables
  /// the notifier.
  std::string url;
  int max_retries = 3;          ///< Attempts per notification beyond the first.
  double backoff_seconds = 0.2; ///< Initial retry delay; doubles per retry.
  size_t max_queue = 256;       ///< Oldest notifications drop beyond this.
};

/// Parses a webhook URL into port + target path. Only loopback hosts
/// (127.0.0.1, localhost) are accepted — the notifier rides the
/// loopback-only HttpClient, and an arbitrary-host webhook would make
/// the scoring server an SSRF proxy.
Status ParseWebhookUrl(const std::string& url, int* port, std::string* path);

/// Outbound alert-notification channel: a single background thread owns
/// a bounded queue and an HttpClient (which is not thread-safe), POSTs
/// each JSON payload to the configured URL, and retries with exponential
/// backoff on connection errors or 5xx responses. Queue overflow drops
/// the oldest payload (alerts.webhook.dropped) rather than blocking the
/// monitor loop.
class WebhookNotifier {
 public:
  explicit WebhookNotifier(const WebhookOptions& options);
  ~WebhookNotifier();

  WebhookNotifier(const WebhookNotifier&) = delete;
  WebhookNotifier& operator=(const WebhookNotifier&) = delete;

  /// Validates + parses the URL and starts the delivery thread. No-op
  /// success when the URL is empty (notifier disabled).
  Status Start();
  /// Drains nothing: pending notifications are dropped at stop (the
  /// process is going away). Idempotent.
  void Stop();

  bool enabled() const { return enabled_; }

  /// Enqueues one JSON payload for delivery.
  void Notify(std::string json_payload);

 private:
  void DeliveryLoop();

  WebhookOptions options_;
  int port_ = 0;
  std::string path_;
  bool enabled_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace vgod::serve

#endif  // VGOD_SERVE_NOTIFY_H_
