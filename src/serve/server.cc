#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "core/faultinject.h"
#include "core/logging.h"
#include "datasets/io.h"
#include "detectors/bundle.h"
#include "detectors/registry.h"
#include "obs/fingerprint.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/access_log.h"
#include "stream/events.h"

namespace vgod::serve {
namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t SecondsToMicros(double seconds) {
  return static_cast<int64_t>(seconds * 1e6);
}

/// Copies the engine's stage breakdown into the request's access record
/// (seconds -> integer microseconds, the log's unit).
void RecordEngineTiming(const StageTiming& timing, AccessRecord* record) {
  record->batch_size = timing.batch_size;
  record->tensor_peak_bytes = timing.tensor_peak_bytes;
  record->queue_wait_us = SecondsToMicros(timing.queue_wait_seconds);
  record->batch_assembly_us = SecondsToMicros(timing.batch_assembly_seconds);
  record->score_us = SecondsToMicros(timing.score_seconds);
}

void AppendScoreArray(std::string* out, const char* key,
                      const std::vector<double>& values) {
  out->append(",\"");
  out->append(key);
  out->append("\":[");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    obs::AppendJsonNumber(out, values[i]);
  }
  out->push_back(']');
}

std::string ScoreResultJson(const ScoreResult& result) {
  std::string out =
      "{\"request_id\":" + std::to_string(result.timing.request_id) +
      ",\"nodes\":[";
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(result.nodes[i]);
  }
  out.push_back(']');
  AppendScoreArray(&out, "scores", result.score);
  if (!result.structural.empty()) {
    AppendScoreArray(&out, "structural", result.structural);
  }
  if (!result.contextual.empty()) {
    AppendScoreArray(&out, "contextual", result.contextual);
  }
  out.push_back('}');
  return out;
}

std::string IngestResultJson(const IngestResult& result) {
  std::string out =
      "{\"request_id\":" + std::to_string(result.request_id) +
      ",\"events_applied\":" + std::to_string(result.events_applied) +
      ",\"touched_nodes\":" + std::to_string(result.touched_nodes) +
      ",\"compacted\":" + (result.compacted ? "true" : "false") +
      ",\"num_nodes\":" + std::to_string(result.num_nodes) +
      ",\"delta_ops\":" + std::to_string(result.delta_ops) +
      ",\"overlay_edges\":" + std::to_string(result.overlay_edges) +
      ",\"compactions\":" + std::to_string(result.compactions) +
      ",\"apply_us\":" +
      std::to_string(SecondsToMicros(result.apply_seconds)) +
      ",\"compact_us\":" +
      std::to_string(SecondsToMicros(result.compact_seconds)) + "}";
  return out;
}

std::string WatchlistJson(const std::vector<WatchlistEntry>& entries) {
  std::string out = "{\"watchlist\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"node\":" + std::to_string(entries[i].node) + ",\"score\":";
    obs::AppendJsonNumber(&out, entries[i].score);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  CountHttpError(status);
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":";
  obs::AppendJsonString(&response.body, message);
  response.body.push_back('}');
  return response;
}

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      return 400;
    case StatusCode::kOutOfRange:         // Bad node id or full queue.
    case StatusCode::kFailedPrecondition: // Engine draining.
      return status.message().find("queue") != std::string::npos ||
                     status.message().find("accepting") != std::string::npos
                 ? 503
                 : 400;
    default:
      return 500;
  }
}

/// Error response for a failed engine call; flags queue-full rejections
/// as load shedding in the access record.
HttpResponse ScoreError(const Status& status, AccessRecord* record) {
  const int http = StatusToHttp(status);
  record->shed =
      http == 503 && status.message().find("queue") != std::string::npos;
  return ErrorResponse(http, status.message());
}

/// Serializes a successful score result, timing the serialize stage.
HttpResponse SerializeResult(const ScoreResult& result,
                             AccessRecord* record) {
  const auto serialize_start = std::chrono::steady_clock::now();
  HttpResponse response = HttpResponse::Json(200, ScoreResultJson(result));
  record->serialize_us = MicrosSince(serialize_start);
  VGOD_HISTOGRAM_OBSERVE("serve.stage.serialize.seconds",
                         record->serialize_us * 1e-6);
  return response;
}

/// Parses the inline-subgraph request body:
///   {"num_nodes":N, "edges":[[u,v],...], "attributes":[[...],...],
///    "undirected":true}
Result<AttributedGraph> ParseInlineGraph(const obs::JsonValue& spec) {
  if (!spec.is_object()) {
    return Status::InvalidArgument("'graph' must be an object");
  }
  const obs::JsonValue& num_nodes = spec.at("num_nodes");
  if (!num_nodes.is_number() || num_nodes.number() < 1) {
    return Status::InvalidArgument("graph needs a positive 'num_nodes'");
  }
  const int n = static_cast<int>(num_nodes.number());

  std::vector<std::pair<int, int>> edges;
  const obs::JsonValue& edge_spec = spec.at("edges");
  if (edge_spec.is_array()) {
    edges.reserve(edge_spec.array().size());
    for (const obs::JsonValue& edge : edge_spec.array()) {
      if (!edge.is_array() || edge.array().size() != 2 ||
          !edge.array()[0].is_number() || !edge.array()[1].is_number()) {
        return Status::InvalidArgument("each edge must be [u, v]");
      }
      edges.emplace_back(static_cast<int>(edge.array()[0].number()),
                         static_cast<int>(edge.array()[1].number()));
    }
  }

  const obs::JsonValue& attr_spec = spec.at("attributes");
  if (!attr_spec.is_array() ||
      attr_spec.array().size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument(
        "graph needs 'attributes' with one row per node");
  }
  const size_t dim = attr_spec.array().empty()
                         ? 0
                         : attr_spec.array()[0].array().size();
  if (dim == 0) {
    return Status::InvalidArgument("attribute rows must be non-empty");
  }
  Tensor attributes(n, static_cast<int>(dim));
  for (int i = 0; i < n; ++i) {
    const obs::JsonValue& row = attr_spec.array()[i];
    if (!row.is_array() || row.array().size() != dim) {
      return Status::InvalidArgument("attribute row " + std::to_string(i) +
                                     " has the wrong width");
    }
    for (size_t j = 0; j < dim; ++j) {
      if (!row.array()[j].is_number()) {
        return Status::InvalidArgument("attributes must be numbers");
      }
      attributes.SetAt(i, static_cast<int>(j),
                       static_cast<float>(row.array()[j].number()));
    }
  }

  const obs::JsonValue& undirected = spec.at("undirected");
  const bool make_undirected =
      undirected.is_bool() ? undirected.boolean() : true;
  return AttributedGraph::FromEdgeList(n, edges, std::move(attributes),
                                       make_undirected);
}

/// Monotonic seconds since the first call — the injected "now" shared by
/// the drift window and the alert state machines.
double MonotonicSeconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Normalized log2 degree histogram of the served graph snapshot — the
/// structural-drift input the monitor loop refreshes each tick.
std::vector<double> SnapshotDegreeHistogram(const AttributedGraph& graph) {
  std::vector<int64_t> degrees(static_cast<size_t>(graph.num_nodes()));
  for (int node = 0; node < graph.num_nodes(); ++node) {
    degrees[static_cast<size_t>(node)] = graph.Degree(node);
  }
  return obs::DegreeHistogram(degrees);
}

/// Cumulative per-type ingest event counts, read from the stream.events.*
/// counters the ingest path already maintains. Order matches
/// DriftMonitor::RecordEventCounts documentation.
std::vector<int64_t> CumulativeEventCounts() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  std::vector<int64_t> counts;
  for (const char* name :
       {"stream.events.add_edge", "stream.events.remove_edge",
        "stream.events.add_node", "stream.events.update_attributes"}) {
    Result<double> value = registry.ReadValue(name);
    counts.push_back(value.ok() ? static_cast<int64_t>(value.value()) : 0);
  }
  return counts;
}

}  // namespace

Result<std::unique_ptr<ScoringEngine>> BuildEngine(
    const std::string& bundle_path, const std::string& graph_path,
    const EngineConfig& config) {
  Result<detectors::ModelBundle> bundle =
      detectors::LoadBundle(bundle_path);
  if (!bundle.ok()) return bundle.status();
  Result<std::unique_ptr<detectors::OutlierDetector>> detector =
      detectors::MakeDetectorFromBundle(bundle.value());
  if (!detector.ok()) return detector.status();

  Result<AttributedGraph> graph = datasets::LoadGraph(graph_path);
  if (!graph.ok()) return graph.status();
  if (!graph.value().has_attributes()) {
    return Status::FailedPrecondition("resident graph has no attributes");
  }
  // A well-formed bundle paired with the wrong graph would pass restore
  // and then abort in a kernel shape CHECK on the first Score; refuse the
  // pairing up front instead.
  const int expected = detector.value()->expected_attribute_dim();
  if (expected > 0 && expected != graph.value().attribute_dim()) {
    return Status::FailedPrecondition(
        "bundle expects attribute dim " + std::to_string(expected) +
        " but resident graph " + graph_path + " has " +
        std::to_string(graph.value().attribute_dim()));
  }

  auto engine = std::make_unique<ScoringEngine>(
      std::move(detector).value(), std::move(graph).value(), config);
  // Bundles exported since fingerprints carry the training baseline in
  // their config JSON; older bundles simply lack the key and serve with
  // drift reporting baseline_missing.
  if (bundle.value().config.Has("fingerprint")) {
    Result<obs::ModelFingerprint> fingerprint =
        obs::ModelFingerprint::FromJson(bundle.value().config.at("fingerprint"));
    if (!fingerprint.ok()) {
      return Status::InvalidArgument("bundle fingerprint is malformed: " +
                                     fingerprint.status().message());
    }
    engine->SetFingerprint(std::make_shared<const obs::ModelFingerprint>(
        std::move(fingerprint).value()));
  }
  return engine;
}

ScoringServer::ScoringServer(std::unique_ptr<ScoringEngine> engine, int port,
                             int slow_ring, TransportOptions transport)
    : engine_(std::move(engine)),
      requested_port_(port),
      transport_(transport),
      slow_(slow_ring < 1 ? 1 : static_cast<size_t>(slow_ring)) {}

ScoringServer::~ScoringServer() { Stop(); }

void ScoringServer::ConfigureMonitor(MonitorOptions options) {
  monitor_options_ = std::move(options);
}

Status ScoringServer::Start() {
  drift_ = std::make_unique<obs::DriftMonitor>(monitor_options_.drift);
  if (engine_->fingerprint() != nullptr) {
    drift_->SetBaseline(*engine_->fingerprint());
  }
  alerts_ = std::make_unique<obs::AlertEngine>(monitor_options_.alert_rules);
  webhook_ = std::make_unique<WebhookNotifier>(
      WebhookOptions{monitor_options_.webhook_url});
  VGOD_RETURN_IF_ERROR(webhook_->Start());

  // The watchlist hook fires on ingest threads with no engine lock held;
  // it must be installed before the engine starts accepting work.
  engine_->SetWatchlistChangeCallback(
      [this](const std::vector<WatchlistEntry>& entries) {
        if (sse_ != nullptr) sse_->Publish("watchlist", WatchlistJson(entries));
      });
  VGOD_RETURN_IF_ERROR(engine_->Start());
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request, HttpServer::Responder respond) {
        Handle(request, std::move(respond));
      },
      transport_);
  sse_ = std::make_unique<SseHub>(http_.get());
  VGOD_RETURN_IF_ERROR(http_->Start(requested_port_));
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    monitor_stop_ = false;
  }
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
  return Status::Ok();
}

void ScoringServer::Stop() {
  // Monitor first: its tick publishes to SSE and samples the engine's
  // graph, both about to go away.
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (webhook_ != nullptr) webhook_->Stop();
  // Transport next so no new requests arrive while the engine drains.
  // HttpServer::Stop makes the Responders of still-inflight requests
  // safe no-ops, so the engine draining after it cannot touch a dead
  // connection.
  if (http_ != nullptr) http_->Stop();
  engine_->Shutdown();
}

void ScoringServer::MonitorLoop() {
  const double interval =
      monitor_options_.interval_seconds > 0.01
          ? monitor_options_.interval_seconds
          : 0.01;
  std::unique_lock<std::mutex> lock(monitor_mu_);
  while (!monitor_stop_) {
    lock.unlock();
    MonitorTick(MonotonicSeconds());
    lock.lock();
    monitor_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                         [this] { return monitor_stop_; });
  }
}

void ScoringServer::MonitorTick(double now_seconds) {
  VGOD_TRACE_SPAN("serve/monitor");
  // Structural inputs first: the event counts recorded before a rotation
  // belong to the window that rotation closes.
  if (engine_->streaming_enabled()) {
    drift_->RecordEventCounts(CumulativeEventCounts());
  }
  drift_->SetLiveDegreeHistogram(
      SnapshotDegreeHistogram(*engine_->CurrentGraph()));
  drift_->MaybeRotate(now_seconds);
  drift_->EvaluateAndPublish();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  std::vector<obs::AlertTransition> transitions = alerts_->Evaluate(
      [&registry](const std::string& metric) {
        Result<double> value = registry.ReadValue(metric);
        return value.ok() ? value.value()
                          : std::numeric_limits<double>::quiet_NaN();
      },
      now_seconds);
  alerts_->PublishMetrics();
  for (const obs::AlertTransition& transition : transitions) {
    const std::string payload = transition.ToJson().Dump();
    VGOD_LOG(Info) << "alert " << transition.type << ": " << transition.rule
                   << " (" << transition.metric << "="
                   << transition.value << ")";
    webhook_->Notify(payload);
    sse_->Publish("alert", payload);
  }
  sse_->Keepalive();
}

void ScoringServer::Handle(const HttpRequest& request,
                           HttpServer::Responder respond) {
  VGOD_TRACE_SPAN("serve/http");
  const auto start = std::chrono::steady_clock::now();

  std::string path;
  std::string query;
  SplitTarget(request.target, &path, &query);

  auto record = std::make_shared<AccessRecord>();
  record->request_id = NextRequestId();
  record->path = path;

  // Finalization (status class, total latency, access log, slow ring) is
  // bound into the completion so it runs on whichever thread answers —
  // inline for the debug/health endpoints, an engine batch worker for
  // /score.
  Done done = [this, start, record,
               respond = std::move(respond)](HttpResponse response) {
    record->status = response.status;
    if (response.status < 200 || response.status >= 300) {
      record->error_class = HttpErrorClass(response.status);
    }
    record->total_us = MicrosSince(start);
    if (AccessLog* log = AccessLog::FromEnv()) log->Record(*record);
    slow_.Record(*record);
    respond(std::move(response));
  };
  Dispatch(request, path, query, record, std::move(done));
}

void ScoringServer::Dispatch(const HttpRequest& request,
                             const std::string& path,
                             const std::string& query,
                             const std::shared_ptr<AccessRecord>& record,
                             Done done) {
  if (path == "/healthz/live") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    // Liveness: the process is up and serving HTTP. Never 503s — a
    // draining or compacting server is alive, just not ready.
    done(HttpResponse::Json(200, "{\"status\":\"live\"}"));
    return;
  }
  if (path == "/healthz/ready" || path == "/healthz") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    std::string reason;
    if (!engine_->Ready(&reason)) {
      std::string body = "{\"status\":\"unready\",\"reason\":";
      obs::AppendJsonString(&body, reason);
      body.push_back('}');
      CountHttpError(503);
      done(HttpResponse::Json(503, std::move(body)));
      return;
    }
    if (path == "/healthz/ready") {
      done(HttpResponse::Json(200, "{\"status\":\"ready\"}"));
      return;
    }
    std::string body = "{\"status\":\"ok\",\"detector\":";
    obs::AppendJsonString(&body, engine_->detector().name());
    body += ",\"nodes\":" +
            std::to_string(engine_->CurrentGraph()->num_nodes()) +
            ",\"attribute_dim\":" +
            std::to_string(engine_->CurrentGraph()->attribute_dim()) +
            ",\"threads\":" +
            std::to_string(engine_->config().num_threads) +
            ",\"streaming\":" +
            (engine_->streaming_enabled() ? "true" : "false") + "}";
    done(HttpResponse::Json(200, std::move(body)));
    return;
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    Result<std::string> format = QueryParam(query, "format");
    if (!format.ok()) {
      done(ErrorResponse(400, format.status().message()));
      return;
    }
    if (format.value() == "prometheus") {
      done(HttpResponse::Prometheus(
          obs::MetricsRegistry::Global().ToPrometheus()));
      return;
    }
    if (!format.value().empty() && format.value() != "json") {
      done(ErrorResponse(400, "unknown metrics format '" + format.value() +
                                  "' (want json or prometheus)"));
      return;
    }
    done(HttpResponse::Json(200, obs::MetricsRegistry::Global().ToJson()));
    return;
  }
  if (path == "/ingest") {
    if (request.method != "POST") {
      done(ErrorResponse(405, "use POST " + path));
      return;
    }
    const auto parse_start = std::chrono::steady_clock::now();
    Result<obs::JsonValue> body = obs::ParseJson(request.body);
    if (!body.ok()) {
      record->parse_us = MicrosSince(parse_start);
      done(ErrorResponse(400, "invalid JSON: " + body.status().message()));
      return;
    }
    Result<stream::EventBatch> batch = stream::ParseEventBatch(
        body.value(),
        static_cast<size_t>(
            engine_->streaming_options().max_events_per_batch));
    record->parse_us = MicrosSince(parse_start);
    if (!batch.ok()) {
      done(ErrorResponse(400, batch.status().message()));
      return;
    }
    record->num_nodes = static_cast<int>(batch.value().events.size());
    VGOD_HISTOGRAM_OBSERVE("serve.stage.parse.seconds",
                           record->parse_us * 1e-6);
    Result<IngestResult> result =
        engine_->Ingest(batch.value(), record->request_id);
    if (!result.ok()) {
      done(ErrorResponse(StatusToHttp(result.status()),
                         result.status().message()));
      return;
    }
    done(HttpResponse::Json(200, IngestResultJson(result.value())));
    return;
  }
  if (path == "/debug/watchlist") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    int k = 0;
    Result<std::string> k_param = QueryParam(query, "k");
    if (!k_param.ok()) {
      done(ErrorResponse(400, k_param.status().message()));
      return;
    }
    if (!k_param.value().empty()) {
      char* end = nullptr;
      const long parsed = std::strtol(k_param.value().c_str(), &end, 10);
      if (end == k_param.value().c_str() || *end != '\0' || parsed < 1 ||
          parsed > 100000) {
        done(ErrorResponse(
            400, "'k' must be an integer in [1, 100000], got '" +
                     k_param.value() + "'"));
        return;
      }
      k = static_cast<int>(parsed);
    }
    Result<std::vector<WatchlistEntry>> entries = engine_->Watchlist(k);
    if (!entries.ok()) {
      done(ErrorResponse(StatusToHttp(entries.status()),
                         entries.status().message()));
      return;
    }
    done(HttpResponse::Json(200, WatchlistJson(entries.value())));
    return;
  }
  if (path == "/debug/slow") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    done(HttpResponse::Json(200, slow_.ToJson()));
    return;
  }
  if (path == "/debug/drift") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    done(HttpResponse::Json(200, drift_->ReportJson().Dump()));
    return;
  }
  if (path == "/debug/alerts") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    done(HttpResponse::Json(200, alerts_->StateJson().Dump()));
    return;
  }
  if (path == "/events") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    // SSE subscription: the hello event carries the model identity so a
    // client can verify it attached to the right server; alert and
    // watchlist events follow as they happen.
    std::string hello = "retry: 5000\nevent: hello\ndata: {\"detector\":";
    obs::AppendJsonString(&hello, engine_->detector().name());
    hello += ",\"streaming\":";
    hello += engine_->streaming_enabled() ? "true" : "false";
    hello += "}\n\n";
    HttpResponse response = HttpResponse::EventStream(std::move(hello));
    response.on_stream_open = [this](uint64_t conn_id) {
      sse_->Subscribe(conn_id);
    };
    done(std::move(response));
    return;
  }
  if (path == "/debug/profile") {
    if (request.method != "GET") {
      done(ErrorResponse(405, "use GET " + path));
      return;
    }
    double seconds = 1.0;
    Result<std::string> seconds_param = QueryParam(query, "seconds");
    if (!seconds_param.ok()) {
      done(ErrorResponse(400, seconds_param.status().message()));
      return;
    }
    if (!seconds_param.value().empty()) {
      char* end = nullptr;
      seconds = std::strtod(seconds_param.value().c_str(), &end);
      if (end == seconds_param.value().c_str() || *end != '\0' ||
          seconds <= 0.0 || seconds > 60.0) {
        done(ErrorResponse(
            400, "'seconds' must be a number in (0, 60], got '" +
                     seconds_param.value() + "'"));
        return;
      }
    }
    Result<std::string> format = QueryParam(query, "format");
    if (!format.ok()) {
      done(ErrorResponse(400, format.status().message()));
      return;
    }
    if (!format.value().empty() && format.value() != "json" &&
        format.value() != "folded") {
      done(ErrorResponse(400, "unknown profile format '" + format.value() +
                                  "' (want json or folded)"));
      return;
    }
    // Windowed capture: clear the aggregate tree, enable collection for
    // the requested wall-clock window (sleeping on this transport
    // dispatch worker; scoring proceeds on the engine threads), then
    // restore the previous enablement. Concurrent /debug/profile windows
    // overlap benignly — they just observe each other's capture.
    const bool was_enabled = obs::ProfileEnabled();
    obs::ClearProfile();
    obs::SetProfileEnabled(true);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    obs::SetProfileEnabled(was_enabled);
    const obs::ProfileNode tree = obs::SnapshotProfile();
    if (format.value() == "folded") {
      HttpResponse response;
      response.status = 200;
      response.content_type = "text/plain; charset=utf-8";
      response.body = obs::ProfileToFolded(tree);
      done(std::move(response));
      return;
    }
    std::string body = "{\"seconds\":";
    obs::AppendJsonNumber(&body, seconds);
    body.append(",\"profile\":");
    body.append(obs::ProfileToJson(tree));
    body.push_back('}');
    done(HttpResponse::Json(200, std::move(body)));
    return;
  }
  if (path == "/score") {
    if (request.method != "POST") {
      done(ErrorResponse(405, "use POST " + path));
      return;
    }
    const auto parse_start = std::chrono::steady_clock::now();
    Result<obs::JsonValue> body = obs::ParseJson(request.body);
    if (!body.ok()) {
      record->parse_us = MicrosSince(parse_start);
      done(ErrorResponse(400,
                         "invalid JSON: " + body.status().message()));
      return;
    }
    // Shared completion for both /score shapes: runs on the engine
    // worker that answered (or inline on fast-fail rejection).
    auto finish = [this, record, done](Result<ScoreResult> result) {
      if (!result.ok()) {
        done(ScoreError(result.status(), record.get()));
        return;
      }
      // Every served score feeds the drift window (resident-graph and
      // inline-subgraph requests alike — both come from the same fitted
      // model the baseline fingerprints).
      for (double score : result.value().score) {
        drift_->RecordScore(score);
      }
      RecordEngineTiming(result.value().timing, record.get());
      done(SerializeResult(result.value(), record.get()));
    };
    if (body.value().Has("nodes")) {
      const obs::JsonValue& nodes_spec = body.value().at("nodes");
      if (!nodes_spec.is_array()) {
        done(ErrorResponse(400, "'nodes' must be an array"));
        return;
      }
      std::vector<int> nodes;
      nodes.reserve(nodes_spec.array().size());
      for (const obs::JsonValue& node : nodes_spec.array()) {
        if (!node.is_number()) {
          done(ErrorResponse(400, "'nodes' entries must be integers"));
          return;
        }
        nodes.push_back(static_cast<int>(node.number()));
      }
      record->num_nodes = static_cast<int>(nodes.size());
      record->parse_us = MicrosSince(parse_start);
      VGOD_HISTOGRAM_OBSERVE("serve.stage.parse.seconds",
                             record->parse_us * 1e-6);
      engine_->SubmitNodesAsync(std::move(nodes), record->request_id,
                                std::move(finish));
      return;
    }
    if (body.value().Has("graph")) {
      Result<AttributedGraph> graph =
          ParseInlineGraph(body.value().at("graph"));
      if (!graph.ok()) {
        done(ErrorResponse(400, graph.status().message()));
        return;
      }
      record->num_nodes = graph.value().num_nodes();
      record->parse_us = MicrosSince(parse_start);
      VGOD_HISTOGRAM_OBSERVE("serve.stage.parse.seconds",
                             record->parse_us * 1e-6);
      engine_->SubmitGraphAsync(std::move(graph).value(),
                                record->request_id, std::move(finish));
      return;
    }
    done(ErrorResponse(400, "body needs 'nodes' or 'graph'"));
    return;
  }
  done(ErrorResponse(404, "no such endpoint: " + path));
}

int RunServer(const ServerOptions& options, const std::atomic<bool>* stop) {
  obs::InitTraceFromEnv();
  obs::InitProfileFromEnv();
  if (faults::Enabled()) {
    std::string armed;
    for (const std::string& site : faults::ArmedSites()) {
      if (!armed.empty()) armed += ", ";
      armed += site;
    }
    VGOD_LOG(Warning) << "VGOD_FAULTS armed (" << armed
                      << ") — this process injects failures on purpose";
  }
  Result<std::unique_ptr<ScoringEngine>> engine =
      BuildEngine(options.bundle_path, options.graph_path, options.engine);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (options.streaming) {
    Status enabled = engine.value()->EnableStreaming(options.stream);
    if (!enabled.ok()) {
      std::fprintf(stderr, "error: %s\n", enabled.ToString().c_str());
      return 1;
    }
  }
  MonitorOptions monitor = options.monitor;
  if (!options.alert_rules_path.empty()) {
    std::ifstream rules_file(options.alert_rules_path);
    if (!rules_file) {
      std::fprintf(stderr, "error: cannot read alert rules file %s\n",
                   options.alert_rules_path.c_str());
      return 1;
    }
    std::ostringstream rules_text;
    rules_text << rules_file.rdbuf();
    Result<std::vector<obs::AlertRule>> rules =
        obs::ParseAlertRules(rules_text.str());
    if (!rules.ok()) {
      std::fprintf(stderr, "error: %s: %s\n",
                   options.alert_rules_path.c_str(),
                   rules.status().ToString().c_str());
      return 1;
    }
    monitor.alert_rules = std::move(rules).value();
  }
  if (!monitor.alert_rules.empty() || !monitor.webhook_url.empty()) {
    VGOD_LOG(Info) << "model-quality monitor: " << monitor.alert_rules.size()
                   << " alert rule(s), webhook "
                   << (monitor.webhook_url.empty() ? "off"
                                                   : monitor.webhook_url);
  }
  ScoringServer server(std::move(engine).value(), options.port,
                       options.slow_ring, options.transport);
  server.ConfigureMonitor(std::move(monitor));
  if (AccessLog::FromEnv() != nullptr) {
    VGOD_LOG(Info) << "access log enabled (VGOD_ACCESS_LOG)";
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  // Machine-readable startup banner; check_serve.py parses the port.
  std::printf("vgod_serve listening on 127.0.0.1:%d (detector=%s nodes=%d "
              "threads=%d max_batch=%d max_delay_us=%d streaming=%s)\n",
              server.port(), server.engine().detector().name().c_str(),
              server.engine().graph().num_nodes(),
              options.engine.num_threads, options.engine.max_batch,
              options.engine.max_delay_us,
              options.streaming ? "on" : "off");
  std::fflush(stdout);

  while (!stop->load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  VGOD_LOG(Info) << "shutdown requested; draining in-flight work";
  server.Stop();
  std::printf("vgod_serve drained and stopped (served %lld requests, %lld "
              "score calls)\n",
              static_cast<long long>(server.engine().requests_served()),
              static_cast<long long>(server.engine().score_calls()));
  if (obs::TraceEnabled() && !obs::TraceEnvPath().empty()) {
    Status written = obs::WriteTrace(obs::TraceEnvPath());
    if (written.ok()) {
      VGOD_LOG(Info) << "wrote trace to " << obs::TraceEnvPath();
    } else {
      VGOD_LOG(Warning) << "trace export failed: " << written.ToString();
    }
  }
  return 0;
}

}  // namespace vgod::serve
