#ifndef VGOD_SERVE_SERVER_H_
#define VGOD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "obs/alerts.h"
#include "obs/drift.h"
#include "serve/engine.h"
#include "serve/forensics.h"
#include "serve/http.h"
#include "serve/notify.h"

namespace vgod::serve {

/// Model-quality monitoring knobs (docs/OBSERVABILITY.md "Model-quality
/// observability"): the drift window, the parsed alert rules, where
/// alert transitions POST to, and how often the monitor loop ticks.
struct MonitorOptions {
  obs::DriftConfig drift;
  std::vector<obs::AlertRule> alert_rules;
  /// Loopback webhook URL notified on every firing/resolved transition.
  /// Empty disables the webhook.
  std::string webhook_url;
  /// Seconds between monitor ticks (drift rotation + evaluation, alert
  /// sampling, SSE keepalive).
  double interval_seconds = 2.0;
};

/// Everything vgod_serve (and `vgod_cli serve`) needs to stand up a
/// scoring server.
struct ServerOptions {
  /// Model bundle to load (bundle.h). Legacy vgod-params files are
  /// rejected here because they don't name their detector.
  std::string bundle_path;
  /// Resident graph to serve (datasets::io format).
  std::string graph_path;
  /// 0 picks an ephemeral port; see ScoringServer::port().
  int port = 8080;
  /// Capacity of the slowest-request forensics ring behind GET /debug/slow.
  int slow_ring = 16;
  EngineConfig engine;
  /// Enables the streaming subsystem: POST /ingest mutates the resident
  /// graph and /debug/watchlist serves the online top-k
  /// (docs/STREAMING.md).
  bool streaming = false;
  StreamingOptions stream;
  /// Reactor transport knobs: connection cap, idle timeout, dispatch pool
  /// width (docs/SERVING.md "Transport").
  TransportOptions transport;
  /// Path to a JSON alert-rule file (obs::ParseAlertRules format). A
  /// malformed file is a startup error, never a crash. Empty = no rules.
  std::string alert_rules_path;
  /// Drift/alert/webhook knobs; RunServer fills alert_rules from
  /// alert_rules_path.
  MonitorOptions monitor;
};

/// Builds a ScoringEngine from a bundle + graph file (the batch side of
/// ServerOptions, reusable without the HTTP front end).
Result<std::unique_ptr<ScoringEngine>> BuildEngine(
    const std::string& bundle_path, const std::string& graph_path,
    const EngineConfig& config);

/// The HTTP scoring server: a ScoringEngine behind the endpoints
/// documented in docs/SERVING.md —
///   POST /score       {"nodes":[...]} or {"graph":{...}} -> scores JSON
///   POST /ingest      {"events":[...]} graph mutations (streaming mode)
///   GET  /healthz     readiness + model identity (503 + reason while
///                     draining or mid-compaction-swap)
///   GET  /healthz/live   liveness only — 200 whenever the process serves
///   GET  /healthz/ready  readiness probe, minimal body
///   GET  /metrics     the vgod::obs metrics registry as JSON
///                     (?format=prometheus for text exposition 0.0.4)
///   GET  /debug/slow  the K slowest requests with stage breakdowns
///   GET  /debug/watchlist  current top-k online outliers (streaming)
///   GET  /debug/drift   live-vs-baseline drift report (PSI/KS/structural)
///   GET  /debug/alerts  alert-rule states and transition counts
///   GET  /events        SSE stream of alert transitions + watchlist changes
///
/// Every request gets a monotonic request id at dispatch; the id threads
/// through the engine's StageTiming, the /score response body, the
/// structured access log (VGOD_ACCESS_LOG), the slow-request ring, and the
/// trace ring's flow events (docs/OBSERVABILITY.md "Request lifecycle").
class ScoringServer {
 public:
  ScoringServer(std::unique_ptr<ScoringEngine> engine, int port,
                int slow_ring = 16, TransportOptions transport = {});
  ~ScoringServer();

  /// Installs the model-quality monitor configuration (drift window,
  /// alert rules, webhook target, tick interval). Must run before
  /// Start(); defaults apply otherwise.
  void ConfigureMonitor(MonitorOptions options);

  /// Starts the engine's worker pool, the HTTP listener, the webhook
  /// notifier, and the model-quality monitor loop.
  Status Start();

  /// Graceful shutdown: stops the listener, drains the engine. Idempotent.
  void Stop();

  int port() const { return http_ == nullptr ? 0 : http_->port(); }
  ScoringEngine& engine() { return *engine_; }
  const SlowRequestTracker& slow_requests() const { return slow_; }
  obs::DriftMonitor& drift() { return *drift_; }

 private:
  /// One response delivery, invoked exactly once, from whichever thread
  /// completes the request (a transport dispatch worker for inline
  /// endpoints, an engine batch worker for /score).
  using Done = std::function<void(HttpResponse)>;

  void Handle(const HttpRequest& request, HttpServer::Responder respond);
  void Dispatch(const HttpRequest& request, const std::string& path,
                const std::string& query,
                const std::shared_ptr<AccessRecord>& record, Done done);
  /// One monitor tick: drift window rotation + structural inputs +
  /// evaluation, alert sampling, and notification fan-out.
  void MonitorTick(double now_seconds);
  void MonitorLoop();

  std::unique_ptr<ScoringEngine> engine_;
  std::unique_ptr<HttpServer> http_;
  int requested_port_;
  TransportOptions transport_;
  SlowRequestTracker slow_;

  // --- Model-quality monitoring (docs/OBSERVABILITY.md) ---
  MonitorOptions monitor_options_;
  std::unique_ptr<obs::DriftMonitor> drift_;
  std::unique_ptr<obs::AlertEngine> alerts_;
  std::unique_ptr<SseHub> sse_;
  std::unique_ptr<WebhookNotifier> webhook_;
  std::thread monitor_thread_;
  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
};

/// CLI entry point shared by vgod_serve and `vgod_cli serve`: builds the
/// engine, starts the server, prints the bound port, and blocks until
/// `*stop` becomes true (typically flipped by a SIGINT/SIGTERM handler).
/// Returns a process exit code.
int RunServer(const ServerOptions& options, const std::atomic<bool>* stop);

}  // namespace vgod::serve

#endif  // VGOD_SERVE_SERVER_H_
