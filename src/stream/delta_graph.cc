#include "stream/delta_graph.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/check.h"
#include "obs/profile.h"

namespace vgod::stream {
namespace {

/// Canonical undirected key for the batch-validation edge-state map.
std::pair<int, int> EdgeKey(int u, int v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

Status EventError(size_t index, const std::string& message) {
  return Status::InvalidArgument("event " + std::to_string(index) + ": " +
                                 message);
}

}  // namespace

DeltaGraphStore::DeltaGraphStore(AttributedGraph base) {
  VGOD_CHECK(base.has_attributes())
      << "DeltaGraphStore requires an attributed base graph";
  base_ = std::make_shared<const AttributedGraph>(std::move(base));
  cached_ = base_;
}

bool DeltaGraphStore::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  if (auto it = delta_.find(u); it != delta_.end()) {
    const NodeDelta& nd = it->second;
    if (std::binary_search(nd.added.begin(), nd.added.end(), v)) return true;
    if (std::binary_search(nd.removed.begin(), nd.removed.end(), v)) {
      return false;
    }
  }
  return u < base_->num_nodes() && v < base_->num_nodes() &&
         base_->HasEdge(u, v);
}

int DeltaGraphStore::Degree(int node) const {
  int degree =
      node < base_->num_nodes() ? base_->Degree(node) : 0;
  if (auto it = delta_.find(node); it != delta_.end()) {
    degree += static_cast<int>(it->second.added.size()) -
              static_cast<int>(it->second.removed.size());
  }
  return degree;
}

void DeltaGraphStore::AppendCurrentNeighbors(int node,
                                             std::vector<int32_t>* out) const {
  std::span<const int32_t> base_row;
  if (node < base_->num_nodes()) base_row = base_->Neighbors(node);
  const auto it = delta_.find(node);
  if (it == delta_.end()) {
    out->insert(out->end(), base_row.begin(), base_row.end());
    return;
  }
  // Sorted merge: base row minus removed (a subset, walked in lockstep)
  // interleaved with added (disjoint from the base row).
  const NodeDelta& nd = it->second;
  size_t ai = 0;
  size_t ri = 0;
  for (int32_t v : base_row) {
    if (ri < nd.removed.size() && nd.removed[ri] == v) {
      ++ri;
      continue;
    }
    while (ai < nd.added.size() && nd.added[ai] < v) {
      out->push_back(nd.added[ai++]);
    }
    out->push_back(v);
  }
  while (ai < nd.added.size()) out->push_back(nd.added[ai++]);
}

std::vector<int32_t> DeltaGraphStore::CurrentNeighbors(int node) const {
  VGOD_CHECK(node >= 0 && node < num_nodes()) << "node out of range";
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(std::max(Degree(node), 0)));
  AppendCurrentNeighbors(node, &out);
  return out;
}

std::vector<float> DeltaGraphStore::AttributeRow(int node) const {
  VGOD_CHECK(node >= 0 && node < num_nodes()) << "node out of range";
  const int base_nodes = base_->num_nodes();
  if (node >= base_nodes) return new_rows_[node - base_nodes];
  if (auto it = attr_override_.find(node); it != attr_override_.end()) {
    return it->second;
  }
  return base_->attributes().RowToVector(node);
}

Status DeltaGraphStore::ValidateBatch(
    const std::vector<GraphEvent>& events) const {
  const int dim = attribute_dim();
  int nodes = num_nodes();
  // Net in-batch edge state on top of the store: absent keys defer to
  // HasEdge. Tracks the sequence's own inserts/removes so e.g.
  // [add(1,2), remove(1,2), add(1,2)] validates.
  std::map<std::pair<int, int>, bool> pending;
  const auto edge_exists = [&](int u, int v) {
    if (auto it = pending.find(EdgeKey(u, v)); it != pending.end()) {
      return it->second;
    }
    return HasEdge(u, v);
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const GraphEvent& event = events[i];
    switch (event.type) {
      case EventType::kAddEdge:
      case EventType::kRemoveEdge: {
        const bool insert = event.type == EventType::kAddEdge;
        if (event.u < 0 || event.u >= nodes || event.v < 0 ||
            event.v >= nodes) {
          return EventError(i, "endpoint (" + std::to_string(event.u) + "," +
                                   std::to_string(event.v) +
                                   ") outside graph of " +
                                   std::to_string(nodes) + " nodes");
        }
        if (event.u == event.v) {
          return EventError(i,
                            "self loops are managed by the detector's "
                            "self-loop technique, not ingest");
        }
        if (insert && edge_exists(event.u, event.v)) {
          return EventError(i, "edge (" + std::to_string(event.u) + "," +
                                   std::to_string(event.v) +
                                   ") already exists");
        }
        if (!insert && !edge_exists(event.u, event.v)) {
          return EventError(i, "edge (" + std::to_string(event.u) + "," +
                                   std::to_string(event.v) +
                                   ") does not exist");
        }
        pending[EdgeKey(event.u, event.v)] = insert;
        break;
      }
      case EventType::kAddNode: {
        if (static_cast<int>(event.attributes.size()) != dim) {
          return EventError(
              i, "attribute row has " +
                     std::to_string(event.attributes.size()) +
                     " values, graph attribute_dim is " +
                     std::to_string(dim));
        }
        ++nodes;
        break;
      }
      case EventType::kUpdateAttributes: {
        if (event.node < 0 || event.node >= nodes) {
          return EventError(i, "node " + std::to_string(event.node) +
                                   " outside graph of " +
                                   std::to_string(nodes) + " nodes");
        }
        if (static_cast<int>(event.attributes.size()) != dim) {
          return EventError(
              i, "attribute row has " +
                     std::to_string(event.attributes.size()) +
                     " values, graph attribute_dim is " +
                     std::to_string(dim));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

void DeltaGraphStore::ToggleHalfEdge(int u, int v, bool insert) {
  NodeDelta& nd = delta_[u];
  // An insert of a base edge that was overlay-removed (or a remove of an
  // overlay-added edge) cancels the overlay entry instead of growing the
  // opposite list, so the overlay stays minimal.
  std::vector<int32_t>& cancel = insert ? nd.removed : nd.added;
  const auto it = std::lower_bound(cancel.begin(), cancel.end(), v);
  if (it != cancel.end() && *it == v) {
    cancel.erase(it);
    --overlay_edges_;
  } else {
    std::vector<int32_t>& grow = insert ? nd.added : nd.removed;
    grow.insert(std::lower_bound(grow.begin(), grow.end(), v), v);
    ++overlay_edges_;
  }
  if (nd.added.empty() && nd.removed.empty()) delta_.erase(u);
}

void DeltaGraphStore::ApplyOne(const GraphEvent& event) {
  switch (event.type) {
    case EventType::kAddEdge:
    case EventType::kRemoveEdge: {
      const bool insert = event.type == EventType::kAddEdge;
      VGOD_CHECK(event.u != event.v && event.u >= 0 && event.v >= 0 &&
                 event.u < num_nodes() && event.v < num_nodes())
          << "ApplyOne on an unvalidated edge event";
      VGOD_CHECK(HasEdge(event.u, event.v) != insert)
          << "ApplyOne on an unvalidated edge event";
      ToggleHalfEdge(event.u, event.v, insert);
      ToggleHalfEdge(event.v, event.u, insert);
      break;
    }
    case EventType::kAddNode: {
      VGOD_CHECK_EQ(static_cast<int>(event.attributes.size()),
                    attribute_dim());
      new_rows_.push_back(event.attributes);
      break;
    }
    case EventType::kUpdateAttributes: {
      VGOD_CHECK(event.node >= 0 && event.node < num_nodes());
      VGOD_CHECK_EQ(static_cast<int>(event.attributes.size()),
                    attribute_dim());
      const int base_nodes = base_->num_nodes();
      if (event.node >= base_nodes) {
        new_rows_[event.node - base_nodes] = event.attributes;
      } else {
        attr_override_[event.node] = event.attributes;
      }
      break;
    }
  }
  ++delta_ops_;
  dirty_ = true;
}

AttributedGraph DeltaGraphStore::Materialize() const {
  VGOD_PROFILE_SCOPE("stream/materialize");
  const int nodes = num_nodes();
  const int dim = attribute_dim();

  std::vector<int64_t> row_ptr(nodes + 1, 0);
  std::vector<int32_t> col_idx;
  col_idx.reserve(static_cast<size_t>(base_->num_directed_edges()) +
                  static_cast<size_t>(overlay_edges_));
  for (int i = 0; i < nodes; ++i) {
    AppendCurrentNeighbors(i, &col_idx);
    row_ptr[i + 1] = static_cast<int64_t>(col_idx.size());
  }

  Tensor attributes(nodes, dim);
  const int base_nodes = base_->num_nodes();
  const float* src = base_->attributes().data();
  float* dst = attributes.data();
  std::copy(src, src + static_cast<size_t>(base_nodes) * dim, dst);
  for (const auto& [node, row] : attr_override_) {
    std::copy(row.begin(), row.end(),
              dst + static_cast<size_t>(node) * dim);
  }
  for (size_t i = 0; i < new_rows_.size(); ++i) {
    std::copy(new_rows_[i].begin(), new_rows_[i].end(),
              dst + (static_cast<size_t>(base_nodes) + i) * dim);
  }

  Result<AttributedGraph> built = AttributedGraph::FromCsr(
      nodes, std::move(row_ptr), std::move(col_idx), std::move(attributes));
  VGOD_CHECK(built.ok()) << "materialized overlay is not a valid CSR: "
                         << built.status().ToString();
  return std::move(built).value();
}

std::shared_ptr<const AttributedGraph> DeltaGraphStore::Snapshot() {
  if (dirty_) {
    cached_ = std::make_shared<const AttributedGraph>(Materialize());
    dirty_ = false;
  }
  return cached_;
}

void DeltaGraphStore::Compact() {
  VGOD_PROFILE_SCOPE("stream/compact");
  base_ = Snapshot();
  delta_.clear();
  attr_override_.clear();
  new_rows_.clear();
  delta_ops_ = 0;
  overlay_edges_ = 0;
  ++compactions_;
}

}  // namespace vgod::stream
