#ifndef VGOD_STREAM_DELTA_GRAPH_H_
#define VGOD_STREAM_DELTA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "graph/graph.h"
#include "stream/events.h"

namespace vgod::stream {

/// Mutable graph store behind the streaming scoring engine: an immutable
/// base CSR (`shared_ptr<const AttributedGraph>`) plus a per-node delta
/// overlay — sorted added/removed adjacency lists relative to the base
/// row, replacement attribute rows, and appended nodes. Mutations never
/// touch a published AttributedGraph: readers take Snapshot(), which is a
/// copy-on-write materialization of base+overlay cached until the next
/// mutation, so in-flight scorers (and the deterministic parallel kernels
/// under them) always see a fully consistent graph. Compact() promotes
/// the current snapshot to the new base and clears the overlay, bounding
/// overlay memory and restoring O(log deg) HasEdge.
///
/// NOT internally synchronized: the owning ScoringEngine serializes every
/// call behind its stream mutex and publishes snapshots to its scoring
/// workers (docs/STREAMING.md "Concurrency").
///
/// Materialized snapshots carry attributes only — community/outlier label
/// vectors are training/eval artifacts with no sizing story for appended
/// nodes, so the streaming path drops them (docs/STREAMING.md).
class DeltaGraphStore {
 public:
  /// The base graph must have attributes (streaming scoring needs them).
  explicit DeltaGraphStore(AttributedGraph base);

  DeltaGraphStore(const DeltaGraphStore&) = delete;
  DeltaGraphStore& operator=(const DeltaGraphStore&) = delete;

  int num_nodes() const {
    return base_->num_nodes() + static_cast<int>(new_rows_.size());
  }
  int attribute_dim() const { return base_->attribute_dim(); }

  /// Events applied since the last compaction (auto-compaction trigger).
  int64_t delta_ops() const { return delta_ops_; }
  /// Directed adjacency entries currently held in the overlay
  /// (added + removed lists across all nodes).
  int64_t overlay_edges() const { return overlay_edges_; }
  int64_t compactions() const { return compactions_; }

  /// Overlay-aware directed-edge membership. Out-of-range ids are false.
  bool HasEdge(int u, int v) const;
  /// Overlay-aware degree.
  int Degree(int node) const;
  /// Current sorted neighbor list of `node` (base minus removed plus
  /// added); the O(deg) view the incremental scorer walks.
  std::vector<int32_t> CurrentNeighbors(int node) const;
  /// Current attribute row of `node` (override/appended/base).
  std::vector<float> AttributeRow(int node) const;

  /// Validates `events` as a sequence against the current graph state
  /// (ranges, self loops, duplicate inserts, missing-edge removes,
  /// attribute widths — tracking intra-batch effects) WITHOUT mutating
  /// anything, so a hostile batch is rejected whole and the store stays
  /// exactly as it was (all-or-nothing ingest, docs/ROBUSTNESS.md).
  Status ValidateBatch(const std::vector<GraphEvent>& events) const;

  /// Applies one event that already passed ValidateBatch (in sequence).
  /// CHECK-fails on invalid input — callers must validate first.
  void ApplyOne(const GraphEvent& event);

  /// The current graph, materialized base+overlay. Cached: repeated calls
  /// without intervening ApplyOne return the same shared snapshot;
  /// mutation invalidates the cache and the next call pays one O(V + E)
  /// rebuild. Returned snapshots are immutable forever.
  std::shared_ptr<const AttributedGraph> Snapshot();

  /// Promotes Snapshot() to the new base and clears the overlay.
  void Compact();

  /// The immutable base CSR (pre-overlay).
  std::shared_ptr<const AttributedGraph> base() const { return base_; }

 private:
  struct NodeDelta {
    std::vector<int32_t> added;    // Sorted; disjoint from base row.
    std::vector<int32_t> removed;  // Sorted; subset of base row.
  };

  /// Directed half-edge toggle: moves v in/out of u's added/removed lists
  /// depending on whether (u,v) is a base edge.
  void ToggleHalfEdge(int u, int v, bool insert);
  /// Appends the current neighbor row of `node` to `out`.
  void AppendCurrentNeighbors(int node, std::vector<int32_t>* out) const;
  AttributedGraph Materialize() const;

  std::shared_ptr<const AttributedGraph> base_;
  std::unordered_map<int, NodeDelta> delta_;
  /// Replacement attribute rows for base nodes.
  std::unordered_map<int, std::vector<float>> attr_override_;
  /// Attribute rows of appended nodes (node id = base nodes + index).
  std::vector<std::vector<float>> new_rows_;

  std::shared_ptr<const AttributedGraph> cached_;
  bool dirty_ = false;
  int64_t delta_ops_ = 0;
  int64_t overlay_edges_ = 0;
  int64_t compactions_ = 0;
};

}  // namespace vgod::stream

#endif  // VGOD_STREAM_DELTA_GRAPH_H_
