#include "stream/events.h"

#include <utility>

namespace vgod::stream {
namespace {

/// True when `value` is a JSON number representing an int (no fraction,
/// in int range). Node ids on the wire must be exact integers.
bool JsonInt(const obs::JsonValue& value, int* out) {
  if (!value.is_number()) return false;
  const double number = value.number();
  const int as_int = static_cast<int>(number);
  if (static_cast<double>(as_int) != number) return false;
  *out = as_int;
  return true;
}

Status ParseAttributeRow(const obs::JsonValue& spec, size_t index,
                         std::vector<float>* out) {
  if (!spec.is_array() || spec.array().empty()) {
    return Status::InvalidArgument(
        "event " + std::to_string(index) +
        ": 'attributes' must be a non-empty number array");
  }
  out->reserve(spec.array().size());
  for (const obs::JsonValue& value : spec.array()) {
    if (!value.is_number()) {
      return Status::InvalidArgument("event " + std::to_string(index) +
                                     ": attributes must be numbers");
    }
    out->push_back(static_cast<float>(value.number()));
  }
  return Status::Ok();
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kAddEdge: return "add_edge";
    case EventType::kRemoveEdge: return "remove_edge";
    case EventType::kAddNode: return "add_node";
    case EventType::kUpdateAttributes: return "update_attributes";
  }
  return "unknown";
}

GraphEvent GraphEvent::AddEdge(int u, int v) {
  GraphEvent event;
  event.type = EventType::kAddEdge;
  event.u = u;
  event.v = v;
  return event;
}

GraphEvent GraphEvent::RemoveEdge(int u, int v) {
  GraphEvent event;
  event.type = EventType::kRemoveEdge;
  event.u = u;
  event.v = v;
  return event;
}

GraphEvent GraphEvent::AddNode(std::vector<float> attributes) {
  GraphEvent event;
  event.type = EventType::kAddNode;
  event.attributes = std::move(attributes);
  return event;
}

GraphEvent GraphEvent::UpdateAttributes(int node,
                                        std::vector<float> attributes) {
  GraphEvent event;
  event.type = EventType::kUpdateAttributes;
  event.node = node;
  event.attributes = std::move(attributes);
  return event;
}

Result<EventBatch> ParseEventBatch(const obs::JsonValue& body,
                                   size_t max_events) {
  if (!body.is_object()) {
    return Status::InvalidArgument("ingest body must be a JSON object");
  }
  const obs::JsonValue& events_spec = body.at("events");
  if (!events_spec.is_array()) {
    return Status::InvalidArgument("ingest body needs an 'events' array");
  }
  if (events_spec.array().size() > max_events) {
    return Status::InvalidArgument(
        "event batch of " + std::to_string(events_spec.array().size()) +
        " exceeds the per-request cap of " + std::to_string(max_events));
  }

  EventBatch batch;
  const obs::JsonValue& compact = body.at("compact");
  if (compact.is_bool()) batch.compact = compact.boolean();
  else if (!compact.is_null()) {
    return Status::InvalidArgument("'compact' must be a boolean");
  }

  batch.events.reserve(events_spec.array().size());
  for (size_t i = 0; i < events_spec.array().size(); ++i) {
    const obs::JsonValue& spec = events_spec.array()[i];
    if (!spec.is_object() || !spec.at("op").is_string()) {
      return Status::InvalidArgument(
          "event " + std::to_string(i) +
          ": must be an object with a string 'op'");
    }
    const std::string& op = spec.at("op").string_value();
    GraphEvent event;
    if (op == "add_edge" || op == "remove_edge") {
      if (!JsonInt(spec.at("u"), &event.u) ||
          !JsonInt(spec.at("v"), &event.v)) {
        return Status::InvalidArgument("event " + std::to_string(i) + ": '" +
                                       op + "' needs integer 'u' and 'v'");
      }
      event.type = op == "add_edge" ? EventType::kAddEdge
                                    : EventType::kRemoveEdge;
    } else if (op == "add_node") {
      event.type = EventType::kAddNode;
      VGOD_RETURN_IF_ERROR(
          ParseAttributeRow(spec.at("attributes"), i, &event.attributes));
    } else if (op == "update_attributes") {
      event.type = EventType::kUpdateAttributes;
      if (!JsonInt(spec.at("node"), &event.node)) {
        return Status::InvalidArgument(
            "event " + std::to_string(i) +
            ": 'update_attributes' needs an integer 'node'");
      }
      VGOD_RETURN_IF_ERROR(
          ParseAttributeRow(spec.at("attributes"), i, &event.attributes));
    } else {
      return Status::InvalidArgument(
          "event " + std::to_string(i) + ": unknown op '" + op +
          "' (want add_edge|remove_edge|add_node|update_attributes)");
    }
    batch.events.push_back(std::move(event));
  }
  return batch;
}

}  // namespace vgod::stream
