#ifndef VGOD_STREAM_EVENTS_H_
#define VGOD_STREAM_EVENTS_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "obs/json.h"

namespace vgod::stream {

/// One mutation of the resident attributed graph. Edges are undirected
/// (an add/remove touches both CSR directions, matching the dataset
/// convention of graph.h); attribute events carry a full replacement row.
enum class EventType {
  kAddEdge,
  kRemoveEdge,
  kAddNode,
  kUpdateAttributes,
};

/// Stable lower_snake name ("add_edge", ...), the wire format's "op"
/// value and the stream.events.* metric suffix.
const char* EventTypeName(EventType type);

struct GraphEvent {
  EventType type = EventType::kAddEdge;
  /// Endpoints for kAddEdge / kRemoveEdge.
  int u = -1;
  int v = -1;
  /// Target for kUpdateAttributes.
  int node = -1;
  /// Attribute row for kAddNode / kUpdateAttributes (width must match the
  /// graph's attribute_dim; validated by DeltaGraphStore::ValidateBatch).
  std::vector<float> attributes;

  static GraphEvent AddEdge(int u, int v);
  static GraphEvent RemoveEdge(int u, int v);
  static GraphEvent AddNode(std::vector<float> attributes);
  static GraphEvent UpdateAttributes(int node, std::vector<float> attributes);
};

/// A parsed POST /ingest body: the ordered event list plus the optional
/// explicit-compaction flag ({"compact":true} forces a snapshot
/// compaction after the batch applies, regardless of the delta size).
struct EventBatch {
  std::vector<GraphEvent> events;
  bool compact = false;
};

/// Parses the wire format (docs/STREAMING.md):
///   {"events":[{"op":"add_edge","u":0,"v":1},
///              {"op":"remove_edge","u":0,"v":1},
///              {"op":"add_node","attributes":[...]},
///              {"op":"update_attributes","node":2,"attributes":[...]}],
///    "compact":false}
/// Purely syntactic — graph-level validity (ranges, duplicate edges,
/// attribute widths) is checked by DeltaGraphStore::ValidateBatch so the
/// error message can see the current graph. Batches beyond `max_events`
/// are rejected up front (hostile-input cap, docs/ROBUSTNESS.md).
Result<EventBatch> ParseEventBatch(const obs::JsonValue& body,
                                   size_t max_events);

}  // namespace vgod::stream

#endif  // VGOD_STREAM_EVENTS_H_
