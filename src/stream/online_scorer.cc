#include "stream/online_scorer.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace vgod::stream {

Result<OnlineScorer> OnlineScorer::Create(DeltaGraphStore* store,
                                          OnlineScorerConfig config) {
  VGOD_CHECK(store != nullptr);
  OnlineScorer scorer(store, std::move(config));
  VGOD_RETURN_IF_ERROR(scorer.Rebuild());
  return scorer;
}

Result<Tensor> OnlineScorer::Embed(const Tensor& rows) const {
  if (!config_.embed) return rows;
  return config_.embed(rows);
}

Result<std::vector<double>> OnlineScorer::EmbedRow(
    const std::vector<float>& row) const {
  Tensor one(1, static_cast<int>(row.size()));
  std::copy(row.begin(), row.end(), one.data());
  Result<Tensor> embedded = Embed(one);
  VGOD_RETURN_IF_ERROR(embedded.status());
  const Tensor& h = embedded.value();
  VGOD_CHECK_EQ(h.rows(), 1);
  VGOD_CHECK_EQ(h.cols(), dim_);
  return std::vector<double>(h.data(), h.data() + dim_);
}

Status OnlineScorer::Rebuild() {
  std::shared_ptr<const AttributedGraph> snapshot = store_->Snapshot();
  Result<Tensor> embedded = Embed(snapshot->attributes());
  VGOD_RETURN_IF_ERROR(embedded.status());
  const Tensor& h = embedded.value();
  const int n = snapshot->num_nodes();
  VGOD_CHECK_EQ(h.rows(), n);
  dim_ = h.cols();

  emb_.assign(h.data(), h.data() + static_cast<size_t>(n) * dim_);
  normsq_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = emb_.data() + static_cast<size_t>(i) * dim_;
    double acc = 0.0;
    for (int c = 0; c < dim_; ++c) acc += row[c] * row[c];
    normsq_[i] = acc;
  }

  deg_.assign(n, 0);
  sum_.assign(static_cast<size_t>(n) * dim_, 0.0);
  q_.assign(n, 0.0);
  score_.assign(n, 0.0);
  ranked_.clear();
  for (int i = 0; i < n; ++i) {
    double* srow = sum_.data() + static_cast<size_t>(i) * dim_;
    for (int32_t j : snapshot->Neighbors(i)) {
      const double* hrow = emb_.data() + static_cast<size_t>(j) * dim_;
      for (int c = 0; c < dim_; ++c) srow[c] += hrow[c];
      q_[i] += normsq_[j];
      ++deg_[i];
    }
  }
  for (int i = 0; i < n; ++i) {
    ranked_.emplace(0.0, i);  // Placeholder; RefreshScore repositions.
    score_[i] = 0.0;
    RefreshScore(i);
  }
  return Status::Ok();
}

int OnlineScorer::RefreshScore(int node) {
  const int deg_eff = deg_[node] + (config_.include_self ? 1 : 0);
  double next = 0.0;
  if (deg_eff > 0) {
    const double* srow = sum_.data() + static_cast<size_t>(node) * dim_;
    const double* hrow = emb_.data() + static_cast<size_t>(node) * dim_;
    double mean_normsq = 0.0;
    for (int c = 0; c < dim_; ++c) {
      const double s =
          config_.include_self ? srow[c] + hrow[c] : srow[c];
      const double mean = s / deg_eff;
      mean_normsq += mean * mean;
    }
    const double q_eff =
        config_.include_self ? q_[node] + normsq_[node] : q_[node];
    next = std::max(0.0, q_eff / deg_eff - mean_normsq);
  }
  ranked_.erase({score_[node], node});
  score_[node] = next;
  ranked_.emplace(next, node);
  return 1;
}

void OnlineScorer::AddNeighborTerm(int node, int neighbor, double sign) {
  double* srow = sum_.data() + static_cast<size_t>(node) * dim_;
  const double* hrow = emb_.data() + static_cast<size_t>(neighbor) * dim_;
  for (int c = 0; c < dim_; ++c) srow[c] += sign * hrow[c];
  q_[node] += sign * normsq_[neighbor];
  deg_[node] += sign > 0 ? 1 : -1;
}

Result<int> OnlineScorer::ApplyOne(const GraphEvent& event) {
  switch (event.type) {
    case EventType::kAddEdge:
    case EventType::kRemoveEdge: {
      const double sign = event.type == EventType::kAddEdge ? 1.0 : -1.0;
      VGOD_CHECK(event.u >= 0 && event.u < num_nodes() && event.v >= 0 &&
                 event.v < num_nodes());
      AddNeighborTerm(event.u, event.v, sign);
      AddNeighborTerm(event.v, event.u, sign);
      return RefreshScore(event.u) + RefreshScore(event.v);
    }
    case EventType::kAddNode: {
      // Embed BEFORE touching state so a rejected row leaves the scorer
      // unchanged (the engine only feeds pre-validated events, but the
      // embedder is caller-supplied).
      Result<std::vector<double>> h = EmbedRow(event.attributes);
      VGOD_RETURN_IF_ERROR(h.status());
      const int node = num_nodes();
      double acc = 0.0;
      for (double value : h.value()) acc += value * value;
      emb_.insert(emb_.end(), h.value().begin(), h.value().end());
      normsq_.push_back(acc);
      deg_.push_back(0);
      sum_.resize(sum_.size() + dim_, 0.0);
      q_.push_back(0.0);
      score_.push_back(0.0);
      ranked_.emplace(0.0, node);
      return RefreshScore(node);
    }
    case EventType::kUpdateAttributes: {
      VGOD_CHECK(event.node >= 0 && event.node < num_nodes());
      Result<std::vector<double>> embedded = EmbedRow(event.attributes);
      VGOD_RETURN_IF_ERROR(embedded.status());
      const std::vector<double>& fresh = embedded.value();
      double* old = emb_.data() + static_cast<size_t>(event.node) * dim_;
      std::vector<double> delta(dim_);
      double fresh_normsq = 0.0;
      for (int c = 0; c < dim_; ++c) {
        delta[c] = fresh[c] - old[c];
        fresh_normsq += fresh[c] * fresh[c];
      }
      const double dq = fresh_normsq - normsq_[event.node];
      int touched = 0;
      // The store already holds the new row, but adjacency is unchanged
      // by attribute events, so this neighbor view matches event time.
      for (int32_t j : store_->CurrentNeighbors(event.node)) {
        double* srow = sum_.data() + static_cast<size_t>(j) * dim_;
        for (int c = 0; c < dim_; ++c) srow[c] += delta[c];
        q_[j] += dq;
        touched += RefreshScore(j);
      }
      std::copy(fresh.begin(), fresh.end(), old);
      normsq_[event.node] = fresh_normsq;
      // Own score shifts too under include_self; refresh unconditionally
      // (free when it doesn't change, and keeps the accounting simple).
      touched += RefreshScore(event.node);
      return touched;
    }
  }
  return Status::Internal("unhandled event type");
}

double OnlineScorer::Score(int node) const {
  VGOD_CHECK(node >= 0 && node < num_nodes());
  return score_[node];
}

std::vector<float> OnlineScorer::Scores() const {
  std::vector<float> out(score_.size());
  for (size_t i = 0; i < score_.size(); ++i) {
    out[i] = static_cast<float>(score_[i]);
  }
  return out;
}

std::vector<std::pair<int, double>> OnlineScorer::TopK(int k) const {
  std::vector<std::pair<int, double>> out;
  out.reserve(std::min<size_t>(std::max(k, 0), ranked_.size()));
  for (auto it = ranked_.rbegin();
       it != ranked_.rend() && static_cast<int>(out.size()) < k; ++it) {
    out.emplace_back(it->second, it->first);
  }
  return out;
}

}  // namespace vgod::stream
