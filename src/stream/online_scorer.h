#ifndef VGOD_STREAM_ONLINE_SCORER_H_
#define VGOD_STREAM_ONLINE_SCORER_H_

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "core/status.h"
#include "stream/delta_graph.h"
#include "stream/events.h"
#include "tensor/tensor.h"

namespace vgod::stream {

struct OnlineScorerConfig {
  /// Maps attribute rows (m x d) to embedding rows (m x k). Row-local by
  /// construction for VBM — h_i = L2Normalize(W x_i + b) reads only row i
  /// — which is what makes single-row re-embedding on attribute events
  /// sound. Unset means score raw attributes (identity embedding).
  std::function<Result<Tensor>(const Tensor&)> embed;
  /// Mirrors VbmConfig::self_loop (paper Eq. 13): fold node i's own
  /// embedding into its neighbor statistics. The full-rescore path
  /// realizes this via WithSelfLoops(); the incremental path adds the
  /// h_i terms analytically at score time.
  bool include_self = false;
};

/// Incremental NeighborVarianceScore (paper Eq. 7-9). Maintains, per node
/// i over its current neighbors j ∈ N_i:
///   deg_i,   S_i = Σ h_j   (double),   q_i = Σ ||h_j||²   (double)
/// so that
///   score_i = max(0, q_eff/deg_eff − ||S_eff/deg_eff||²)
/// where the _eff terms optionally fold in h_i (include_self). This is
/// the E[X²] − ||E[X]||² form of the paper's neighbor variance; each
/// graph event updates only the O(deg) touched nodes instead of
/// triggering a global rescore. A full ranking (std::set keyed by
/// (score, node)) is maintained alongside, so the top-k outlier
/// watchlist is O(log n) per touched node and O(k) to read.
///
/// Determinism caveat (docs/STREAMING.md): aggregates accumulate in
/// double, while the from-scratch kernel computes the neighbor mean in
/// float. Scores agree to ~1e-6 for unit-norm embeddings — inside the
/// 1e-5 equivalence budget — but are not bit-identical, and a long
/// delete-heavy event history can accumulate rounding that a compaction
/// does NOT reset (compaction rebuilds the CSR, not the aggregates; call
/// Rebuild() to resync exactly).
///
/// NOT internally synchronized — same contract as DeltaGraphStore.
class OnlineScorer {
 public:
  /// Builds initial aggregates from the store's current snapshot.
  /// Fails if the embedder rejects the attribute matrix.
  static Result<OnlineScorer> Create(DeltaGraphStore* store,
                                     OnlineScorerConfig config);

  OnlineScorer(OnlineScorer&&) = default;
  OnlineScorer& operator=(OnlineScorer&&) = default;

  int num_nodes() const { return static_cast<int>(deg_.size()); }
  int embedding_dim() const { return dim_; }

  /// Updates aggregates for one event that the store has ALREADY applied
  /// (call order per event: store->ApplyOne, then scorer->ApplyOne).
  /// Returns the number of nodes whose score was recomputed — the O(deg)
  /// cost certificate exported as the stream.touched_nodes.per_event
  /// histogram. Fails (without corrupting state) if the embedder rejects
  /// the event's attribute row.
  Result<int> ApplyOne(const GraphEvent& event);

  /// Current score of `node`.
  double Score(int node) const;
  /// All current scores, float-narrowed to match detector output.
  std::vector<float> Scores() const;

  /// Top `k` nodes by score, descending; ties break toward the higher
  /// node id (std::set ordering on (score, node) pairs).
  std::vector<std::pair<int, double>> TopK(int k) const;

  /// Re-derives every aggregate from the store's current snapshot —
  /// exact resync after long event histories. O(V·k + E·k).
  Status Rebuild();

 private:
  OnlineScorer(DeltaGraphStore* store, OnlineScorerConfig config)
      : store_(store), config_(std::move(config)) {}

  /// Runs config_.embed (or identity) over `rows`.
  Result<Tensor> Embed(const Tensor& rows) const;
  /// Embeds one attribute row into out[0..dim_).
  Result<std::vector<double>> EmbedRow(const std::vector<float>& row) const;
  /// Recomputes score of `node` from aggregates and repositions it in the
  /// ranking. Returns 1 (touched-node count contribution).
  int RefreshScore(int node);
  void AddNeighborTerm(int node, int neighbor, double sign);

  DeltaGraphStore* store_;
  OnlineScorerConfig config_;
  int dim_ = 0;

  /// Flattened n x dim_ embeddings (double: they feed double aggregates).
  std::vector<double> emb_;
  /// ||h_i||² per node.
  std::vector<double> normsq_;
  /// Neighbor count per node (excluding the analytic self term).
  std::vector<int> deg_;
  /// Flattened n x dim_ neighbor-sum aggregates.
  std::vector<double> sum_;
  /// Neighbor sum-of-squared-norms per node.
  std::vector<double> q_;
  std::vector<double> score_;
  /// Full ranking; watchlist reads walk from rbegin.
  std::set<std::pair<double, int>> ranked_;
};

}  // namespace vgod::stream

#endif  // VGOD_STREAM_ONLINE_SCORER_H_
