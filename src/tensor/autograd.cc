#include "tensor/autograd.h"

#include <unordered_set>

#include "tensor/kernels.h"

namespace vgod {
namespace {

// Per-thread so the serving worker pool can hold NoGradGuard on several
// threads at once without racing (and without disabling grad for a
// training thread in the same process).
thread_local bool g_grad_enabled = true;

}  // namespace

namespace internal {

void AutogradNode::AccumulateGrad(const Tensor& g) {
  if (!requires_grad) return;
  VGOD_CHECK(g.SameShape(value))
      << "gradient shape " << g.ShapeString() << " vs value "
      << value.ShapeString() << " in op " << op_name;
  if (!grad.defined()) {
    grad = g.Clone();
  } else {
    kernels::AddInPlace(&grad, g);
  }
}

}  // namespace internal

Variable Variable::Parameter(Tensor value) {
  auto node = std::make_shared<internal::AutogradNode>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->is_leaf = true;
  node->op_name = "parameter";
  return Variable(std::move(node));
}

Variable Variable::Constant(Tensor value) {
  auto node = std::make_shared<internal::AutogradNode>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->is_leaf = true;
  node->op_name = "constant";
  return Variable(std::move(node));
}

Variable Variable::FromOp(
    Tensor value, std::vector<Variable> inputs,
    std::function<void(internal::AutogradNode&)> backward_fn,
    const char* op_name) {
  auto node = std::make_shared<internal::AutogradNode>();
  node->value = std::move(value);
  node->op_name = op_name;
  node->is_leaf = false;
  bool any_grad = false;
  for (const Variable& input : inputs) {
    VGOD_CHECK(input.defined()) << "undefined input to op " << op_name;
    any_grad = any_grad || input.requires_grad();
  }
  if (any_grad && NoGradGuard::GradEnabled()) {
    node->requires_grad = true;
    node->inputs.reserve(inputs.size());
    for (const Variable& input : inputs) node->inputs.push_back(input.shared_node());
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(node));
}

Tensor& Variable::grad() {
  VGOD_CHECK(defined());
  if (!node_->grad.defined()) {
    node_->grad = Tensor::Zeros(node_->value.rows(), node_->value.cols());
  }
  return node_->grad;
}

void Variable::ZeroGrad() {
  if (node_ && node_->grad.defined()) node_->grad.Fill(0.0f);
}

void Variable::SetValue(const Tensor& value) {
  VGOD_CHECK(defined());
  node_->value.CopyFrom(value);
}

namespace {

// Iterative post-order DFS producing a topological order (inputs before
// consumers). Recursion would overflow the stack on deep graphs
// (hundreds of training epochs chain thousands of nodes in tests).
void TopologicalOrder(internal::AutogradNode* root,
                      std::vector<internal::AutogradNode*>* order) {
  std::unordered_set<internal::AutogradNode*> visited;
  std::vector<std::pair<internal::AutogradNode*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->inputs.size()) {
      internal::AutogradNode* child = node->inputs[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() const {
  VGOD_CHECK(defined());
  VGOD_CHECK(node_->value.IsScalar())
      << "Backward() requires a scalar loss, got "
      << node_->value.ShapeString();
  VGOD_CHECK(node_->requires_grad)
      << "Backward() on a graph with no trainable parameters";

  std::vector<internal::AutogradNode*> order;
  TopologicalOrder(node_.get(), &order);

  node_->AccumulateGrad(Tensor::Ones(1, 1));
  // Reverse topological order: every node's grad is complete before its
  // backward_fn pushes it into the inputs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::AutogradNode* node = *it;
    if (node->backward_fn && node->grad.defined()) {
      node->backward_fn(*node);
    }
  }
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace vgod
