#ifndef VGOD_TENSOR_AUTOGRAD_H_
#define VGOD_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vgod {

namespace internal {

/// One node in the dynamic autograd tape. Holds the forward value, the
/// (lazily allocated) gradient buffer, the input nodes, and a closure that
/// propagates this node's gradient into its inputs.
struct AutogradNode {
  Tensor value;
  Tensor grad;  // Undefined until first accumulation; same shape as value.
  bool requires_grad = false;
  bool is_leaf = true;
  std::vector<std::shared_ptr<AutogradNode>> inputs;
  /// Reads `self.grad` and accumulates into each input's grad. Null for
  /// leaves and constants.
  std::function<void(AutogradNode& self)> backward_fn;
  const char* op_name = "leaf";

  /// Accumulates `g` into this node's gradient buffer (allocating it first
  /// if needed). No-op when requires_grad is false.
  void AccumulateGrad(const Tensor& g);
};

}  // namespace internal

/// A handle to a node in the autograd graph. Cheap to copy. Building blocks
/// live in tensor/functional.h (elementwise/matrix ops) and
/// gnn/graph_ops.h (message-passing ops).
class Variable {
 public:
  /// An undefined variable (no node).
  Variable() = default;

  /// Trainable leaf: participates in gradients.
  static Variable Parameter(Tensor value);

  /// Non-trainable leaf: gradient never computed.
  static Variable Constant(Tensor value);

  /// Interior node produced by an op. `backward_fn` must accumulate into the
  /// inputs' gradients using AccumulateGrad.
  static Variable FromOp(Tensor value,
                         std::vector<Variable> inputs,
                         std::function<void(internal::AutogradNode&)> backward_fn,
                         const char* op_name);

  bool defined() const { return node_ != nullptr; }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  const Tensor& value() const {
    VGOD_CHECK(defined());
    return node_->value;
  }

  /// Gradient buffer. Allocated (zero-filled) on first access.
  Tensor& grad();

  /// True if a gradient has been accumulated since the last ZeroGrad().
  bool has_grad() const { return node_ && node_->grad.defined(); }

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Clears the gradient buffer (keeps the allocation).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar, 1 x 1) variable.
  /// Gradients accumulate into every reachable parameter's grad buffer.
  void Backward() const;

  /// Replaces the stored value in place (used by optimizers). Shape must
  /// match. Only meaningful on leaves.
  void SetValue(const Tensor& value);

  internal::AutogradNode* node() const { return node_.get(); }
  std::shared_ptr<internal::AutogradNode> shared_node() const { return node_; }

 private:
  explicit Variable(std::shared_ptr<internal::AutogradNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::AutogradNode> node_;
};

/// While alive, ops built through Variable::FromOp produce constants (no
/// backward closures, no graph growth). Used during inference/scoring.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace vgod

#endif  // VGOD_TENSOR_AUTOGRAD_H_
