#include "tensor/functional.h"

#include <cmath>
#include <utility>

#include "tensor/kernels.h"

namespace vgod::ag {

namespace k = ::vgod::kernels;
using ::vgod::internal::AutogradNode;

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = k::MatMul(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return Variable::FromOp(
      std::move(out), {a, b},
      [av, bv](AutogradNode& self) {
        if (self.inputs[0]->requires_grad) {
          self.inputs[0]->AccumulateGrad(k::MatMulNT(self.grad, bv));
        }
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::MatMulTN(av, self.grad));
        }
      },
      "MatMul");
}

Variable MatMulNT(const Variable& a, const Variable& b) {
  Tensor out = k::MatMulNT(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return Variable::FromOp(
      std::move(out), {a, b},
      [av, bv](AutogradNode& self) {
        // C = A B^T: dA = G B, dB = G^T A.
        if (self.inputs[0]->requires_grad) {
          self.inputs[0]->AccumulateGrad(k::MatMul(self.grad, bv));
        }
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::MatMulTN(self.grad, av));
        }
      },
      "MatMulNT");
}

Variable Add(const Variable& a, const Variable& b) {
  return Variable::FromOp(
      k::Add(a.value(), b.value()), {a, b},
      [](AutogradNode& self) {
        self.inputs[0]->AccumulateGrad(self.grad);
        self.inputs[1]->AccumulateGrad(self.grad);
      },
      "Add");
}

Variable Sub(const Variable& a, const Variable& b) {
  return Variable::FromOp(
      k::Sub(a.value(), b.value()), {a, b},
      [](AutogradNode& self) {
        self.inputs[0]->AccumulateGrad(self.grad);
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::Scale(self.grad, -1.0f));
        }
      },
      "Sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor av = a.value();
  Tensor bv = b.value();
  return Variable::FromOp(
      k::Mul(av, bv), {a, b},
      [av, bv](AutogradNode& self) {
        if (self.inputs[0]->requires_grad) {
          self.inputs[0]->AccumulateGrad(k::Mul(self.grad, bv));
        }
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::Mul(self.grad, av));
        }
      },
      "Mul");
}

Variable Scale(const Variable& a, float s) {
  return Variable::FromOp(
      k::Scale(a.value(), s), {a},
      [s](AutogradNode& self) {
        self.inputs[0]->AccumulateGrad(k::Scale(self.grad, s));
      },
      "Scale");
}

Variable AddRowVector(const Variable& x, const Variable& bias) {
  return Variable::FromOp(
      k::AddRowVector(x.value(), bias.value()), {x, bias},
      [](AutogradNode& self) {
        self.inputs[0]->AccumulateGrad(self.grad);
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::ColSums(self.grad));
        }
      },
      "AddRowVector");
}

Variable MulRowsByColVector(const Variable& x, const Variable& w) {
  VGOD_CHECK_EQ(w.cols(), 1);
  VGOD_CHECK_EQ(w.rows(), x.rows());
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  Tensor out(xv.rows(), xv.cols());
  for (int i = 0; i < xv.rows(); ++i) {
    const float wi = wv.At(i, 0);
    const size_t base = static_cast<size_t>(i) * xv.cols();
    for (int j = 0; j < xv.cols(); ++j) {
      out.data()[base + j] = xv.data()[base + j] * wi;
    }
  }
  Tensor xc = xv;
  Tensor wc = wv;
  return Variable::FromOp(
      std::move(out), {x, w},
      [xc, wc](AutogradNode& self) {
        const Tensor& g = self.grad;
        if (self.inputs[0]->requires_grad) {
          Tensor gx(xc.rows(), xc.cols());
          for (int i = 0; i < xc.rows(); ++i) {
            const float wi = wc.At(i, 0);
            const size_t base = static_cast<size_t>(i) * xc.cols();
            for (int j = 0; j < xc.cols(); ++j) {
              gx.data()[base + j] = g.data()[base + j] * wi;
            }
          }
          self.inputs[0]->AccumulateGrad(gx);
        }
        if (self.inputs[1]->requires_grad) {
          self.inputs[1]->AccumulateGrad(k::RowSums(k::Mul(g, xc)));
        }
      },
      "MulRowsByColVector");
}

Variable Sqrt(const Variable& x, float eps) {
  const Tensor& xv = x.value();
  Tensor y(xv.rows(), xv.cols());
  for (int64_t i = 0; i < xv.size(); ++i) {
    y.data()[i] = std::sqrt(std::max(0.0f, xv.data()[i]) + eps);
  }
  return Variable::FromOp(
      y, {x},
      [y](AutogradNode& self) {
        Tensor gx(y.rows(), y.cols());
        for (int64_t i = 0; i < y.size(); ++i) {
          gx.data()[i] = self.grad.data()[i] * 0.5f / y.data()[i];
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "Sqrt");
}

Variable Relu(const Variable& x) {
  Tensor xv = x.value();
  return Variable::FromOp(
      k::Relu(xv), {x},
      [xv](AutogradNode& self) {
        Tensor gx(xv.rows(), xv.cols());
        const int64_t n = xv.size();
        for (int64_t i = 0; i < n; ++i) {
          gx.data()[i] = xv.data()[i] > 0.0f ? self.grad.data()[i] : 0.0f;
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "Relu");
}

Variable LeakyRelu(const Variable& x, float negative_slope) {
  Tensor xv = x.value();
  return Variable::FromOp(
      k::LeakyRelu(xv, negative_slope), {x},
      [xv, negative_slope](AutogradNode& self) {
        Tensor gx(xv.rows(), xv.cols());
        const int64_t n = xv.size();
        for (int64_t i = 0; i < n; ++i) {
          const float slope = xv.data()[i] > 0.0f ? 1.0f : negative_slope;
          gx.data()[i] = slope * self.grad.data()[i];
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "LeakyRelu");
}

Variable Sigmoid(const Variable& x) {
  Tensor y = k::Sigmoid(x.value());
  return Variable::FromOp(
      y, {x},
      [y](AutogradNode& self) {
        Tensor gx(y.rows(), y.cols());
        const int64_t n = y.size();
        for (int64_t i = 0; i < n; ++i) {
          const float s = y.data()[i];
          gx.data()[i] = self.grad.data()[i] * s * (1.0f - s);
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "Sigmoid");
}

Variable Tanh(const Variable& x) {
  Tensor y = k::Tanh(x.value());
  return Variable::FromOp(
      y, {x},
      [y](AutogradNode& self) {
        Tensor gx(y.rows(), y.cols());
        const int64_t n = y.size();
        for (int64_t i = 0; i < n; ++i) {
          const float t = y.data()[i];
          gx.data()[i] = self.grad.data()[i] * (1.0f - t * t);
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "Tanh");
}

Variable Square(const Variable& x) {
  Tensor xv = x.value();
  return Variable::FromOp(
      k::Square(xv), {x},
      [xv](AutogradNode& self) {
        Tensor gx(xv.rows(), xv.cols());
        const int64_t n = xv.size();
        for (int64_t i = 0; i < n; ++i) {
          gx.data()[i] = 2.0f * xv.data()[i] * self.grad.data()[i];
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "Square");
}

Variable RowL2Normalize(const Variable& x, float eps) {
  Tensor xv = x.value();
  Tensor norms = k::RowNorms(xv);
  Tensor y = k::RowL2Normalize(xv, eps);
  return Variable::FromOp(
      y, {x},
      [y, norms, eps](AutogradNode& self) {
        // y = x / n where n = max(||x||, eps). For n > eps:
        // dL/dx = (g - y (y . g)) / n; otherwise the map is linear: g / eps.
        const Tensor& g = self.grad;
        Tensor gx(y.rows(), y.cols());
        for (int i = 0; i < y.rows(); ++i) {
          const float norm = norms.At(i, 0);
          const size_t base = static_cast<size_t>(i) * y.cols();
          if (norm <= eps) {
            for (int j = 0; j < y.cols(); ++j) {
              gx.data()[base + j] = g.data()[base + j] / eps;
            }
            continue;
          }
          double dot = 0.0;
          for (int j = 0; j < y.cols(); ++j) {
            dot += static_cast<double>(y.data()[base + j]) * g.data()[base + j];
          }
          for (int j = 0; j < y.cols(); ++j) {
            gx.data()[base + j] = static_cast<float>(
                (g.data()[base + j] - y.data()[base + j] * dot) / norm);
          }
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "RowL2Normalize");
}

Variable SumAll(const Variable& x) {
  const int rows = x.rows(), cols = x.cols();
  return Variable::FromOp(
      k::SumAll(x.value()), {x},
      [rows, cols](AutogradNode& self) {
        const float g = self.grad.ScalarValue();
        self.inputs[0]->AccumulateGrad(Tensor::Full(rows, cols, g));
      },
      "SumAll");
}

Variable MeanAll(const Variable& x) {
  const int rows = x.rows(), cols = x.cols();
  const float inv = 1.0f / static_cast<float>(x.value().size());
  Tensor out = k::SumAll(x.value());
  out.SetAt(0, 0, out.ScalarValue() * inv);
  return Variable::FromOp(
      std::move(out), {x},
      [rows, cols, inv](AutogradNode& self) {
        const float g = self.grad.ScalarValue() * inv;
        self.inputs[0]->AccumulateGrad(Tensor::Full(rows, cols, g));
      },
      "MeanAll");
}

Variable RowSums(const Variable& x) {
  const int rows = x.rows(), cols = x.cols();
  return Variable::FromOp(
      k::RowSums(x.value()), {x},
      [rows, cols](AutogradNode& self) {
        Tensor gx(rows, cols);
        for (int i = 0; i < rows; ++i) {
          const float g = self.grad.At(i, 0);
          const size_t base = static_cast<size_t>(i) * cols;
          for (int j = 0; j < cols; ++j) gx.data()[base + j] = g;
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "RowSums");
}

Variable RowSquaredDistance(const Variable& a, const Variable& b) {
  Tensor av = a.value();
  Tensor bv = b.value();
  return Variable::FromOp(
      k::RowSquaredDistance(av, bv), {a, b},
      [av, bv](AutogradNode& self) {
        // out_i = sum_j (a_ij - b_ij)^2 -> d/da_ij = 2 (a_ij - b_ij) g_i.
        const Tensor& g = self.grad;
        const bool need_a = self.inputs[0]->requires_grad;
        const bool need_b = self.inputs[1]->requires_grad;
        Tensor ga = need_a ? Tensor(av.rows(), av.cols()) : Tensor();
        Tensor gb = need_b ? Tensor(av.rows(), av.cols()) : Tensor();
        for (int i = 0; i < av.rows(); ++i) {
          const float gi = g.At(i, 0);
          const size_t base = static_cast<size_t>(i) * av.cols();
          for (int j = 0; j < av.cols(); ++j) {
            const float d =
                2.0f * (av.data()[base + j] - bv.data()[base + j]) * gi;
            if (need_a) ga.data()[base + j] = d;
            if (need_b) gb.data()[base + j] = -d;
          }
        }
        if (need_a) self.inputs[0]->AccumulateGrad(ga);
        if (need_b) self.inputs[1]->AccumulateGrad(gb);
      },
      "RowSquaredDistance");
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Square(Sub(pred, target)));
}

Variable GatherRows(const Variable& x, std::vector<int> indices) {
  const Tensor& xv = x.value();
  const int cols = xv.cols();
  Tensor out(static_cast<int>(indices.size()), cols);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int row = indices[i];
    VGOD_CHECK(row >= 0 && row < xv.rows());
    const float* src = xv.data() + static_cast<size_t>(row) * cols;
    float* dst = out.data() + i * cols;
    std::copy(src, src + cols, dst);
  }
  const int src_rows = xv.rows();
  return Variable::FromOp(
      std::move(out), {x},
      [indices = std::move(indices), src_rows, cols](AutogradNode& self) {
        Tensor gx = Tensor::Zeros(src_rows, cols);
        for (size_t i = 0; i < indices.size(); ++i) {
          const float* g = self.grad.data() + i * cols;
          float* dst = gx.data() + static_cast<size_t>(indices[i]) * cols;
          for (int j = 0; j < cols; ++j) dst[j] += g[j];
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "GatherRows");
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  VGOD_CHECK(!parts.empty());
  const int rows = parts[0].rows();
  int total_cols = 0;
  std::vector<int> offsets;
  offsets.reserve(parts.size());
  for (const Variable& part : parts) {
    VGOD_CHECK_EQ(part.rows(), rows);
    offsets.push_back(total_cols);
    total_cols += part.cols();
  }
  Tensor out(rows, total_cols);
  for (size_t p = 0; p < parts.size(); ++p) {
    const Tensor& pv = parts[p].value();
    for (int i = 0; i < rows; ++i) {
      const float* src = pv.data() + static_cast<size_t>(i) * pv.cols();
      float* dst =
          out.data() + static_cast<size_t>(i) * total_cols + offsets[p];
      std::copy(src, src + pv.cols(), dst);
    }
  }
  std::vector<int> widths;
  widths.reserve(parts.size());
  for (const Variable& part : parts) widths.push_back(part.cols());
  return Variable::FromOp(
      std::move(out), parts,
      [offsets, widths, rows, total_cols](AutogradNode& self) {
        for (size_t p = 0; p < self.inputs.size(); ++p) {
          if (!self.inputs[p]->requires_grad) continue;
          Tensor gp(rows, widths[p]);
          for (int i = 0; i < rows; ++i) {
            const float* src = self.grad.data() +
                               static_cast<size_t>(i) * total_cols +
                               offsets[p];
            float* dst = gp.data() + static_cast<size_t>(i) * widths[p];
            std::copy(src, src + widths[p], dst);
          }
          self.inputs[p]->AccumulateGrad(gp);
        }
      },
      "ConcatCols");
}

Variable SegmentMeanRows(const Variable& x, std::vector<int> offsets) {
  VGOD_CHECK_GE(offsets.size(), 2u);
  VGOD_CHECK_EQ(offsets.front(), 0);
  VGOD_CHECK_EQ(offsets.back(), x.rows());
  const int groups = static_cast<int>(offsets.size()) - 1;
  const int cols = x.cols();
  const Tensor& xv = x.value();
  Tensor out = Tensor::Zeros(groups, cols);
  for (int g = 0; g < groups; ++g) {
    const int begin = offsets[g], end = offsets[g + 1];
    VGOD_CHECK_LE(begin, end);
    if (begin == end) continue;
    float* orow = out.data() + static_cast<size_t>(g) * cols;
    for (int r = begin; r < end; ++r) {
      const float* xrow = xv.data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) orow[c] += xrow[c];
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (int c = 0; c < cols; ++c) orow[c] *= inv;
  }
  const int rows = x.rows();
  return Variable::FromOp(
      std::move(out), {x},
      [offsets = std::move(offsets), rows, cols](AutogradNode& self) {
        Tensor gx = Tensor::Zeros(rows, cols);
        const int num_groups = static_cast<int>(offsets.size()) - 1;
        for (int g = 0; g < num_groups; ++g) {
          const int begin = offsets[g], end = offsets[g + 1];
          if (begin == end) continue;
          const float inv = 1.0f / static_cast<float>(end - begin);
          const float* grow = self.grad.data() + static_cast<size_t>(g) * cols;
          for (int r = begin; r < end; ++r) {
            float* xrow = gx.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) xrow[c] += inv * grow[c];
          }
        }
        self.inputs[0]->AccumulateGrad(gx);
      },
      "SegmentMeanRows");
}

Variable BceWithLogits(const Variable& logits, const Tensor& targets) {
  const Tensor& z = logits.value();
  VGOD_CHECK(z.SameShape(targets));
  // Stable form: max(z, 0) - z*y + log(1 + exp(-|z|)).
  double total = 0.0;
  for (int64_t i = 0; i < z.size(); ++i) {
    const double zi = z.data()[i];
    const double yi = targets.data()[i];
    total += std::max(zi, 0.0) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
  }
  const float inv = 1.0f / static_cast<float>(z.size());
  Tensor out = Tensor::Scalar(static_cast<float>(total) * inv);
  Tensor zc = z;
  Tensor yc = targets;
  return Variable::FromOp(
      std::move(out), {logits},
      [zc, yc, inv](AutogradNode& self) {
        const float g = self.grad.ScalarValue() * inv;
        Tensor gz(zc.rows(), zc.cols());
        const Tensor sig = k::Sigmoid(zc);
        for (int64_t i = 0; i < zc.size(); ++i) {
          gz.data()[i] = g * (sig.data()[i] - yc.data()[i]);
        }
        self.inputs[0]->AccumulateGrad(gz);
      },
      "BceWithLogits");
}

}  // namespace vgod::ag
