#ifndef VGOD_TENSOR_FUNCTIONAL_H_
#define VGOD_TENSOR_FUNCTIONAL_H_

#include <vector>

#include "tensor/autograd.h"

namespace vgod::ag {

// Differentiable operations on Variables. Each op computes its forward value
// through tensor/kernels.h and registers an analytic backward closure. All
// ops are verified by finite-difference gradcheck in tests/tensor.

/// C = A * B.
Variable MatMul(const Variable& a, const Variable& b);

/// C = A * B^T (used by structure decoders reconstructing sigma(Z Z^T)).
Variable MatMulNT(const Variable& a, const Variable& b);

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Scale(const Variable& a, float s);

/// x + bias where bias is a 1 x cols row vector broadcast over rows.
Variable AddRowVector(const Variable& x, const Variable& bias);

/// Rows of x scaled elementwise by the n x 1 column vector w:
/// out[i][j] = x[i][j] * w[i][0].
Variable MulRowsByColVector(const Variable& x, const Variable& w);

Variable Relu(const Variable& x);

/// Elementwise sqrt(x + eps); the eps keeps the gradient finite at zero
/// (used by the L2,1-norm penalties of the non-deep baselines).
Variable Sqrt(const Variable& x, float eps = 1e-8f);
Variable LeakyRelu(const Variable& x, float negative_slope);
Variable Sigmoid(const Variable& x);
Variable Tanh(const Variable& x);
Variable Square(const Variable& x);

/// Each row divided by max(||row||_2, eps) (paper Eq. 6 normalization).
Variable RowL2Normalize(const Variable& x, float eps = 1e-12f);

/// Scalar sum of all entries.
Variable SumAll(const Variable& x);

/// Scalar mean of all entries.
Variable MeanAll(const Variable& x);

/// n x 1 vector of row sums.
Variable RowSums(const Variable& x);

/// n x 1 vector: out[i] = ||a_i - b_i||_2^2 (paper Eq. 17 per-node
/// reconstruction error).
Variable RowSquaredDistance(const Variable& a, const Variable& b);

/// Scalar mean squared error between same-shaped tensors.
Variable MseLoss(const Variable& pred, const Variable& target);

/// Selects rows of x by index; out.rows() == indices.size(). Backward
/// scatter-adds. Duplicate indices accumulate.
Variable GatherRows(const Variable& x, std::vector<int> indices);

/// Horizontal concatenation (same row count); used for multi-head GAT.
Variable ConcatCols(const std::vector<Variable>& parts);

/// Mean over contiguous row groups: group g covers rows
/// [offsets[g], offsets[g+1]); out.rows() == offsets.size() - 1. Empty
/// groups yield zero rows. Used as the subgraph readout of the CoLA
/// baseline.
Variable SegmentMeanRows(const Variable& x, std::vector<int> offsets);

/// Scalar mean binary cross-entropy between `logits` (any shape) and
/// constant 0/1 `targets` (same shape), computed in the numerically stable
/// log-sum-exp form. Backward: (sigmoid(z) - y) / size.
Variable BceWithLogits(const Variable& logits, const Tensor& targets);

}  // namespace vgod::ag

#endif  // VGOD_TENSOR_FUNCTIONAL_H_
