#include "tensor/gradcheck.h"

#include <cmath>
#include <sstream>

namespace vgod {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& loss_fn,
    std::vector<Variable> params, double epsilon, double tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Variable& p : params) p.ZeroGrad();
  Variable loss = loss_fn(params);
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Variable& p : params) analytic.push_back(p.grad().Clone());

  // Numeric pass: central differences on every parameter entry.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = const_cast<Tensor&>(params[pi].value());
    for (int64_t j = 0; j < value.size(); ++j) {
      const float original = value.data()[j];

      value.data()[j] = original + static_cast<float>(epsilon);
      const double loss_plus =
          static_cast<double>(loss_fn(params).value().ScalarValue());
      value.data()[j] = original - static_cast<float>(epsilon);
      const double loss_minus =
          static_cast<double>(loss_fn(params).value().ScalarValue());
      value.data()[j] = original;

      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double got = analytic[pi].data()[j];
      const double denom = std::max(1.0, std::fabs(numeric));
      const double rel = std::fabs(got - numeric) / denom;
      if (rel > result.max_relative_error) {
        result.max_relative_error = rel;
        if (rel > tolerance && result.ok) {
          result.ok = false;
          std::ostringstream out;
          out << "param " << pi << " entry " << j << ": analytic " << got
              << " vs numeric " << numeric << " (rel err " << rel << ")";
          result.detail = out.str();
        }
      }
    }
  }
  return result;
}

}  // namespace vgod
