#ifndef VGOD_TENSOR_GRADCHECK_H_
#define VGOD_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/autograd.h"

namespace vgod {

struct GradCheckResult {
  bool ok = true;
  /// Largest |analytic - numeric| / max(1, |numeric|) over all entries.
  double max_relative_error = 0.0;
  /// Description of the first failing entry, for test diagnostics.
  std::string detail;
};

/// Verifies analytic gradients by central finite differences.
///
/// `loss_fn` must build a scalar loss from `params` (same Variables each
/// call; their values are perturbed in place between evaluations). Every op
/// in the library is exercised through this in tests/tensor — any backward
/// bug trips here before it can corrupt a training run.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& loss_fn,
    std::vector<Variable> params, double epsilon = 1e-3,
    double tolerance = 5e-2);

}  // namespace vgod

#endif  // VGOD_TENSOR_GRADCHECK_H_
