#include "tensor/init.h"

#include <cmath>

namespace vgod::init {

Tensor XavierUniform(int fan_in, int fan_out, Rng* rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform(fan_in, fan_out, -bound, bound, rng);
}

Tensor XavierNormal(int fan_in, int fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomNormal(fan_in, fan_out, 0.0f, stddev, rng);
}

Tensor KaimingUniform(int fan_in, int fan_out, Rng* rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  return Tensor::RandomUniform(fan_in, fan_out, -bound, bound, rng);
}

}  // namespace vgod::init
