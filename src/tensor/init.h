#ifndef VGOD_TENSOR_INIT_H_
#define VGOD_TENSOR_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace vgod::init {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// The default initializer for every weight matrix in this library.
Tensor XavierUniform(int fan_in, int fan_out, Rng* rng);

/// Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out)).
Tensor XavierNormal(int fan_in, int fan_out, Rng* rng);

/// Kaiming/He uniform for ReLU networks: U(-a, a), a = sqrt(6 / fan_in).
Tensor KaimingUniform(int fan_in, int fan_out, Rng* rng);

}  // namespace vgod::init

#endif  // VGOD_TENSOR_INIT_H_
