#include "tensor/kernels.h"

#include <cmath>
#include <cstring>

#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace vgod::kernels {
namespace {

// Parallelization here is row-parallel (or flat-index-parallel for
// elementwise ops): every output element is produced by exactly one
// ParallelFor chunk running the same serial inner loop as the
// single-threaded kernel, so outputs are bit-identical across thread
// counts (docs/PARALLELISM.md). Scalar reductions (SumAll & friends) stay
// serial: splitting their single double accumulator would change the
// float summation order.

/// Minimum flat elements per elementwise chunk — below this the dispatch
/// overhead beats the memory-bound loop.
constexpr int64_t kElementGrain = 1 << 14;

/// Row grain so one chunk covers at least ~kElementGrain scalar ops for a
/// per-row cost of `row_work`. Pure function of the shape, so the chunk
/// decomposition never depends on runtime load.
int64_t RowGrain(int64_t row_work) {
  return std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, row_work));
}

/// Op-level accounting for the dense matmul family (the library's hot
/// kernels): flop/byte estimates shared across the three variants; each
/// variant also bumps its own call counter at the call site. A few
/// relaxed atomic adds per *call* (not per element), so the overhead is
/// unmeasurable next to the O(mnk) loop itself.
void CountMatMulWork(int64_t m, int64_t n, int64_t k) {
  VGOD_COUNTER_ADD("tensor.matmul.flops", 2 * m * n * k);
  const int64_t bytes =
      (m * k + k * n + m * n) * static_cast<int64_t>(sizeof(float));
  VGOD_COUNTER_ADD("tensor.matmul.bytes", bytes);
  obs::ProfileAddBytes(bytes);
}

// Applies `fn` elementwise into a fresh tensor. `scope` is the profiler
// region name and must be a string literal.
template <typename Fn>
Tensor ElementwiseUnary(const char* scope, const Tensor& a, Fn fn) {
  VGOD_PROFILE_SCOPE(scope);
  obs::ProfileAddBytes(2 * a.size() * static_cast<int64_t>(sizeof(float)));
  Tensor out(a.rows(), a.cols());
  const float* in = a.data();
  float* dst = out.data();
  par::ParallelFor(0, a.size(), kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) dst[i] = fn(in[i]);
                   });
  return out;
}

template <typename Fn>
Tensor ElementwiseBinary(const char* scope, const Tensor& a, const Tensor& b,
                         Fn fn) {
  VGOD_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  VGOD_PROFILE_SCOPE(scope);
  obs::ProfileAddBytes(3 * a.size() * static_cast<int64_t>(sizeof(float)));
  Tensor out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  par::ParallelFor(0, a.size(), kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       dst[i] = fn(pa[i], pb[i]);
                     }
                   });
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  VGOD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  VGOD_PROFILE_SCOPE("kernel/matmul");
  VGOD_COUNTER_INC("tensor.matmul.calls");
  CountMatMulWork(m, n, k);
  Tensor out = Tensor::Zeros(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // i-k-j loop order: the inner j loop is a contiguous saxpy that the
  // compiler auto-vectorizes; this is the hot kernel of the whole library.
  // Row-parallel: each output row is one serial i-iteration, so the split
  // never changes the summation order.
  par::ParallelFor(
      0, m, RowGrain(static_cast<int64_t>(k) * n),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* arow = pa + static_cast<size_t>(i) * k;
          float* crow = pc + static_cast<size_t>(i) * n;
          for (int kk = 0; kk < k; ++kk) {
            const float aval = arow[kk];
            if (aval == 0.0f) continue;  // Attributes are often sparse.
            const float* brow = pb + static_cast<size_t>(kk) * n;
            for (int j = 0; j < n; ++j) crow[j] += aval * brow[j];
          }
        }
      });
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  VGOD_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  VGOD_PROFILE_SCOPE("kernel/matmul_nt");
  VGOD_COUNTER_INC("tensor.matmul_nt.calls");
  CountMatMulWork(m, n, k);
  Tensor out(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  par::ParallelFor(
      0, m, RowGrain(static_cast<int64_t>(k) * n),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* arow = pa + static_cast<size_t>(i) * k;
          float* crow = pc + static_cast<size_t>(i) * n;
          for (int j = 0; j < n; ++j) {
            const float* brow = pb + static_cast<size_t>(j) * k;
            double acc = 0.0;
            for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] = static_cast<float>(acc);
          }
        }
      });
  return out;
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  VGOD_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols(), k = a.rows(), n = b.cols();
  VGOD_PROFILE_SCOPE("kernel/matmul_tn");
  VGOD_COUNTER_INC("tensor.matmul_tn.calls");
  CountMatMulWork(m, n, k);
  Tensor out = Tensor::Zeros(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // Split over output rows (columns of A); kk stays the outer loop inside
  // each chunk, so each C[i][j] accumulates in ascending-kk order exactly
  // as the serial kernel does.
  par::ParallelFor(
      0, m, RowGrain(static_cast<int64_t>(k) * n),
      [&](int64_t lo, int64_t hi) {
        for (int kk = 0; kk < k; ++kk) {
          const float* arow = pa + static_cast<size_t>(kk) * m;
          const float* brow = pb + static_cast<size_t>(kk) * n;
          for (int64_t i = lo; i < hi; ++i) {
            const float aval = arow[i];
            if (aval == 0.0f) continue;
            float* crow = pc + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j) crow[j] += aval * brow[j];
          }
        }
      });
  return out;
}

Tensor Transpose(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/transpose");
  obs::ProfileAddBytes(2 * a.size() * static_cast<int64_t>(sizeof(float)));
  Tensor out(a.cols(), a.rows());
  const float* src = a.data();
  float* dst = out.data();
  const int rows = a.rows(), cols = a.cols();
  par::ParallelFor(0, rows, RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int j = 0; j < cols; ++j) {
        dst[static_cast<size_t>(j) * rows + i] =
            src[static_cast<size_t>(i) * cols + j];
      }
    }
  });
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary("kernel/add", a, b,
                           [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary("kernel/sub", a, b,
                           [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary("kernel/mul", a, b,
                           [](float x, float y) { return x * y; });
}

Tensor Scale(const Tensor& a, float s) {
  return ElementwiseUnary("kernel/scale", a, [s](float x) { return x * s; });
}

Tensor AddRowVector(const Tensor& a, const Tensor& row) {
  VGOD_CHECK_EQ(row.rows(), 1);
  VGOD_CHECK_EQ(row.cols(), a.cols());
  VGOD_PROFILE_SCOPE("kernel/add_row_vector");
  Tensor out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pr = row.data();
  float* dst = out.data();
  const int cols = a.cols();
  par::ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const size_t base = static_cast<size_t>(i) * cols;
      for (int j = 0; j < cols; ++j) dst[base + j] = pa[base + j] + pr[j];
    }
  });
  return out;
}

void AddInPlace(Tensor* dst, const Tensor& src) {
  VGOD_CHECK(dst->SameShape(src));
  VGOD_PROFILE_SCOPE("kernel/add_inplace");
  float* pd = dst->data();
  const float* ps = src.data();
  par::ParallelFor(0, dst->size(), kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) pd[i] += ps[i];
                   });
}

void AxpyInPlace(Tensor* dst, float s, const Tensor& src) {
  VGOD_CHECK(dst->SameShape(src));
  VGOD_PROFILE_SCOPE("kernel/axpy_inplace");
  float* pd = dst->data();
  const float* ps = src.data();
  par::ParallelFor(0, dst->size(), kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) pd[i] += s * ps[i];
                   });
}

void ScaleInPlace(Tensor* dst, float s) {
  VGOD_PROFILE_SCOPE("kernel/scale_inplace");
  float* pd = dst->data();
  par::ParallelFor(0, dst->size(), kElementGrain,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) pd[i] *= s;
                   });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary("kernel/relu", a,
                          [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return ElementwiseUnary(
      "kernel/leaky_relu", a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary("kernel/sigmoid", a, [](float x) {
    // Numerically stable piecewise form.
    if (x >= 0.0f) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary("kernel/tanh", a,
                          [](float x) { return std::tanh(x); });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary("kernel/exp", a,
                          [](float x) { return std::exp(x); });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary("kernel/square", a,
                          [](float x) { return x * x; });
}

Tensor Abs(const Tensor& a) {
  return ElementwiseUnary("kernel/abs", a,
                          [](float x) { return std::fabs(x); });
}

Tensor SumAll(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/sum_all");
  double acc = 0.0;
  const float* p = a.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor RowSums(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/row_sums");
  Tensor out(a.rows(), 1);
  const float* p = a.data();
  float* dst = out.data();
  const int cols = a.cols();
  par::ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      const size_t base = static_cast<size_t>(i) * cols;
      for (int j = 0; j < cols; ++j) acc += p[base + j];
      dst[i] = static_cast<float>(acc);
    }
  });
  return out;
}

Tensor ColSums(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/col_sums");
  Tensor out = Tensor::Zeros(1, a.cols());
  const float* p = a.data();
  float* dst = out.data();
  const int rows = a.rows(), cols = a.cols();
  // Column-parallel: each chunk owns a column range and scans every row,
  // so each dst[j] accumulates in ascending-row order like the serial loop.
  par::ParallelFor(0, cols, RowGrain(rows), [&](int64_t lo, int64_t hi) {
    for (int i = 0; i < rows; ++i) {
      const size_t base = static_cast<size_t>(i) * cols;
      for (int64_t j = lo; j < hi; ++j) dst[j] += p[base + j];
    }
  });
  return out;
}

Tensor RowNorms(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/row_norms");
  Tensor out(a.rows(), 1);
  const float* p = a.data();
  float* dst = out.data();
  const int cols = a.cols();
  par::ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      const size_t base = static_cast<size_t>(i) * cols;
      for (int j = 0; j < cols; ++j) {
        acc += static_cast<double>(p[base + j]) * p[base + j];
      }
      dst[i] = static_cast<float>(std::sqrt(acc));
    }
  });
  return out;
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  VGOD_PROFILE_SCOPE("kernel/row_l2_normalize");
  Tensor out(a.rows(), a.cols());
  const float* p = a.data();
  float* dst = out.data();
  const int cols = a.cols();
  par::ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const size_t base = static_cast<size_t>(i) * cols;
      double acc = 0.0;
      for (int j = 0; j < cols; ++j) {
        acc += static_cast<double>(p[base + j]) * p[base + j];
      }
      const float inv =
          1.0f / std::max(static_cast<float>(std::sqrt(acc)), eps);
      for (int j = 0; j < cols; ++j) dst[base + j] = p[base + j] * inv;
    }
  });
  return out;
}

Tensor RowSquaredDistance(const Tensor& a, const Tensor& b) {
  VGOD_CHECK(a.SameShape(b));
  VGOD_PROFILE_SCOPE("kernel/row_squared_distance");
  Tensor out(a.rows(), 1);
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  const int cols = a.cols();
  par::ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const size_t base = static_cast<size_t>(i) * cols;
      double acc = 0.0;
      for (int j = 0; j < cols; ++j) {
        const double d = static_cast<double>(pa[base + j]) - pb[base + j];
        acc += d * d;
      }
      dst[i] = static_cast<float>(acc);
    }
  });
  return out;
}

double MeanValue(const Tensor& a) {
  VGOD_CHECK_GT(a.size(), 0);
  return SumAll(a).ScalarValue() / static_cast<double>(a.size());
}

double StdValue(const Tensor& a) {
  VGOD_PROFILE_SCOPE("kernel/std_value");
  const double mean = MeanValue(a);
  double acc = 0.0;
  const float* p = a.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    const double d = p[i] - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  VGOD_CHECK(a.SameShape(b));
  VGOD_PROFILE_SCOPE("kernel/max_abs_diff");
  float max_diff = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

}  // namespace vgod::kernels
