#ifndef VGOD_TENSOR_KERNELS_H_
#define VGOD_TENSOR_KERNELS_H_

#include "tensor/tensor.h"

namespace vgod::kernels {

// Raw (non-autograd) math kernels. Each function allocates and returns a
// fresh output tensor unless it is the *InPlace variant. The autograd layer
// (tensor/functional.h) wraps these with backward closures.

/// C = A * B. Requires A.cols() == B.rows().
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T. Requires A.cols() == B.cols().
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// C = A^T * B. Requires A.rows() == B.rows().
Tensor MatMulTN(const Tensor& a, const Tensor& b);

/// Transposed copy of `a`.
Tensor Transpose(const Tensor& a);

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

/// out[i][j] = a[i][j] + row[0][j]. `row` must be 1 x a.cols().
Tensor AddRowVector(const Tensor& a, const Tensor& row);

/// dst += src (same shape).
void AddInPlace(Tensor* dst, const Tensor& src);

/// dst += s * src (same shape).
void AxpyInPlace(Tensor* dst, float s, const Tensor& src);

/// dst *= s.
void ScaleInPlace(Tensor* dst, float s);

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);

/// 1 x 1 tensor with the sum of all entries (accumulated in double).
Tensor SumAll(const Tensor& a);

/// n x 1 tensor of row sums.
Tensor RowSums(const Tensor& a);

/// 1 x c tensor of column sums.
Tensor ColSums(const Tensor& a);

/// n x 1 tensor of row L2 norms.
Tensor RowNorms(const Tensor& a);

/// Each row divided by max(||row||_2, eps).
Tensor RowL2Normalize(const Tensor& a, float eps);

/// n x 1 tensor: out[i] = ||a_i - b_i||_2^2 (squared row differences).
Tensor RowSquaredDistance(const Tensor& a, const Tensor& b);

/// Mean of all entries as a double.
double MeanValue(const Tensor& a);

/// Population standard deviation of all entries as a double.
double StdValue(const Tensor& a);

/// Max absolute entry difference between same-shaped tensors.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace vgod::kernels

#endif  // VGOD_TENSOR_KERNELS_H_
