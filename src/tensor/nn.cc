#include "tensor/nn.h"

#include "tensor/init.h"

namespace vgod::nn {

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Variable& p : Parameters()) total += p.value().size();
  return total;
}

Linear::Linear(int in_features, int out_features, Rng* rng, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Variable::Parameter(
          init::XavierUniform(in_features, out_features, rng))) {
  if (use_bias) {
    bias_ = Variable::Parameter(Tensor::Zeros(1, out_features));
  }
}

Variable Linear::Forward(const Variable& x) const {
  Variable out = ag::MatMul(x, weight_);
  if (bias_.defined()) out = ag::AddRowVector(out, bias_);
  return out;
}

std::vector<Variable> Linear::Parameters() const {
  std::vector<Variable> params = {weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  VGOD_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

std::vector<Variable> Mlp::Parameters() const {
  std::vector<Variable> params;
  for (const Linear& layer : layers_) {
    for (Variable& p : layer.Parameters()) params.push_back(std::move(p));
  }
  return params;
}

}  // namespace vgod::nn
