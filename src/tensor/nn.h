#ifndef VGOD_TENSOR_NN_H_
#define VGOD_TENSOR_NN_H_

#include <vector>

#include "core/rng.h"
#include "tensor/autograd.h"
#include "tensor/functional.h"

namespace vgod::nn {

/// Base for parameterized modules: exposes the trainable Variables so that
/// optimizers and parameter-counting utilities can see them uniformly.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (including submodules).
  virtual std::vector<Variable> Parameters() const = 0;

  /// Total number of trainable scalars.
  int64_t NumParameters() const;
};

/// Affine layer: y = x W + b, with W: in x out Xavier-initialized and b
/// zero-initialized. `use_bias=false` drops b (e.g. before L2 row
/// normalization where a bias would be redundant).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool use_bias = true);

  Variable Forward(const Variable& x) const;

  std::vector<Variable> Parameters() const override;

  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Variable weight_;
  Variable bias_;  // Undefined when use_bias=false.
};

/// Multi-layer perceptron with ReLU between layers (none after the last).
/// `dims` lists layer widths, e.g. {in, hidden, out}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Rng* rng);

  Variable Forward(const Variable& x) const;

  std::vector<Variable> Parameters() const override;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
};

}  // namespace vgod::nn

#endif  // VGOD_TENSOR_NN_H_
