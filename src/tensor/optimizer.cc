#include "tensor/optimizer.h"

#include <cmath>

#include "tensor/kernels.h"

namespace vgod {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    VGOD_CHECK(p.defined() && p.requires_grad())
        << "optimizer given a non-trainable variable";
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

double Optimizer::GradNorm() const {
  double acc = 0.0;
  for (const Variable& p : params_) {
    if (!p.has_grad()) continue;
    Variable& mutable_p = const_cast<Variable&>(p);
    const Tensor& grad = mutable_p.grad();
    const float* g = grad.data();
    const int64_t n = grad.size();
    for (int64_t i = 0; i < n; ++i) {
      acc += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(acc);
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.rows(), p.cols()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor& value = const_cast<Tensor&>(p.value());
    if (momentum_ != 0.0f) {
      kernels::ScaleInPlace(&velocity_[i], momentum_);
      kernels::AddInPlace(&velocity_[i], p.grad());
      kernels::AxpyInPlace(&value, -lr_, velocity_[i]);
    } else {
      kernels::AxpyInPlace(&value, -lr_, p.grad());
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const Variable& p : params_) {
    first_moment_.push_back(Tensor::Zeros(p.rows(), p.cols()));
    second_moment_.push_back(Tensor::Zeros(p.rows(), p.cols()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor& value = const_cast<Tensor&>(p.value());
    float* v = value.data();
    const float* g = p.grad().data();
    float* m = first_moment_[i].data();
    float* s = second_moment_[i].data();
    const int64_t n = value.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (weight_decay_ != 0.0f) grad += weight_decay_ * v[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      s[j] = beta2_ * s[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float s_hat = s[j] / bias2;
      v[j] -= lr_ * m_hat / (std::sqrt(s_hat) + eps_);
    }
  }
}

}  // namespace vgod
