#ifndef VGOD_TENSOR_OPTIMIZER_H_
#define VGOD_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/autograd.h"

namespace vgod {

/// Base class for gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in the
  /// parameters. Parameters whose grad was never touched this step are
  /// skipped.
  virtual void Step() = 0;

  /// Clears all parameter gradients. Call before each backward pass.
  void ZeroGrad();

  /// Global L2 norm of the gradients currently stored in the parameters
  /// (parameters without a grad contribute zero). Read it after
  /// Backward() and before Step()/ZeroGrad() for per-step telemetry.
  double GradNorm() const;

 protected:
  std::vector<Variable> params_;
};

/// SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015). The optimizer used by the paper's experiments.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace vgod

#endif  // VGOD_TENSOR_OPTIMIZER_H_
