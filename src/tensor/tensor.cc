#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/memory.h"

namespace vgod {
namespace {

/// Allocates tensor storage with the observability accounting attached:
/// the deleter reports the release, so obs::LiveTensorBytes() and the
/// per-epoch peak watermark stay exact.
std::shared_ptr<std::vector<float>> MakeStorage(int64_t count) {
  const int64_t bytes = count * static_cast<int64_t>(sizeof(float));
  obs::OnTensorAlloc(bytes);
  return std::shared_ptr<std::vector<float>>(
      new std::vector<float>(static_cast<size_t>(count)),
      [bytes](std::vector<float>* storage) {
        obs::OnTensorFree(bytes);
        delete storage;
      });
}

}  // namespace

Tensor::Tensor(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(MakeStorage(static_cast<int64_t>(rows) * cols)) {
  VGOD_CHECK_GE(rows, 0);
  VGOD_CHECK_GE(cols, 0);
}

Tensor Tensor::Zeros(int rows, int cols) {
  Tensor t(rows, cols);
  t.Fill(0.0f);
  return t;
}

Tensor Tensor::Ones(int rows, int cols) { return Full(rows, cols, 1.0f); }

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values, int rows,
                          int cols) {
  VGOD_CHECK_EQ(static_cast<int64_t>(values.size()),
                static_cast<int64_t>(rows) * cols);
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::RandomUniform(int rows, int cols, float lo, float hi,
                             Rng* rng) {
  Tensor t(rows, cols);
  float* out = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    out[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, float mean, float stddev,
                            Rng* rng) {
  Tensor t(rows, cols);
  float* out = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    out[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Clone() const {
  VGOD_CHECK(defined());
  Tensor t(rows_, cols_);
  std::memcpy(t.data(), data(), static_cast<size_t>(size()) * sizeof(float));
  return t;
}

Tensor Tensor::Reshaped(int rows, int cols) const {
  VGOD_CHECK(defined());
  VGOD_CHECK_EQ(static_cast<int64_t>(rows) * cols, size());
  Tensor t = *this;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

void Tensor::Fill(float value) {
  VGOD_CHECK(defined());
  std::fill(data_->begin(), data_->end(), value);
}

void Tensor::CopyFrom(const Tensor& other) {
  VGOD_CHECK(SameShape(other)) << ShapeString() << " vs "
                               << other.ShapeString();
  std::memcpy(data(), other.data(),
              static_cast<size_t>(size()) * sizeof(float));
}

std::vector<float> Tensor::RowToVector(int row) const {
  VGOD_CHECK(row >= 0 && row < rows_);
  const float* begin = data() + static_cast<size_t>(row) * cols_;
  return std::vector<float>(begin, begin + cols_);
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + size());
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[" << rows_ << " x " << cols_ << "]";
  return out.str();
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << ShapeString() << "\n";
  const int max_dim = 8;
  for (int i = 0; i < std::min(rows_, max_dim); ++i) {
    out << "  ";
    for (int j = 0; j < std::min(cols_, max_dim); ++j) {
      out << At(i, j) << " ";
    }
    if (cols_ > max_dim) out << "...";
    out << "\n";
  }
  if (rows_ > max_dim) out << "  ...\n";
  return out.str();
}

}  // namespace vgod
