#ifndef VGOD_TENSOR_TENSOR_H_
#define VGOD_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace vgod {

/// A dense 2-D row-major float32 matrix. Vectors are represented as n x 1 or
/// 1 x n tensors; scalars as 1 x 1.
///
/// Copying a Tensor is cheap: copies share the underlying storage. The
/// library's convention is that a Tensor's contents are only mutated by the
/// code that allocated it (kernels write into freshly allocated outputs;
/// optimizers mutate the parameter/gradient tensors they own). Use Clone()
/// when an independent copy is needed.
class Tensor {
 public:
  /// An empty (0 x 0) tensor. Distinguishable via defined().
  Tensor() : rows_(0), cols_(0) {}

  /// Uninitialized rows x cols tensor (contents unspecified).
  Tensor(int rows, int cols);

  static Tensor Zeros(int rows, int cols);
  static Tensor Ones(int rows, int cols);
  static Tensor Full(int rows, int cols, float value);
  static Tensor Scalar(float value) { return Full(1, 1, value); }

  /// Builds a tensor from `values` (row-major). Requires
  /// values.size() == rows * cols.
  static Tensor FromVector(const std::vector<float>& values, int rows,
                           int cols);

  /// Entries drawn i.i.d. uniform in [lo, hi).
  static Tensor RandomUniform(int rows, int cols, float lo, float hi,
                              Rng* rng);

  /// Entries drawn i.i.d. normal(mean, stddev).
  static Tensor RandomNormal(int rows, int cols, float mean, float stddev,
                             Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool defined() const { return data_ != nullptr; }
  bool IsScalar() const { return rows_ == 1 && cols_ == 1; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  const float* data() const { return data_->data(); }
  float* data() { return data_->data(); }

  float At(int row, int col) const {
    VGOD_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_)
        << "index (" << row << "," << col << ") out of " << ShapeString();
    return (*data_)[static_cast<size_t>(row) * cols_ + col];
  }
  void SetAt(int row, int col, float value) {
    VGOD_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_)
        << "index (" << row << "," << col << ") out of " << ShapeString();
    (*data_)[static_cast<size_t>(row) * cols_ + col] = value;
  }

  /// Value of a 1 x 1 tensor.
  float ScalarValue() const {
    VGOD_CHECK(IsScalar()) << "not a scalar: " << ShapeString();
    return (*data_)[0];
  }

  /// Deep copy with independent storage.
  Tensor Clone() const;

  /// Same storage viewed with a different shape. Requires equal size().
  Tensor Reshaped(int rows, int cols) const;

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Copies contents from `other` (same shape required) into this storage.
  void CopyFrom(const Tensor& other);

  /// Row `row` copied out as a std::vector (length cols()).
  std::vector<float> RowToVector(int row) const;

  /// All entries copied out row-major.
  std::vector<float> ToVector() const;

  /// e.g. "[3 x 4]".
  std::string ShapeString() const;

  /// Human-readable dump (small tensors only; rows/cols truncated at 8).
  std::string ToString() const;

 private:
  int rows_;
  int cols_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace vgod

#endif  // VGOD_TENSOR_TENSOR_H_
