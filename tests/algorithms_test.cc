#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"
#include "datasets/synthetic.h"
#include "graph/algorithms.h"
#include "graph/graph.h"

namespace vgod {
namespace {

namespace ga = ::vgod::graph_algorithms;

AttributedGraph FromEdges(int n, std::vector<std::pair<int, int>> edges) {
  return std::move(AttributedGraph::FromEdgeList(n, edges, Tensor::Ones(n, 1)))
      .value();
}

TEST(ConnectedComponentsTest, TwoComponentsPlusIsolated) {
  // {0,1,2} triangle, {3,4} edge, {5} isolated.
  AttributedGraph g = FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  std::vector<int> comp = ga::ConnectedComponents(g);
  EXPECT_EQ(ga::NumConnectedComponents(g), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(ConnectedComponentsTest, DenseComponentIdsStartAtZero) {
  AttributedGraph g = FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<int> comp = ga::ConnectedComponents(g);
  EXPECT_EQ(*std::min_element(comp.begin(), comp.end()), 0);
  EXPECT_EQ(*std::max_element(comp.begin(), comp.end()), 1);
}

TEST(TriangleCountsTest, SingleTriangle) {
  AttributedGraph g = FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::vector<int64_t> triangles = ga::TriangleCounts(g);
  EXPECT_EQ(triangles[0], 1);
  EXPECT_EQ(triangles[1], 1);
  EXPECT_EQ(triangles[2], 1);
  EXPECT_EQ(triangles[3], 0);
}

TEST(TriangleCountsTest, CompleteGraphK5) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  }
  AttributedGraph g = FromEdges(5, edges);
  // Each node of K5 is in (4 choose 2) = 6 triangles.
  for (int64_t t : ga::TriangleCounts(g)) EXPECT_EQ(t, 6);
}

TEST(TriangleCountsTest, TreeHasNone) {
  AttributedGraph g = FromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  for (int64_t t : ga::TriangleCounts(g)) EXPECT_EQ(t, 0);
}

TEST(ClusteringTest, LocalCoefficients) {
  // Node 1 has neighbors {0, 2, 3}; only (0,2) connected: C = 1/3.
  AttributedGraph g = FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}});
  std::vector<double> c = ga::LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(c[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);  // Degree 1.
}

TEST(ClusteringTest, GlobalCoefficientCompleteGraphIsOne) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) edges.emplace_back(u, v);
  }
  EXPECT_DOUBLE_EQ(ga::GlobalClusteringCoefficient(FromEdges(6, edges)), 1.0);
}

TEST(ClusteringTest, GlobalCoefficientTreeIsZero) {
  AttributedGraph g = FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_DOUBLE_EQ(ga::GlobalClusteringCoefficient(g), 0.0);
}

TEST(CoreNumbersTest, CliqueWithTail) {
  // K4 on {0..3}, tail 3-4-5.
  AttributedGraph g = FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  std::vector<int> core = ga::CoreNumbers(g);
  EXPECT_EQ(core[0], 3);
  EXPECT_EQ(core[1], 3);
  EXPECT_EQ(core[2], 3);
  EXPECT_EQ(core[3], 3);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(core[5], 1);
}

TEST(CoreNumbersTest, CycleIsTwoCore) {
  AttributedGraph g = FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  for (int c : ga::CoreNumbers(g)) EXPECT_EQ(c, 2);
}

TEST(CoreNumbersTest, IsolatedNodeZeroCore) {
  AttributedGraph g = FromEdges(3, {{0, 1}});
  EXPECT_EQ(ga::CoreNumbers(g)[2], 0);
}

TEST(StructuralFeaturesTest, ShapeAndNormalization) {
  datasets::SyntheticGraphSpec spec;
  spec.num_nodes = 200;
  spec.avg_degree = 6.0;
  spec.attribute_dim = 8;
  Rng rng(5);
  AttributedGraph g = datasets::GeneratePlantedPartition(spec, &rng);
  Tensor features = ga::StructuralFeatureMatrix(g);
  EXPECT_EQ(features.rows(), 200);
  EXPECT_EQ(features.cols(), 5);
  // Columns are z-scored: mean ~0, std ~1.
  for (int c = 0; c < 5; ++c) {
    double mean = 0.0, var = 0.0;
    for (int i = 0; i < 200; ++i) mean += features.At(i, c) / 200;
    for (int i = 0; i < 200; ++i) {
      const double diff = features.At(i, c) - mean;
      var += diff * diff / 200;
    }
    EXPECT_NEAR(mean, 0.0, 1e-4) << "column " << c;
    EXPECT_NEAR(var, 1.0, 1e-3) << "column " << c;
  }
}

TEST(StructuralFeaturesTest, CliqueMembersStandOut) {
  // Sparse background + one injected 8-clique: clique members must have
  // far larger (z-scored) triangle features — the GUIDE signal.
  Rng rng(7);
  std::vector<std::pair<int, int>> edges;
  for (int e = 0; e < 300; ++e) {
    int u = static_cast<int>(rng.UniformInt(200));
    int v = static_cast<int>(rng.UniformInt(200));
    if (u != v) edges.emplace_back(u, v);
  }
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) edges.emplace_back(a, b);
  }
  AttributedGraph g = FromEdges(200, edges);
  Tensor features = graph_algorithms::StructuralFeatureMatrix(g);
  double clique_triangles = 0.0, other_triangles = 0.0;
  for (int i = 0; i < 200; ++i) {
    if (i < 8) {
      clique_triangles += features.At(i, 1) / 8;
    } else {
      other_triangles += features.At(i, 1) / 192;
    }
  }
  EXPECT_GT(clique_triangles, other_triangles + 2.0);
}

}  // namespace
}  // namespace vgod
