// Randomized composition fuzz for the autograd engine: build random chains
// of differentiable ops and verify the full analytic gradient against
// central finite differences. Complements the per-op gradchecks in
// autograd_test.cc by exercising op *interactions* (shared subexpressions,
// shape changes, mixed constants/parameters).
#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "tensor/functional.h"
#include "tensor/gradcheck.h"

namespace vgod {
namespace {

/// Applies a randomly chosen shape-preserving unary op.
Variable RandomUnary(const Variable& x, Rng* rng) {
  switch (rng->UniformInt(6)) {
    case 0:
      return ag::Tanh(x);
    case 1:
      return ag::Sigmoid(x);
    case 2:
      return ag::LeakyRelu(x, 0.1f);
    case 3:
      return ag::Scale(x, static_cast<float>(rng->Uniform(-2.0, 2.0)));
    case 4:
      return ag::Square(ag::Tanh(x));  // Keeps values bounded.
    default:
      return ag::RowL2Normalize(x);
  }
}

/// Applies a randomly chosen binary op on same-shaped inputs.
Variable RandomBinary(const Variable& a, const Variable& b, Rng* rng) {
  switch (rng->UniformInt(3)) {
    case 0:
      return ag::Add(a, b);
    case 1:
      return ag::Sub(a, b);
    default:
      return ag::Mul(ag::Tanh(a), ag::Tanh(b));  // Bounded product.
  }
}

void RunRandomChainGradCheck(uint64_t seed) {
  Rng rng(seed);
  const int rows = 2 + static_cast<int>(rng.UniformInt(4));
  const int cols = 2 + static_cast<int>(rng.UniformInt(4));
  const int inner = 2 + static_cast<int>(rng.UniformInt(4));

  std::vector<Variable> params = {
      Variable::Parameter(Tensor::RandomNormal(rows, inner, 0, 0.8f, &rng)),
      Variable::Parameter(Tensor::RandomNormal(inner, cols, 0, 0.8f, &rng)),
      Variable::Parameter(Tensor::RandomNormal(rows, cols, 0, 0.8f, &rng)),
  };
  // A fixed random program per seed (re-built identically on every call,
  // as CheckGradients re-evaluates the loss).
  const uint64_t program_seed = rng.Next();

  GradCheckResult result = CheckGradients(
      [program_seed](const std::vector<Variable>& p) {
        Rng program(program_seed);
        Variable h = ag::MatMul(p[0], p[1]);  // rows x cols
        h = RandomBinary(h, p[2], &program);
        const int depth = 1 + static_cast<int>(program.UniformInt(4));
        for (int step = 0; step < depth; ++step) {
          h = RandomUnary(h, &program);
          if (program.Bernoulli(0.3)) {
            h = RandomBinary(h, p[2], &program);  // Shared subexpression.
          }
        }
        switch (program.UniformInt(3)) {
          case 0:
            return ag::MeanAll(ag::Square(h));
          case 1:
            return ag::MeanAll(ag::RowSquaredDistance(h, p[2]));
          default:
            return ag::MeanAll(ag::Sqrt(ag::RowSums(ag::Square(h)), 0.05f));
        }
      },
      params, /*epsilon=*/1e-3, /*tolerance=*/8e-2);
  EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.detail
                         << " (max rel err " << result.max_relative_error
                         << ")";
}

class AutogradFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzzTest, RandomChainGradientsMatchNumeric) {
  RunRandomChainGradCheck(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest,
                         ::testing::Range<uint64_t>(100, 140));

// Same programs, evaluated with the vgod::par pool active: the analytic
// gradients must still match finite differences when every kernel inside
// the loss runs multithreaded (docs/PARALLELISM.md).
class AutogradFuzzPoolTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { par::SetNumThreads(4); }
  void TearDown() override { par::SetNumThreads(par::DefaultNumThreads()); }
};

TEST_P(AutogradFuzzPoolTest, RandomChainGradientsMatchNumericUnderPool) {
  RunRandomChainGradCheck(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzPoolTest,
                         ::testing::Range<uint64_t>(100, 116));

}  // namespace
}  // namespace vgod
