#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "tensor/autograd.h"
#include "tensor/functional.h"
#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/kernels.h"
#include "tensor/nn.h"
#include "tensor/optimizer.h"

namespace vgod {
namespace {

Tensor RandomTensor(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandomNormal(rows, cols, 0.0f, 1.0f, &rng);
}

TEST(AutogradTest, ParameterAndConstantFlags) {
  Variable p = Variable::Parameter(Tensor::Ones(2, 2));
  Variable c = Variable::Constant(Tensor::Ones(2, 2));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, BackwardThroughScalarChain) {
  // loss = mean((x * 2)^2), x = [1, 2] -> dloss/dx = 4x / 2.
  Variable x = Variable::Parameter(Tensor::FromVector({1, 2}, 1, 2));
  Variable loss = ag::MeanAll(ag::Square(ag::Scale(x, 2.0f)));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(x.grad().At(0, 1), 8.0f);
}

TEST(AutogradDeathTest, BackwardRequiresScalar) {
  Variable x = Variable::Parameter(Tensor::Ones(2, 2));
  Variable y = ag::Scale(x, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(AutogradTest, GradientAccumulatesAcrossBackwards) {
  Variable x = Variable::Parameter(Tensor::Ones(1, 1));
  ag::SumAll(x).Backward();
  ag::SumAll(x).Backward();
  EXPECT_FLOAT_EQ(x.grad().ScalarValue(), 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().ScalarValue(), 0.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = sum(x + x): gradient of each entry is 2.
  Variable x = Variable::Parameter(Tensor::Ones(2, 2));
  Variable loss = ag::SumAll(ag::Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().At(1, 1), 2.0f);
}

TEST(AutogradTest, NoGradGuardDisablesTape) {
  Variable x = Variable::Parameter(Tensor::Ones(2, 2));
  NoGradGuard guard;
  Variable y = ag::Scale(x, 2.0f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Variable x = Variable::Parameter(Tensor::Ones(1, 1));
  Variable h = x;
  for (int i = 0; i < 20000; ++i) h = ag::Scale(h, 1.0f);
  ag::SumAll(h).Backward();
  EXPECT_FLOAT_EQ(x.grad().ScalarValue(), 1.0f);
}

// --- Gradcheck sweeps over every op ---

using LossBuilder = Variable (*)(const std::vector<Variable>&);

struct OpCase {
  const char* name;
  std::vector<std::pair<int, int>> shapes;  // Parameter shapes.
  LossBuilder build;
};

Variable LossMatMul(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::MatMul(p[0], p[1]));
}
Variable LossMatMulNT(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::MatMulNT(p[0], p[1])));
}
Variable LossAdd(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::Add(p[0], p[1])));
}
Variable LossSub(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::Sub(p[0], p[1])));
}
Variable LossMul(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Mul(p[0], p[1]));
}
Variable LossScale(const std::vector<Variable>& p) {
  return ag::SumAll(ag::Scale(p[0], -1.7f));
}
Variable LossAddRowVector(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::AddRowVector(p[0], p[1])));
}
Variable LossMulRowsByColVector(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::MulRowsByColVector(p[0], p[1])));
}
Variable LossSqrt(const std::vector<Variable>& p) {
  // Square first so inputs to Sqrt are positive and away from the kink.
  return ag::MeanAll(ag::Sqrt(ag::Square(p[0]), 0.1f));
}
Variable LossLeakyRelu(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::LeakyRelu(p[0], 0.2f));
}
Variable LossSigmoid(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::Sigmoid(p[0])));
}
Variable LossTanh(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::Tanh(p[0])));
}
Variable LossRowL2Normalize(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::RowL2Normalize(p[0])));
}
Variable LossRowSums(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::RowSums(p[0])));
}
Variable LossRowSquaredDistance(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::RowSquaredDistance(p[0], p[1]));
}
Variable LossMse(const std::vector<Variable>& p) {
  return ag::MseLoss(p[0], p[1]);
}
Variable LossGatherRows(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::GatherRows(p[0], {2, 0, 2, 1})));
}
Variable LossConcatCols(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::ConcatCols({p[0], p[1]})));
}
Variable LossSegmentMeanRows(const std::vector<Variable>& p) {
  return ag::MeanAll(ag::Square(ag::SegmentMeanRows(p[0], {0, 2, 2, 5, 6})));
}
Variable LossBce(const std::vector<Variable>& p) {
  static const Tensor targets = Tensor::FromVector({1, 0, 1, 0, 1, 0}, 3, 2);
  return ag::BceWithLogits(p[0], targets);
}
Variable LossComposite(const std::vector<Variable>& p) {
  // A small MLP-like composition exercising op interactions.
  Variable h = ag::Tanh(ag::AddRowVector(ag::MatMul(p[0], p[1]), p[2]));
  return ag::MeanAll(ag::Square(h));
}

const OpCase kOpCases[] = {
    {"MatMul", {{3, 4}, {4, 2}}, LossMatMul},
    {"MatMulNT", {{3, 4}, {5, 4}}, LossMatMulNT},
    {"Add", {{3, 3}, {3, 3}}, LossAdd},
    {"Sub", {{3, 3}, {3, 3}}, LossSub},
    {"Mul", {{4, 2}, {4, 2}}, LossMul},
    {"Scale", {{3, 5}}, LossScale},
    {"AddRowVector", {{4, 3}, {1, 3}}, LossAddRowVector},
    {"MulRowsByColVector", {{4, 3}, {4, 1}}, LossMulRowsByColVector},
    {"Sqrt", {{3, 3}}, LossSqrt},
    {"LeakyRelu", {{4, 4}}, LossLeakyRelu},
    {"Sigmoid", {{3, 3}}, LossSigmoid},
    {"Tanh", {{3, 3}}, LossTanh},
    {"RowL2Normalize", {{4, 3}}, LossRowL2Normalize},
    {"RowSums", {{4, 3}}, LossRowSums},
    {"RowSquaredDistance", {{4, 3}, {4, 3}}, LossRowSquaredDistance},
    {"MseLoss", {{3, 4}, {3, 4}}, LossMse},
    {"GatherRows", {{3, 4}}, LossGatherRows},
    {"ConcatCols", {{3, 2}, {3, 4}}, LossConcatCols},
    {"SegmentMeanRows", {{6, 3}}, LossSegmentMeanRows},
    {"BceWithLogits", {{3, 2}}, LossBce},
    {"Composite", {{3, 4}, {4, 2}, {1, 2}}, LossComposite},
};

class OpGradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& op = GetParam();
  std::vector<Variable> params;
  uint64_t seed = 100;
  for (const auto& [rows, cols] : op.shapes) {
    params.push_back(Variable::Parameter(RandomTensor(rows, cols, seed++)));
  }
  GradCheckResult result = CheckGradients(
      [&op](const std::vector<Variable>& p) { return op.build(p); }, params);
  EXPECT_TRUE(result.ok) << op.name << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradCheckTest, ::testing::ValuesIn(kOpCases),
    [](const ::testing::TestParamInfo<OpCase>& param_info) {
      return std::string(param_info.param.name);
    });

// Relu has a kink at 0; gradcheck it away from the kink.
TEST(OpGradCheckSpecialTest, ReluAwayFromKink) {
  Rng rng(9);
  Tensor x(4, 4);
  for (int64_t i = 0; i < x.size(); ++i) {
    float v = static_cast<float>(rng.Normal());
    if (std::fabs(v) < 0.2f) v = std::copysign(0.5f, v);
    x.data()[i] = v;
  }
  std::vector<Variable> params = {Variable::Parameter(x)};
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& p) { return ag::MeanAll(ag::Relu(p[0])); },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- nn modules ---

TEST(NnTest, LinearShapesAndParams) {
  Rng rng(1);
  nn::Linear layer(5, 3, &rng);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  EXPECT_EQ(layer.NumParameters(), 5 * 3 + 3);
  Variable x = Variable::Constant(RandomTensor(7, 5, 2));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 3);
}

TEST(NnTest, LinearWithoutBias) {
  Rng rng(1);
  nn::Linear layer(5, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  // Zero input maps to zero without a bias.
  Variable y = layer.Forward(Variable::Constant(Tensor::Zeros(2, 5)));
  EXPECT_EQ(kernels::SumAll(y.value()).ScalarValue(), 0.0f);
}

TEST(NnTest, MlpGradCheck) {
  Rng rng(4);
  nn::Mlp mlp({3, 4, 2}, &rng);
  std::vector<Variable> params = mlp.Parameters();
  EXPECT_EQ(params.size(), 4u);
  Tensor input = RandomTensor(5, 3, 11);
  GradCheckResult result = CheckGradients(
      [&mlp, &input](const std::vector<Variable>&) {
        return ag::MeanAll(ag::Square(mlp.Forward(Variable::Constant(input))));
      },
      params);
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- init ---

TEST(InitTest, XavierUniformBounds) {
  Rng rng(6);
  Tensor w = init::XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound);
  }
  // Not degenerate.
  EXPECT_GT(kernels::StdValue(w), bound / 4);
}

TEST(InitTest, XavierNormalVariance) {
  Rng rng(6);
  Tensor w = init::XavierNormal(200, 200, &rng);
  EXPECT_NEAR(kernels::StdValue(w), std::sqrt(2.0f / 400.0f), 0.01);
}

// --- Optimizers ---

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Variable x = Variable::Parameter(Tensor::Full(1, 1, 10.0f));
  Sgd optimizer({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    Variable loss = ag::MeanAll(ag::Square(x));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_NEAR(x.value().ScalarValue(), 0.0f, 1e-4f);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  Variable x = Variable::Parameter(Tensor::Full(1, 1, 10.0f));
  Sgd optimizer({x}, 0.05f, 0.9f);
  for (int i = 0; i < 300; ++i) {
    Variable loss = ag::MeanAll(ag::Square(x));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_NEAR(x.value().ScalarValue(), 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamConvergesOnShiftedQuadratic) {
  // Minimize mean((x - 3)^2) elementwise.
  Variable x = Variable::Parameter(Tensor::Zeros(2, 2));
  Variable target = Variable::Constant(Tensor::Full(2, 2, 3.0f));
  Adam optimizer({x}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    Variable loss = ag::MseLoss(x, target);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_NEAR(x.value().At(0, 0), 3.0f, 0.01f);
  EXPECT_NEAR(x.value().At(1, 1), 3.0f, 0.01f);
}

TEST(OptimizerTest, AdamWeightDecayShrinksUnusedDirections) {
  Variable x = Variable::Parameter(Tensor::Full(1, 1, 5.0f));
  Adam optimizer({x}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 200; ++i) {
    // Loss gradient is zero; only decay acts.
    Variable loss = ag::MeanAll(ag::Scale(x, 0.0f));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_LT(std::fabs(x.value().ScalarValue()), 1.0f);
}

TEST(OptimizerTest, StepSkipsParamsWithoutGrad) {
  Variable used = Variable::Parameter(Tensor::Full(1, 1, 1.0f));
  Variable unused = Variable::Parameter(Tensor::Full(1, 1, 1.0f));
  Adam optimizer({used, unused}, 0.1f);
  Variable loss = ag::MeanAll(ag::Square(used));
  optimizer.ZeroGrad();
  loss.Backward();
  optimizer.Step();
  EXPECT_NE(used.value().ScalarValue(), 1.0f);
  EXPECT_FLOAT_EQ(unused.value().ScalarValue(), 1.0f);
}

}  // namespace
}  // namespace vgod
