// End-to-end tests of the vgod_cli tool: generate -> detect -> eval over
// real process invocations. VGOD_CLI_PATH is injected by CMake as the
// built binary's location.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace vgod {
namespace {

std::string CliPath() { return VGOD_CLI_PATH; }

/// Runs a command, returning its exit status; stdout/stderr are captured
/// into `output`.
int RunCommand(const std::string& command, std::string* output) {
  const std::string log = ::testing::TempDir() + "/cli_out.txt";
  const int status =
      std::system((command + " > " + log + " 2>&1").c_str());
  std::ifstream in(log);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *output = buffer.str();
  std::remove(log.c_str());
  return status;
}

TEST(CliTest, GenerateDetectEvalPipeline) {
  const std::string graph = ::testing::TempDir() + "/cli_graph.graph";
  const std::string scores = ::testing::TempDir() + "/cli_scores.tsv";
  std::string out;

  ASSERT_EQ(RunCommand(CliPath() + " generate --dataset=cora --scale=0.1" +
                           " --seed=5 --inject=standard --output=" + graph,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("labeled"), std::string::npos) << out;

  // Deg is training-free -> instant; the pipeline mechanics are the test.
  ASSERT_EQ(RunCommand(CliPath() + " detect --graph=" + graph +
                           " --detector=Deg --top=3 --output=" + scores,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("AUC against stored labels"), std::string::npos) << out;
  EXPECT_NE(out.find("top-3"), std::string::npos) << out;

  ASSERT_EQ(RunCommand(CliPath() + " eval --graph=" + graph +
                           " --scores=" + scores,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("AUC:"), std::string::npos) << out;

  std::remove(graph.c_str());
  std::remove(scores.c_str());
}

TEST(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " frobnicate", &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST(CliTest, UnknownOptionFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " detect --graph=x --bogus=1", &out), 0);
  EXPECT_NE(out.find("unknown option"), std::string::npos) << out;
}

TEST(CliTest, UnknownDatasetFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " generate --dataset=mnist --output=/tmp/x",
                       &out),
            0);
  EXPECT_NE(out.find("NotFound"), std::string::npos) << out;
}

TEST(CliTest, MissingGraphFileFails) {
  std::string out;
  EXPECT_NE(
      RunCommand(CliPath() + " detect --graph=/nonexistent/g.graph", &out),
      0);
  EXPECT_NE(out.find("IoError"), std::string::npos) << out;
}

}  // namespace
}  // namespace vgod
