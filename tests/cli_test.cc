// End-to-end tests of the vgod_cli tool: generate -> detect -> eval over
// real process invocations. VGOD_CLI_PATH is injected by CMake as the
// built binary's location.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace vgod {
namespace {

std::string CliPath() { return VGOD_CLI_PATH; }

/// Runs a command, returning its exit status; stdout/stderr are captured
/// into `output`.
int RunCommand(const std::string& command, std::string* output) {
  const std::string log = ::testing::TempDir() + "/cli_out.txt";
  const int status =
      std::system((command + " > " + log + " 2>&1").c_str());
  std::ifstream in(log);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *output = buffer.str();
  std::remove(log.c_str());
  return status;
}

TEST(CliTest, GenerateDetectEvalPipeline) {
  const std::string graph = ::testing::TempDir() + "/cli_graph.graph";
  const std::string scores = ::testing::TempDir() + "/cli_scores.tsv";
  std::string out;

  ASSERT_EQ(RunCommand(CliPath() + " generate --dataset=cora --scale=0.1" +
                           " --seed=5 --inject=standard --output=" + graph,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("labeled"), std::string::npos) << out;

  // Deg is training-free -> instant; the pipeline mechanics are the test.
  ASSERT_EQ(RunCommand(CliPath() + " detect --graph=" + graph +
                           " --detector=Deg --top=3 --output=" + scores,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("AUC against stored labels"), std::string::npos) << out;
  EXPECT_NE(out.find("top-3"), std::string::npos) << out;

  ASSERT_EQ(RunCommand(CliPath() + " eval --graph=" + graph +
                           " --scores=" + scores,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("AUC:"), std::string::npos) << out;

  std::remove(graph.c_str());
  std::remove(scores.c_str());
}

TEST(CliTest, TelemetryMetricsAndTraceArtifacts) {
  const std::string graph = ::testing::TempDir() + "/cli_obs_graph.graph";
  const std::string telemetry = ::testing::TempDir() + "/cli_obs.jsonl";
  const std::string metrics = ::testing::TempDir() + "/cli_obs_metrics.json";
  const std::string trace = ::testing::TempDir() + "/cli_obs_trace.json";
  std::string out;

  ASSERT_EQ(RunCommand(CliPath() + " generate --dataset=cora --scale=0.05" +
                           " --seed=5 --inject=standard --output=" + graph,
                       &out),
            0)
      << out;
  ASSERT_EQ(RunCommand(CliPath() + " detect --graph=" + graph +
                           " --detector=VBM --epoch-scale=0.05" +
                           " --telemetry_out=" + telemetry +
                           " --metrics_out=" + metrics +
                           " --trace_out=" + trace,
                       &out),
            0)
      << out;
  EXPECT_NE(out.find("epoch records to"), std::string::npos) << out;
  EXPECT_NE(out.find("wrote metrics to"), std::string::npos) << out;
  EXPECT_NE(out.find("trace events to"), std::string::npos) << out;

  // Telemetry: one JSON object per epoch with the expected keys.
  std::ifstream jsonl(telemetry);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  int epochs = 0;
  while (std::getline(jsonl, line)) {
    ++epochs;
    EXPECT_NE(line.find("\"detector\":\"VBM\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"loss\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"grad_norm\":"), std::string::npos) << line;
  }
  EXPECT_GT(epochs, 0);

  // Metrics: the matmul counters must have moved during training.
  std::ifstream metrics_in(metrics);
  ASSERT_TRUE(metrics_in.good());
  std::ostringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  EXPECT_NE(metrics_buf.str().find("tensor.matmul.calls"),
            std::string::npos);
  EXPECT_NE(metrics_buf.str().find("\"counters\""), std::string::npos);

  // Trace: Chrome trace_event envelope with at least the fit span.
  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::ostringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  EXPECT_NE(trace_buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_buf.str().find("VBM/fit"), std::string::npos);
  EXPECT_NE(trace_buf.str().find("\"ph\":\"X\""), std::string::npos);

  std::remove(graph.c_str());
  std::remove(telemetry.c_str());
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " frobnicate", &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST(CliTest, UnknownOptionFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " detect --graph=x --bogus=1", &out), 0);
  EXPECT_NE(out.find("unknown option"), std::string::npos) << out;
}

TEST(CliTest, UnknownDatasetFails) {
  std::string out;
  EXPECT_NE(RunCommand(CliPath() + " generate --dataset=mnist --output=/tmp/x",
                       &out),
            0);
  EXPECT_NE(out.find("NotFound"), std::string::npos) << out;
}

TEST(CliTest, MissingGraphFileFails) {
  std::string out;
  EXPECT_NE(
      RunCommand(CliPath() + " detect --graph=/nonexistent/g.graph", &out),
      0);
  EXPECT_NE(out.find("IoError"), std::string::npos) << out;
}

}  // namespace
}  // namespace vgod
