// Detector conformance suite: every detector reachable through the
// registry — built-ins and future RegisterDetector additions alike — must
// honor the OutlierDetector contract the benchmark matrix, the serving
// layer, and the bundle tooling rely on:
//   * Fit then Score yields one finite score per node (components sized
//     consistently when present);
//   * Score is deterministic: bit-identical on repeat calls and across
//     par::SetNumThreads settings (docs/PARALLELISM.md);
//   * bundle-capable detectors round-trip export -> restore -> Score
//     bit-identically; the rest fail ExportBundle with a Status;
//   * hostile inputs (unknown names, mismatched or truncated bundles)
//     come back as Status errors, never process death.
// The suite iterates RegisteredDetectorNames(), so registering a new
// detector automatically puts it under contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/parallel.h"
#include "core/rng.h"
#include "datasets/synthetic.h"
#include "detectors/registry.h"
#include "injection/injection.h"

namespace vgod {
namespace {

using detectors::DetectorOptions;
using detectors::DetectorOutput;
using detectors::MakeDetector;
using detectors::MakeDetectorFromBundle;
using detectors::ModelBundle;
using detectors::OutlierDetector;

/// One small shared benchmark graph with injected outliers so detector
/// scores carry real signal. Built once: conformance is about contracts,
/// not accuracy, and Fit dominates the suite's runtime.
const AttributedGraph& TestGraph() {
  static const AttributedGraph* graph = [] {
    datasets::SyntheticGraphSpec spec;
    spec.num_nodes = 120;
    spec.num_communities = 4;
    spec.avg_degree = 4.0;
    spec.attribute_dim = 32;
    spec.topic_dims_per_community = 6;
    Rng rng(7);
    AttributedGraph base = datasets::GeneratePlantedPartition(spec, &rng);
    Rng inject_rng(8);
    return new AttributedGraph(
        std::move(injection::InjectStandard(base, 2, 4, 10, &inject_rng))
            .value()
            .graph);
  }();
  return *graph;
}

DetectorOptions SmallOptions() {
  DetectorOptions options;
  options.seed = 7;
  options.epoch_scale = 0.05;  // Contract checks, not accuracy.
  return options;
}

std::unique_ptr<OutlierDetector> FittedDetector(const std::string& name) {
  Result<std::unique_ptr<OutlierDetector>> detector =
      MakeDetector(name, SmallOptions());
  EXPECT_TRUE(detector.ok()) << detector.status().ToString();
  if (!detector.ok()) return nullptr;
  const Status fit = detector.value()->Fit(TestGraph());
  EXPECT_TRUE(fit.ok()) << name << ": " << fit.ToString();
  if (!fit.ok()) return nullptr;
  return std::move(detector).value();
}

class DetectorConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorConformanceTest, FitThenScoreYieldsFiniteScoresPerNode) {
  std::unique_ptr<OutlierDetector> detector = FittedDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  const int n = TestGraph().num_nodes();
  const DetectorOutput out = detector->Score(TestGraph());
  ASSERT_EQ(static_cast<int>(out.score.size()), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(out.score[i])) << "score[" << i << "]";
  }
  if (out.has_components()) {
    ASSERT_EQ(static_cast<int>(out.structural_score.size()), n);
    ASSERT_EQ(static_cast<int>(out.contextual_score.size()), n);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(std::isfinite(out.structural_score[i]));
      EXPECT_TRUE(std::isfinite(out.contextual_score[i]));
    }
  }
}

TEST_P(DetectorConformanceTest, ScoreIsDeterministicAcrossThreadCounts) {
  std::unique_ptr<OutlierDetector> detector = FittedDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  const DetectorOutput first = detector->Score(TestGraph());
  const DetectorOutput repeat = detector->Score(TestGraph());
  EXPECT_EQ(first.score, repeat.score) << "Score not idempotent";
  par::SetNumThreads(8);
  const DetectorOutput threaded = detector->Score(TestGraph());
  par::SetNumThreads(1);
  const DetectorOutput serial = detector->Score(TestGraph());
  EXPECT_EQ(threaded.score, first.score) << "8-thread Score diverged";
  EXPECT_EQ(serial.score, first.score) << "1-thread Score diverged";
  EXPECT_EQ(threaded.structural_score, serial.structural_score);
  EXPECT_EQ(threaded.contextual_score, serial.contextual_score);
}

TEST_P(DetectorConformanceTest, BundleRoundTripOrCleanRefusal) {
  std::unique_ptr<OutlierDetector> detector = FittedDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  Result<ModelBundle> bundle = detector->ExportBundle();
  if (!detector->supports_bundles()) {
    // Non-bundle detectors must refuse with a Status, not die.
    EXPECT_FALSE(bundle.ok()) << GetParam()
                              << " exported despite supports_bundles()=false";
    return;
  }
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  Result<std::unique_ptr<OutlierDetector>> restored =
      MakeDetectorFromBundle(bundle.value(), SmallOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const DetectorOutput original = detector->Score(TestGraph());
  const DetectorOutput roundtrip = restored.value()->Score(TestGraph());
  EXPECT_EQ(original.score, roundtrip.score)
      << GetParam() << ": bundle round-trip changed scores";
}

TEST_P(DetectorConformanceTest, HostileBundlesReturnStatusNotDeath) {
  std::unique_ptr<OutlierDetector> detector = FittedDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  if (!detector->supports_bundles()) return;
  Result<ModelBundle> exported = detector->ExportBundle();
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();

  // Wrong detector name: the registry must refuse to assign the weights.
  ModelBundle wrong_name = exported.value();
  wrong_name.detector = "NoSuchDetector";
  EXPECT_FALSE(MakeDetectorFromBundle(wrong_name, SmallOptions()).ok());

  // Legacy/anonymous bundle (empty name) cannot be routed either.
  ModelBundle anonymous = exported.value();
  anonymous.detector.clear();
  EXPECT_FALSE(MakeDetectorFromBundle(anonymous, SmallOptions()).ok());

  // Truncated parameter list: restore must fail on the count mismatch.
  if (!exported.value().params.empty()) {
    ModelBundle truncated = exported.value();
    truncated.params.pop_back();
    EXPECT_FALSE(detector->RestoreFromBundle(truncated).ok())
        << GetParam() << " accepted a truncated bundle";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredDetectors, DetectorConformanceTest,
    ::testing::ValuesIn(detectors::RegisteredDetectorNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DetectorRegistryConformanceTest, UnknownNameIsStatusNotDeath) {
  EXPECT_FALSE(MakeDetector("NoSuchDetector", SmallOptions()).ok());
  EXPECT_FALSE(MakeDetector("", SmallOptions()).ok());
}

TEST(DetectorRegistryConformanceTest, RegistryListsComparisonDetectors) {
  const std::vector<std::string> names = detectors::RegisteredDetectorNames();
  for (const std::string& name : detectors::ComparisonDetectorNames()) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end())
        << name << " missing from RegisteredDetectorNames()";
  }
}

}  // namespace
}  // namespace vgod
