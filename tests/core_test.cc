#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "core/args.h"
#include "core/check.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/stopwatch.h"

namespace vgod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad graph");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad graph");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad graph");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

Status FailingStep() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  VGOD_RETURN_IF_ERROR(FailingStep());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kInternal);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ VGOD_CHECK(1 == 2) << "unreachable"; }, "check failed");
}

TEST(CheckDeathTest, ComparisonMacrosPrintOperands) {
  EXPECT_DEATH({ VGOD_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.UniformInt(10)]++;
  for (int count : counts) EXPECT_NEAR(count, 5000, 400);
}

TEST(RngDeathTest, UniformIntRejectsNonPositive) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(0), "check failed");
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (int k : {0, 1, 5, 50, 100}) {
    std::vector<int> sample = rng.SampleWithoutReplacement(100, k);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int>(sample.size()), k);
    EXPECT_EQ(unique.size(), sample.size());
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(31);
  std::vector<int> sample = rng.SampleWithoutReplacement(20, 20);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Element 0 should appear in a k-of-n sample with probability k/n.
  Rng rng(37);
  int hits = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> sample = rng.SampleWithoutReplacement(10, 3);
    hits += std::count(sample.begin(), sample.end(), 0) > 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Split();
  // The child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 2);
}

TEST(ArgParserTest, PositionalAndOptions) {
  const char* argv[] = {"tool", "detect", "--graph=g.tsv", "--self-loop",
                        "--seed=42", "--epoch-scale=0.5"};
  Result<ArgParser> args = ArgParser::Parse(6, argv);
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args.value().positional().size(), 1u);
  EXPECT_EQ(args.value().positional()[0], "detect");
  EXPECT_EQ(args.value().GetString("graph", ""), "g.tsv");
  EXPECT_TRUE(args.value().GetBool("self-loop"));
  EXPECT_FALSE(args.value().GetBool("row-normalize"));
  EXPECT_EQ(args.value().GetInt("seed", 0), 42);
  EXPECT_DOUBLE_EQ(args.value().GetDouble("epoch-scale", 1.0), 0.5);
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  const char* argv[] = {"tool"};
  ArgParser args = std::move(ArgParser::Parse(1, argv)).value();
  EXPECT_EQ(args.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(args.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 1.5), 1.5);
}

TEST(ArgParserTest, ValidateRejectsUnknown) {
  const char* argv[] = {"tool", "--graph=x", "--oops=1"};
  ArgParser args = std::move(ArgParser::Parse(3, argv)).value();
  EXPECT_TRUE(args.Validate({"graph", "oops"}).ok());
  EXPECT_FALSE(args.Validate({"graph"}).ok());
}

TEST(ArgParserTest, MalformedOptionRejected) {
  const char* argv[] = {"tool", "--=x"};
  EXPECT_FALSE(ArgParser::Parse(2, argv).ok());
}

TEST(ArgParserTest, BoolValueForms) {
  const char* argv[] = {"tool", "--a", "--b=true", "--c=1", "--d=false"};
  ArgParser args = std::move(ArgParser::Parse(5, argv)).value();
  EXPECT_TRUE(args.GetBool("a"));
  EXPECT_TRUE(args.GetBool("b"));
  EXPECT_TRUE(args.GetBool("c"));
  EXPECT_FALSE(args.GetBool("d"));
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before_reset = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), before_reset + 1.0);
}

double BurnCpu(int iterations) {
  volatile double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  return sink;
}

TEST(StopwatchTest, LapReturnsPerPhaseDeltasThatSumToElapsed) {
  Stopwatch watch;
  BurnCpu(50000);
  const double lap1 = watch.Lap();
  BurnCpu(50000);
  const double lap2 = watch.Lap();
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, lap1 + lap2);
  // The remainder after two laps is the time since the last Lap() only.
  EXPECT_LT(watch.Lap(), elapsed);
}

TEST(StopwatchTest, PausedTimeDoesNotCount) {
  Stopwatch watch;
  BurnCpu(20000);
  watch.Pause();
  EXPECT_TRUE(watch.paused());
  const double frozen = watch.ElapsedSeconds();
  BurnCpu(200000);
  EXPECT_EQ(watch.ElapsedSeconds(), frozen);
  watch.Pause();  // No-op when already paused.
  EXPECT_EQ(watch.ElapsedSeconds(), frozen);
  watch.Resume();
  EXPECT_FALSE(watch.paused());
  BurnCpu(20000);
  EXPECT_GT(watch.ElapsedSeconds(), frozen);
}

TEST(StopwatchTest, ResetWhilePausedRestartsRunning) {
  Stopwatch watch;
  watch.Pause();
  watch.Reset();
  EXPECT_FALSE(watch.paused());
  BurnCpu(20000);
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
}

TEST(LoggingTest, EnvOverridesFallbackLevel) {
  const LogLevel original = GetLogLevel();
  ::setenv("VGOD_LOG_LEVEL", "error", 1);
  SetLogLevelFromEnv(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::setenv("VGOD_LOG_LEVEL", "1", 1);
  SetLogLevelFromEnv(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
  ::unsetenv("VGOD_LOG_LEVEL");
  SetLogLevelFromEnv(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

}  // namespace
}  // namespace vgod
