#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/rng.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "datasets/synthetic.h"
#include "graph/graph_ops.h"
#include "tensor/kernels.h"

namespace vgod {
namespace {

using ::vgod::datasets::AttributeModel;
using ::vgod::datasets::Dataset;
using ::vgod::datasets::GeneratePlantedPartition;
using ::vgod::datasets::GenerateWeiboSim;
using ::vgod::datasets::MakeDataset;
using ::vgod::datasets::SyntheticGraphSpec;
using ::vgod::datasets::WeiboSimSpec;

SyntheticGraphSpec BaseSpec() {
  SyntheticGraphSpec spec;
  spec.num_nodes = 600;
  spec.num_communities = 5;
  spec.avg_degree = 6.0;
  spec.attribute_dim = 64;
  spec.topic_dims_per_community = 12;
  spec.intra_community_fraction = 0.9;
  return spec;
}

TEST(SyntheticTest, NodeAndEdgeCounts) {
  Rng rng(1);
  AttributedGraph g = GeneratePlantedPartition(BaseSpec(), &rng);
  EXPECT_EQ(g.num_nodes(), 600);
  // Average degree within 15% of the target (rejections cost a few edges).
  EXPECT_NEAR(g.AverageDegree(), 6.0, 0.9);
  EXPECT_EQ(g.attribute_dim(), 64);
  EXPECT_TRUE(g.has_communities());
}

TEST(SyntheticTest, PlantedHomophily) {
  Rng rng(2);
  AttributedGraph g = GeneratePlantedPartition(BaseSpec(), &rng);
  // With 90% intra-community wiring, edge homophily must be high.
  EXPECT_GT(graph_ops::EdgeHomophily(g), 0.8);
}

TEST(SyntheticTest, CommunitiesCoverAllLabels) {
  Rng rng(3);
  AttributedGraph g = GeneratePlantedPartition(BaseSpec(), &rng);
  std::set<int> labels(g.communities().begin(), g.communities().end());
  EXPECT_EQ(static_cast<int>(labels.size()), 5);
}

TEST(SyntheticTest, SparseTopicAttributesAreBinaryAndSparse) {
  Rng rng(4);
  AttributedGraph g = GeneratePlantedPartition(BaseSpec(), &rng);
  const Tensor& attrs = g.attributes();
  int64_t nonzero = 0;
  for (int64_t i = 0; i < attrs.size(); ++i) {
    const float v = attrs.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    nonzero += v != 0.0f;
  }
  const double density = static_cast<double>(nonzero) / attrs.size();
  EXPECT_GT(density, 0.005);
  EXPECT_LT(density, 0.25);
}

TEST(SyntheticTest, TopicAttributesAlignWithCommunities) {
  // Same-community node pairs must share more active dimensions than
  // cross-community pairs — the signal ARM and VBM rely on.
  Rng rng(5);
  AttributedGraph g = GeneratePlantedPartition(BaseSpec(), &rng);
  const Tensor& attrs = g.attributes();
  const auto& comm = g.communities();
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  Rng pair_rng(6);
  for (int t = 0; t < 4000; ++t) {
    const int a = static_cast<int>(pair_rng.UniformInt(g.num_nodes()));
    const int b = static_cast<int>(pair_rng.UniformInt(g.num_nodes()));
    if (a == b) continue;
    double dot = 0.0;
    for (int j = 0; j < attrs.cols(); ++j) {
      dot += attrs.At(a, j) * attrs.At(b, j);
    }
    if (comm[a] == comm[b]) {
      same += dot;
      ++same_n;
    } else {
      cross += dot;
      ++cross_n;
    }
  }
  EXPECT_GT(same / same_n, 2.0 * cross / cross_n);
}

TEST(SyntheticTest, DenseGaussianModel) {
  SyntheticGraphSpec spec = BaseSpec();
  spec.attribute_model = AttributeModel::kDenseGaussian;
  Rng rng(7);
  AttributedGraph g = GeneratePlantedPartition(spec, &rng);
  // Dense: virtually no exact zeros.
  int64_t zeros = 0;
  for (int64_t i = 0; i < g.attributes().size(); ++i) {
    zeros += g.attributes().data()[i] == 0.0f;
  }
  EXPECT_LT(zeros, 10);
}

TEST(SyntheticTest, DeterministicForSeed) {
  Rng rng_a(9), rng_b(9);
  AttributedGraph a = GeneratePlantedPartition(BaseSpec(), &rng_a);
  AttributedGraph b = GeneratePlantedPartition(BaseSpec(), &rng_b);
  EXPECT_EQ(a.num_directed_edges(), b.num_directed_edges());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(kernels::MaxAbsDiff(a.attributes(), b.attributes()), 0.0f);
}

TEST(SyntheticTest, DegreePowerAddsHeterogeneity) {
  SyntheticGraphSpec flat = BaseSpec();
  flat.degree_power = 0.0;
  SyntheticGraphSpec heavy = BaseSpec();
  heavy.degree_power = 0.7;
  Rng rng_a(11), rng_b(11);
  AttributedGraph g_flat = GeneratePlantedPartition(flat, &rng_a);
  AttributedGraph g_heavy = GeneratePlantedPartition(heavy, &rng_b);
  auto degree_std = [](const AttributedGraph& g) {
    return kernels::StdValue(graph_ops::DegreeVector(g));
  };
  EXPECT_GT(degree_std(g_heavy), degree_std(g_flat));
}

// --- Weibo sim: the three properties of paper Fig 9 / §VI-E4 ---

WeiboSimSpec WeiboSpec() {
  WeiboSimSpec spec;
  spec.base.num_nodes = 800;
  spec.base.num_communities = 8;
  spec.base.avg_degree = 10.0;
  spec.base.attribute_dim = 32;
  spec.base.attribute_model = AttributeModel::kDenseGaussian;
  spec.base.intra_community_fraction = 0.8;
  return spec;
}

TEST(WeiboSimTest, OutlierFraction) {
  Rng rng(13);
  AttributedGraph g = GenerateWeiboSim(WeiboSpec(), &rng);
  int outliers = 0;
  for (uint8_t label : g.outlier_labels()) outliers += label;
  EXPECT_NEAR(outliers / 800.0, 0.103, 0.01);
}

TEST(WeiboSimTest, OutliersNotDegreeElevated) {
  // Paper Fig 9(b): Weibo outliers do NOT have a higher degree
  // distribution — degree is useless there.
  Rng rng(13);
  AttributedGraph g = GenerateWeiboSim(WeiboSpec(), &rng);
  double outlier_deg = 0.0, inlier_deg = 0.0;
  int n_out = 0, n_in = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.outlier_labels()[i]) {
      outlier_deg += g.Degree(i);
      ++n_out;
    } else {
      inlier_deg += g.Degree(i);
      ++n_in;
    }
  }
  outlier_deg /= n_out;
  inlier_deg /= n_in;
  EXPECT_LT(outlier_deg, 1.5 * inlier_deg);
  EXPECT_GT(outlier_deg, 0.5 * inlier_deg);
}

TEST(WeiboSimTest, OutlierAttributesFarMoreDiverse) {
  // Paper: outlier attribute variance 425.0 vs inlier 11.95 (~35x). The
  // sim must reproduce a large ratio.
  Rng rng(13);
  AttributedGraph g = GenerateWeiboSim(WeiboSpec(), &rng);
  const double outlier_var =
      datasets::AttributeVariance(g.attributes(), g.outlier_labels(), 1);
  const double inlier_var =
      datasets::AttributeVariance(g.attributes(), g.outlier_labels(), 0);
  EXPECT_GT(outlier_var, 5.0 * inlier_var);
}

TEST(WeiboSimTest, OutlierClustersAreCohesive) {
  // Paper Fig 9(a): outliers form cohesive clusters -> homophily stays
  // high overall (paper reports 0.75) and outlier-outlier edges dominate
  // outliers' neighborhoods.
  Rng rng(13);
  AttributedGraph g = GenerateWeiboSim(WeiboSpec(), &rng);
  EXPECT_GT(graph_ops::EdgeHomophily(g), 0.6);
  int64_t outlier_edges = 0, outlier_outlier = 0;
  for (int u = 0; u < g.num_nodes(); ++u) {
    if (!g.outlier_labels()[u]) continue;
    for (int32_t v : g.Neighbors(u)) {
      ++outlier_edges;
      outlier_outlier += g.outlier_labels()[v];
    }
  }
  EXPECT_GT(static_cast<double>(outlier_outlier) / outlier_edges, 0.5);
}

// --- registry ---

TEST(RegistryTest, AllNamesBuild) {
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    Result<Dataset> dataset = MakeDataset(name, /*scale=*/0.1, /*seed=*/1);
    ASSERT_TRUE(dataset.ok()) << name;
    EXPECT_EQ(dataset.value().name, name);
    EXPECT_GT(dataset.value().graph.num_nodes(), 0);
    EXPECT_TRUE(dataset.value().graph.has_attributes());
    EXPECT_TRUE(dataset.value().graph.has_communities());
  }
}

TEST(RegistryTest, OnlyWeiboHasLabels) {
  for (const std::string& name : datasets::BenchmarkDatasetNames()) {
    Dataset dataset = std::move(MakeDataset(name, 0.1, 1)).value();
    EXPECT_EQ(dataset.has_labeled_outliers, name == "weibo") << name;
    EXPECT_EQ(dataset.graph.has_outlier_labels(), name == "weibo") << name;
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(MakeDataset("imagenet", 1.0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, ScaleChangesSize) {
  Dataset small = std::move(MakeDataset("cora", 0.1, 1)).value();
  Dataset large = std::move(MakeDataset("cora", 0.3, 1)).value();
  EXPECT_GT(large.graph.num_nodes(), 2 * small.graph.num_nodes());
}

TEST(RegistryTest, SeedChangesGraphScaleKeepsStats) {
  Dataset a = std::move(MakeDataset("citeseer", 0.2, 1)).value();
  Dataset b = std::move(MakeDataset("citeseer", 0.2, 2)).value();
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_NE(a.graph.col_idx(), b.graph.col_idx());
}

// --- IO ---

TEST(IoTest, SaveLoadRoundTrip) {
  Rng rng(15);
  SyntheticGraphSpec spec = BaseSpec();
  spec.num_nodes = 80;
  AttributedGraph g = GeneratePlantedPartition(spec, &rng);
  g.SetOutlierLabels(std::vector<uint8_t>(80, 0));
  const std::string path = ::testing::TempDir() + "/roundtrip.graph";
  ASSERT_TRUE(datasets::SaveGraph(g, path).ok());
  Result<AttributedGraph> loaded = datasets::LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_directed_edges(), g.num_directed_edges());
  EXPECT_EQ(loaded.value().col_idx(), g.col_idx());
  EXPECT_EQ(loaded.value().communities(), g.communities());
  EXPECT_LT(kernels::MaxAbsDiff(loaded.value().attributes(), g.attributes()),
            1e-4f);
  std::remove(path.c_str());
}

TEST(IoTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.graph";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a graph at all\n", f);
  std::fclose(f);
  EXPECT_FALSE(datasets::LoadGraph(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileIsIoError) {
  EXPECT_EQ(datasets::LoadGraph("/nonexistent/nope.graph").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace vgod
